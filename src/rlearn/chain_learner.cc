#include "rlearn/chain_learner.h"

#include <bit>
#include <cstdint>

namespace qlearn {
namespace rlearn {

using common::Result;
using common::Status;

Result<JoinChain> JoinChain::Create(
    std::vector<const relational::Relation*> relations) {
  if (relations.size() < 2) {
    return Status::InvalidArgument("a join chain needs at least 2 relations");
  }
  JoinChain chain;
  chain.relations_ = std::move(relations);
  for (size_t i = 0; i + 1 < chain.relations_.size(); ++i) {
    QLEARN_ASSIGN_OR_RETURN(
        PairUniverse u,
        PairUniverse::AllCompatible(chain.relations_[i]->schema(),
                                    chain.relations_[i + 1]->schema()));
    if (u.size() == 0) {
      return Status::InvalidArgument(
          "no compatible attribute pairs between chain relations " +
          std::to_string(i) + " and " + std::to_string(i + 1));
    }
    chain.universes_.push_back(std::move(u));
  }
  return chain;
}

PairMask JoinChain::AgreeOn(size_t edge,
                            const std::vector<size_t>& rows) const {
  return universes_[edge].AgreeMask(relations_[edge]->row(rows[edge]),
                                    relations_[edge + 1]->row(rows[edge + 1]));
}

namespace {

template <typename PairPredicate>
ChainMask ChainGoalByName(const JoinChain& chain, PairPredicate keep) {
  ChainMask goal;
  goal.reserve(chain.num_edges());
  for (size_t e = 0; e < chain.num_edges(); ++e) {
    const PairUniverse& universe = chain.universe(e);
    const auto& left = chain.relation(e).schema().attributes();
    const auto& right = chain.relation(e + 1).schema().attributes();
    PairMask mask = 0;
    for (size_t i = 0; i < universe.size(); ++i) {
      const relational::AttributePair& p = universe.pairs()[i];
      if (keep(left[p.left].name, right[p.right].name)) mask |= (1ULL << i);
    }
    goal.push_back(mask);
  }
  return goal;
}

}  // namespace

ChainMask NamePairChainGoal(const JoinChain& chain,
                            const std::string& left_attr,
                            const std::string& right_attr) {
  return ChainGoalByName(chain,
                         [&](const std::string& l, const std::string& r) {
                           return l == left_attr && r == right_attr;
                         });
}

ChainMask NaturalChainGoal(const JoinChain& chain) {
  return ChainGoalByName(
      chain, [](const std::string& l, const std::string& r) { return l == r; });
}

bool ChainSatisfied(const JoinChain& chain, const ChainMask& hypothesis,
                    const ChainExample& example) {
  for (size_t e = 0; e < chain.num_edges(); ++e) {
    if (!MaskSatisfied(hypothesis[e], chain.AgreeOn(e, example.rows))) {
      return false;
    }
  }
  return true;
}

ChainVersionSpace::ChainVersionSpace(const JoinChain* chain) : chain_(chain) {
  most_specific_.reserve(chain->num_edges());
  for (size_t e = 0; e < chain->num_edges(); ++e) {
    most_specific_.push_back(chain->universe(e).FullMask());
  }
}

std::vector<PairMask> ChainVersionSpace::Agreements(
    const ChainExample& e) const {
  std::vector<PairMask> agree(chain_->num_edges());
  for (size_t edge = 0; edge < chain_->num_edges(); ++edge) {
    agree[edge] = chain_->AgreeOn(edge, e.rows);
  }
  return agree;
}

void ChainVersionSpace::AddPositive(const ChainExample& example) {
  const std::vector<PairMask> agree = Agreements(example);
  for (size_t e = 0; e < most_specific_.size(); ++e) {
    most_specific_[e] &= agree[e];
  }
  ++num_positives_;
}

void ChainVersionSpace::AddNegative(const ChainExample& example) {
  negative_agreements_.push_back(Agreements(example));
}

bool ChainVersionSpace::Consistent() const {
  for (PairMask m : most_specific_) {
    if (m == 0) return false;  // some edge has no non-empty hypothesis left
  }
  for (const std::vector<PairMask>& neg : negative_agreements_) {
    bool selected = true;
    for (size_t e = 0; e < most_specific_.size(); ++e) {
      if (!MaskSatisfied(most_specific_[e], neg[e])) {
        selected = false;
        break;
      }
    }
    if (selected) return false;  // θ* itself selects a negative
  }
  return true;
}

ChainVersionSpace::PathStatus ChainVersionSpace::Classify(
    const ChainExample& example) const {
  const std::vector<PairMask> agree = Agreements(example);
  // Forced positive: the most specific hypothesis vector selects the path,
  // hence so does every edge-wise subset in the version space.
  bool theta_star_selects = true;
  for (size_t e = 0; e < most_specific_.size(); ++e) {
    if (!MaskSatisfied(most_specific_[e], agree[e])) {
      theta_star_selects = false;
      break;
    }
  }
  if (theta_star_selects) return PathStatus::kForcedPositive;

  // Some consistent hypothesis selects the path iff the edge-wise maximal
  // candidate A_e = θ*_e ∩ agree_e is non-empty everywhere and excludes
  // every negative (shrinking any edge only makes exclusion harder).
  std::vector<PairMask> a(most_specific_.size());
  for (size_t e = 0; e < most_specific_.size(); ++e) {
    a[e] = most_specific_[e] & agree[e];
    if (a[e] == 0) return PathStatus::kForcedNegative;
  }
  for (const std::vector<PairMask>& neg : negative_agreements_) {
    bool selected = true;
    for (size_t e = 0; e < a.size(); ++e) {
      if (!MaskSatisfied(a[e], neg[e])) {
        selected = false;
        break;
      }
    }
    if (selected) return PathStatus::kForcedNegative;
  }
  return PathStatus::kInformative;
}

ChainConsistency CheckChainConsistency(
    const JoinChain& chain, const std::vector<ChainExample>& positives,
    const std::vector<ChainExample>& negatives) {
  ChainVersionSpace vs(&chain);
  for (const ChainExample& p : positives) vs.AddPositive(p);
  for (const ChainExample& n : negatives) vs.AddNegative(n);
  ChainConsistency out;
  out.consistent = vs.Consistent();
  if (out.consistent) out.most_specific = vs.most_specific();
  return out;
}

std::vector<ChainExample> EvaluateChain(const JoinChain& chain,
                                        const ChainMask& hypothesis,
                                        size_t limit) {
  // Depth-first nested-loop expansion in row-major order. Depth-first
  // (rather than one frontier per edge) avoids materializing intermediate
  // frontiers exponentially larger than a capped result on permissive
  // chains. Per-edge satisfaction is cached as lazy bitset rows — bit j of
  // row (e, i) says rows i⋈j satisfy hypothesis[e] — so revisiting a
  // prefix (every left row beyond depth 1) advances by bit-scan instead of
  // re-running AgreeOn per (prefix, j) pair. A row is computed at most
  // once, on first descent through its left row; memory beyond the emitted
  // paths is O(visited left rows × right rows / 64).
  std::vector<ChainExample> out;
  const size_t length = chain.length();
  struct EdgeRows {
    size_t right_size = 0;
    size_t words = 0;
    std::vector<uint64_t> bits;     // left_size × words, lazily filled
    std::vector<uint8_t> computed;  // per left row
  };
  std::vector<EdgeRows> sat(chain.num_edges());
  for (size_t e = 0; e < chain.num_edges(); ++e) {
    sat[e].right_size = chain.relation(e + 1).size();
    sat[e].words = (sat[e].right_size + 63) / 64;
    sat[e].bits.assign(chain.relation(e).size() * sat[e].words, 0);
    sat[e].computed.assign(chain.relation(e).size(), 0);
  }
  // rows is the current partial path; rows.back() is the next row index to
  // try in relation rows.size()-1.
  std::vector<size_t> rows(1, 0);
  while (!rows.empty()) {
    const size_t depth = rows.size() - 1;
    if (depth == 0) {
      if (rows[0] >= chain.relation(0).size()) break;
    } else {
      EdgeRows& edge = sat[depth - 1];
      const size_t left = rows[depth - 1];
      uint64_t* row = edge.bits.data() + left * edge.words;
      if (!edge.computed[left]) {
        const size_t save = rows[depth];
        for (size_t j = 0; j < edge.right_size; ++j) {
          rows[depth] = j;
          if (MaskSatisfied(hypothesis[depth - 1],
                            chain.AgreeOn(depth - 1, rows))) {
            row[j / 64] |= 1ULL << (j % 64);
          }
        }
        rows[depth] = save;
        edge.computed[left] = 1;
      }
      // Advance to the next satisfying right row (identical visit order to
      // the historical one-at-a-time mask tests).
      size_t w = rows[depth] / 64;
      uint64_t word =
          w < edge.words ? row[w] & (~0ULL << (rows[depth] % 64)) : 0;
      while (word == 0 && ++w < edge.words) word = row[w];
      if (word == 0) {
        rows.pop_back();
        ++rows.back();
        continue;
      }
      rows[depth] = w * 64 + static_cast<size_t>(std::countr_zero(word));
    }
    if (depth + 1 == length) {
      out.push_back(ChainExample{rows});
      if (limit != 0 && out.size() >= limit) return out;
      ++rows[depth];
    } else {
      rows.push_back(0);
    }
  }
  return out;
}

}  // namespace rlearn
}  // namespace qlearn
