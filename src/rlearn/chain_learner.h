// Learning chains of equi-joins R1 ⋈ R2 ⋈ … ⋈ Rk — the extension the paper
// announces in Section 3 ("we want to extend our approach to other operators
// and also to chains of joins between many relations").
//
// A chain hypothesis fixes one non-empty set of attribute pairs per adjacent
// relation pair; a tuple path (t1,…,tk) satisfies it iff every edge's pairs
// agree. The tractability of the single-join case generalizes: with
// θ*_i = ⋂_{positives} Agree_i, the examples are consistent iff every θ*_i
// is non-empty and no negative path satisfies the whole vector θ* — still
// PTIME. The interactive protocol (uninformative-path propagation) lives in
// rlearn/interactive_chain.h as ChainEngine over this version space.
#ifndef QLEARN_RLEARN_CHAIN_LEARNER_H_
#define QLEARN_RLEARN_CHAIN_LEARNER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "relational/relation.h"
#include "rlearn/join_hypothesis.h"

namespace qlearn {
namespace rlearn {

/// A chain of k relations with k-1 pair universes between neighbours.
class JoinChain {
 public:
  /// Builds a chain over `relations` (not owned, must outlive the chain)
  /// using all type-compatible pairs between each adjacent pair of schemas.
  /// Fails when fewer than two relations are given or some adjacent pair
  /// has no compatible attributes.
  static common::Result<JoinChain> Create(
      std::vector<const relational::Relation*> relations);

  size_t length() const { return relations_.size(); }
  size_t num_edges() const { return universes_.size(); }
  const relational::Relation& relation(size_t i) const {
    return *relations_[i];
  }
  const PairUniverse& universe(size_t edge) const { return universes_[edge]; }

  /// Agreement mask of a path on one edge.
  PairMask AgreeOn(size_t edge, const std::vector<size_t>& rows) const;

 private:
  std::vector<const relational::Relation*> relations_;
  std::vector<PairUniverse> universes_;
};

/// A hypothesis: one non-empty mask per chain edge.
using ChainMask = std::vector<PairMask>;

/// Goal mask selecting, on every edge, the pairs (left_attr, right_attr)
/// by attribute name — e.g. ("fk", "key") for the generated FK chains. An
/// edge without such a pair gets an empty mask.
ChainMask NamePairChainGoal(const JoinChain& chain,
                            const std::string& left_attr,
                            const std::string& right_attr);

/// Goal mask selecting, on every edge, the name-equal attribute pairs (the
/// natural-join goal, e.g. customers.cid=orders.cid).
ChainMask NaturalChainGoal(const JoinChain& chain);

/// One labeled example: row indexes, one per chain relation.
struct ChainExample {
  std::vector<size_t> rows;
};

/// True iff the path's agreement satisfies every edge mask.
bool ChainSatisfied(const JoinChain& chain, const ChainMask& hypothesis,
                    const ChainExample& example);

/// Outcome of the PTIME chain consistency check.
struct ChainConsistency {
  bool consistent = false;
  /// Edge-wise most specific hypothesis when consistent.
  ChainMask most_specific;
};

/// Version space of chain hypotheses (edge-wise subset interval around θ*,
/// negatives shared across edges).
class ChainVersionSpace {
 public:
  explicit ChainVersionSpace(const JoinChain* chain);

  void AddPositive(const ChainExample& example);
  void AddNegative(const ChainExample& example);

  const ChainMask& most_specific() const { return most_specific_; }

  /// PTIME consistency of everything added so far: every edge's θ* is
  /// non-empty and no negative satisfies the whole θ* vector.
  bool Consistent() const;

  enum class PathStatus { kForcedPositive, kForcedNegative, kInformative };
  /// Classification of an unlabeled path by the entire version space.
  PathStatus Classify(const ChainExample& example) const;

  const JoinChain& chain() const { return *chain_; }
  size_t num_positives() const { return num_positives_; }
  size_t num_negatives() const { return negative_agreements_.size(); }
  /// Per-edge agreement masks of the negatives, in arrival order (the
  /// delta propagation layer classifies witness buckets against them).
  const std::vector<std::vector<PairMask>>& negative_agreements() const {
    return negative_agreements_;
  }

  /// Hibernation restore: overwrites the accumulated state with a
  /// snapshot's. The caller (ChainEngine::RestoreSnapshot) owns validation.
  void RestoreState(ChainMask most_specific,
                    std::vector<std::vector<PairMask>> negatives,
                    size_t num_positives) {
    most_specific_ = std::move(most_specific);
    negative_agreements_ = std::move(negatives);
    num_positives_ = num_positives;
  }

 private:
  std::vector<PairMask> Agreements(const ChainExample& e) const;

  const JoinChain* chain_;
  ChainMask most_specific_;
  std::vector<std::vector<PairMask>> negative_agreements_;
  size_t num_positives_ = 0;
};

/// One-shot consistency check for a labeled sample of paths.
ChainConsistency CheckChainConsistency(
    const JoinChain& chain, const std::vector<ChainExample>& positives,
    const std::vector<ChainExample>& negatives);

/// Materializes the chain join under `hypothesis`: all row-index paths
/// satisfying every edge mask, in row-major order. `limit` caps the result
/// (0 = unlimited); the expansion is depth-first, so memory stays
/// O(chain length) beyond the returned paths even when intermediate edges
/// are fully permissive.
std::vector<ChainExample> EvaluateChain(const JoinChain& chain,
                                        const ChainMask& hypothesis,
                                        size_t limit = 0);

}  // namespace rlearn
}  // namespace qlearn

#endif  // QLEARN_RLEARN_CHAIN_LEARNER_H_
