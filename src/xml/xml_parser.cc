#include "xml/xml_parser.h"

#include <cctype>
#include <string>
#include <vector>

#include "common/strings.h"

namespace qlearn {
namespace xml {

using common::Result;
using common::Status;

namespace {

class XmlParser {
 public:
  XmlParser(std::string_view text, common::Interner* interner,
            const XmlParseOptions& options)
      : text_(text), interner_(interner), options_(options) {}

  Result<XmlTree> Parse() {
    XmlTree tree;
    std::vector<NodeId> stack;  // open elements
    while (pos_ < text_.size()) {
      if (text_[pos_] == '<') {
        if (Lookahead("<?")) {
          QLEARN_RETURN_IF_ERROR(SkipUntil("?>"));
        } else if (Lookahead("<!--")) {
          QLEARN_RETURN_IF_ERROR(SkipUntil("-->"));
        } else if (Lookahead("<!")) {  // DOCTYPE and friends
          QLEARN_RETURN_IF_ERROR(SkipUntil(">"));
        } else if (Lookahead("</")) {
          pos_ += 2;
          std::string name;
          QLEARN_RETURN_IF_ERROR(ReadName(&name));
          SkipSpace();
          if (pos_ >= text_.size() || text_[pos_] != '>') {
            return Error("malformed closing tag </" + name);
          }
          ++pos_;
          if (stack.empty()) {
            return Error("closing tag </" + name + "> with no open element");
          }
          const std::string& open =
              interner_->Name(tree.label(stack.back()));
          if (open != name) {
            return Error("mismatched closing tag: expected </" + open +
                         ">, found </" + name + ">");
          }
          stack.pop_back();
        } else {
          ++pos_;
          std::string name;
          QLEARN_RETURN_IF_ERROR(ReadName(&name));
          NodeId node;
          if (stack.empty()) {
            if (!tree.empty()) return Error("multiple root elements");
            node = tree.AddRoot(interner_->Intern(name));
          } else {
            node = tree.AddChild(stack.back(), interner_->Intern(name));
          }
          bool self_closing = false;
          QLEARN_RETURN_IF_ERROR(ParseAttributes(&tree, node, &self_closing));
          if (!self_closing) stack.push_back(node);
        }
      } else {
        const size_t start = pos_;
        while (pos_ < text_.size() && text_[pos_] != '<') ++pos_;
        const std::string_view raw = text_.substr(start, pos_ - start);
        const std::string_view content = common::Trim(raw);
        if (!content.empty()) {
          if (stack.empty()) return Error("text content outside root element");
          if (options_.keep_text) {
            tree.AddChild(stack.back(), interner_->Intern("#text"));
          }
        }
      }
    }
    if (!stack.empty()) {
      return Error("unclosed element <" +
                   interner_->Name(tree.label(stack.back())) + ">");
    }
    if (tree.empty()) return Error("no root element");
    return tree;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::ParseError(message + " (offset " + std::to_string(pos_) +
                              ")");
  }

  bool Lookahead(std::string_view prefix) const {
    return common::StartsWith(text_.substr(pos_), prefix);
  }

  Status SkipUntil(std::string_view marker) {
    const size_t found = text_.find(marker, pos_);
    if (found == std::string_view::npos) {
      return Error("unterminated construct, expected '" + std::string(marker) +
                   "'");
    }
    pos_ = found + marker.size();
    return Status::OK();
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  // Liberal name rules: the library publishes data values as element
  // labels (e.g. <42/>, <'ada'/>), so names may start with digits or
  // quotes; structural characters stay excluded.
  static bool IsNameStart(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '\'';
  }
  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '.' || c == ':' || c == '\'';
  }

  Status ReadName(std::string* out) {
    if (pos_ >= text_.size() || !IsNameStart(text_[pos_])) {
      return Error("expected element name");
    }
    const size_t start = pos_;
    while (pos_ < text_.size() && IsNameChar(text_[pos_])) ++pos_;
    *out = std::string(text_.substr(start, pos_ - start));
    return Status::OK();
  }

  Status ParseAttributes(XmlTree* tree, NodeId node, bool* self_closing) {
    *self_closing = false;
    for (;;) {
      SkipSpace();
      if (pos_ >= text_.size()) return Error("unterminated start tag");
      if (text_[pos_] == '>') {
        ++pos_;
        return Status::OK();
      }
      if (Lookahead("/>")) {
        pos_ += 2;
        *self_closing = true;
        return Status::OK();
      }
      std::string attr;
      QLEARN_RETURN_IF_ERROR(ReadName(&attr));
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == '=') {
        ++pos_;
        SkipSpace();
        if (pos_ >= text_.size() ||
            (text_[pos_] != '"' && text_[pos_] != '\'')) {
          return Error("expected quoted attribute value for '" + attr + "'");
        }
        const char quote = text_[pos_++];
        const size_t end = text_.find(quote, pos_);
        if (end == std::string_view::npos) {
          return Error("unterminated attribute value for '" + attr + "'");
        }
        pos_ = end + 1;
      }
      if (options_.keep_attributes) {
        tree->AddChild(node, interner_->Intern("@" + attr));
      }
    }
  }

  std::string_view text_;
  common::Interner* interner_;
  XmlParseOptions options_;
  size_t pos_ = 0;
};

}  // namespace

Result<XmlTree> ParseXml(std::string_view text, common::Interner* interner,
                         const XmlParseOptions& options) {
  return XmlParser(text, interner, options).Parse();
}

}  // namespace xml
}  // namespace qlearn
