#include "xml/random_tree.h"

namespace qlearn {
namespace xml {

namespace {

void Grow(XmlTree* tree, NodeId node, int depth,
          const RandomTreeOptions& options,
          const std::vector<common::SymbolId>& alphabet, common::Rng* rng) {
  if (depth >= options.max_depth) return;
  const int kids =
      static_cast<int>(rng->Uniform(
          static_cast<uint64_t>(options.max_children) + 1));
  for (int i = 0; i < kids; ++i) {
    common::SymbolId label;
    if (rng->Bernoulli(options.recursion_probability)) {
      label = tree->label(node);  // recursive structure
    } else {
      label = alphabet[rng->Index(alphabet.size())];
    }
    const NodeId child = tree->AddChild(node, label);
    Grow(tree, child, depth + 1, options, alphabet, rng);
  }
}

}  // namespace

XmlTree GenerateRandomTree(const RandomTreeOptions& options, common::Rng* rng,
                           common::Interner* interner) {
  std::vector<common::SymbolId> alphabet;
  alphabet.reserve(static_cast<size_t>(options.alphabet_size));
  for (int i = 0; i < options.alphabet_size; ++i) {
    std::string name = "l";
    name += std::to_string(i);
    alphabet.push_back(interner->Intern(name));
  }
  XmlTree tree;
  const NodeId root = tree.AddRoot(interner->Intern("root"));
  Grow(&tree, root, 0, options, alphabet, rng);
  return tree;
}

}  // namespace xml
}  // namespace qlearn
