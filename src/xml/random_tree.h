// Random labeled-tree generation for property tests and learning workloads
// (substitute for the "real-world XML web collection" corpora; DESIGN.md §1).
#ifndef QLEARN_XML_RANDOM_TREE_H_
#define QLEARN_XML_RANDOM_TREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/interner.h"
#include "common/rng.h"
#include "xml/xml_tree.h"

namespace qlearn {
namespace xml {

/// Parameters of the random tree distribution.
struct RandomTreeOptions {
  /// Alphabet: labels "l0".."l{alphabet_size-1}" plus the fixed root "root".
  int alphabet_size = 6;
  int max_depth = 5;
  /// Each node draws Uniform[0, max_children] children (0 at max_depth).
  int max_children = 4;
  /// Probability that a non-root node re-uses its parent's label family,
  /// producing recursive structure.
  double recursion_probability = 0.15;
};

/// Generates a random tree; labels are interned into `interner`.
XmlTree GenerateRandomTree(const RandomTreeOptions& options, common::Rng* rng,
                           common::Interner* interner);

}  // namespace xml
}  // namespace qlearn

#endif  // QLEARN_XML_RANDOM_TREE_H_
