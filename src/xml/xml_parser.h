// Parser for the XML subset used throughout the library: elements,
// attributes (mapped to '@name' children), self-closing tags, comments,
// processing instructions, and optional text capture as '#text' leaves.
#ifndef QLEARN_XML_XML_PARSER_H_
#define QLEARN_XML_XML_PARSER_H_

#include <string_view>

#include "common/interner.h"
#include "common/status.h"
#include "xml/xml_tree.h"

namespace qlearn {
namespace xml {

/// Controls how non-element content is represented.
struct XmlParseOptions {
  /// When true, non-whitespace text content becomes '#text' leaf children.
  bool keep_text = false;
  /// When true, attributes become '@name' leaf children (values dropped).
  bool keep_attributes = true;
};

/// Parses `text` into a tree, interning labels into `interner`.
/// Returns ParseError on malformed input (mismatched or unclosed tags,
/// multiple roots, stray content).
common::Result<XmlTree> ParseXml(std::string_view text,
                                 common::Interner* interner,
                                 const XmlParseOptions& options = {});

}  // namespace xml
}  // namespace qlearn

#endif  // QLEARN_XML_XML_PARSER_H_
