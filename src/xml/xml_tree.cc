#include "xml/xml_tree.h"

#include <algorithm>
#include <cassert>

namespace qlearn {
namespace xml {

NodeId XmlTree::AddRoot(common::SymbolId label) {
  assert(labels_.empty() && "AddRoot on a non-empty tree");
  labels_.push_back(label);
  parents_.push_back(kInvalidNode);
  depths_.push_back(0);
  children_.emplace_back();
  return 0;
}

NodeId XmlTree::AddChild(NodeId parent, common::SymbolId label) {
  assert(parent < labels_.size());
  const NodeId id = static_cast<NodeId>(labels_.size());
  labels_.push_back(label);
  parents_.push_back(parent);
  depths_.push_back(depths_[parent] + 1);
  children_.emplace_back();
  children_[parent].push_back(id);
  return id;
}

NodeId XmlTree::GraftSubtree(NodeId parent, const XmlTree& other,
                             NodeId other_node) {
  const NodeId copied = AddChild(parent, other.label(other_node));
  for (NodeId c : other.children(other_node)) {
    GraftSubtree(copied, other, c);
  }
  return copied;
}

bool XmlTree::IsProperAncestor(NodeId a, NodeId d) const {
  if (depths_[a] >= depths_[d]) return false;
  NodeId cur = parents_[d];
  while (cur != kInvalidNode && depths_[cur] >= depths_[a]) {
    if (cur == a) return true;
    cur = parents_[cur];
  }
  return false;
}

std::vector<NodeId> XmlTree::PreOrder() const {
  std::vector<NodeId> order;
  order.reserve(NumNodes());
  std::vector<NodeId> stack{root()};
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    order.push_back(n);
    const auto& kids = children_[n];
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  return order;
}

std::vector<NodeId> XmlTree::Descendants(NodeId n) const {
  std::vector<NodeId> out;
  std::vector<NodeId> stack(children_[n].rbegin(), children_[n].rend());
  while (!stack.empty()) {
    const NodeId cur = stack.back();
    stack.pop_back();
    out.push_back(cur);
    const auto& kids = children_[cur];
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  return out;
}

std::vector<common::SymbolId> XmlTree::ChildLabelBag(NodeId n) const {
  std::vector<common::SymbolId> bag;
  bag.reserve(children_[n].size());
  for (NodeId c : children_[n]) bag.push_back(labels_[c]);
  std::sort(bag.begin(), bag.end());
  return bag;
}

std::string XmlTree::ToXml(const common::Interner& interner, NodeId n,
                           int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  const std::string& name = interner.Name(labels_[n]);
  if (children_[n].empty()) {
    return pad + "<" + name + "/>\n";
  }
  std::string out = pad + "<" + name + ">\n";
  for (NodeId c : children_[n]) out += ToXml(interner, c, indent + 1);
  out += pad + "</" + name + ">\n";
  return out;
}

uint32_t XmlTree::Height(NodeId n) const {
  uint32_t best = 0;
  for (NodeId c : children_[n]) best = std::max(best, Height(c));
  return best + 1;
}

}  // namespace xml
}  // namespace qlearn
