#include "xml/xmark.h"

#include "common/rng.h"

namespace qlearn {
namespace xml {

namespace {

/// Builder holding the tree under construction and the scale options.
class XMarkBuilder {
 public:
  XMarkBuilder(const XMarkOptions& options, common::Interner* interner)
      : options_(options), rng_(options.seed), interner_(interner) {}

  XmlTree Build() {
    const NodeId site = tree_.AddRoot(Id("site"));
    BuildRegions(site);
    BuildCategories(site);
    BuildCatgraph(site);
    BuildPeople(site);
    BuildOpenAuctions(site);
    BuildClosedAuctions(site);
    return std::move(tree_);
  }

 private:
  common::SymbolId Id(const char* name) { return interner_->Intern(name); }

  bool Maybe() { return rng_.Bernoulli(options_.optional_probability); }

  NodeId Child(NodeId parent, const char* name) {
    return tree_.AddChild(parent, Id(name));
  }

  void BuildRegions(NodeId site) {
    const NodeId regions = Child(site, "regions");
    static const char* kContinents[] = {"africa",   "asia",     "australia",
                                        "europe",   "namerica", "samerica"};
    for (const char* continent : kContinents) {
      const NodeId region = Child(regions, continent);
      const int items =
          1 + static_cast<int>(rng_.Uniform(
                  static_cast<uint64_t>(options_.num_items_per_region)));
      for (int i = 0; i < items; ++i) BuildItem(region);
    }
  }

  void BuildItem(NodeId region) {
    const NodeId item = Child(region, "item");
    Child(item, "@id");
    Child(item, "location");
    Child(item, "quantity");
    Child(item, "name");
    const NodeId payment = Child(item, "payment");
    (void)payment;
    BuildDescription(item, 0);
    Child(item, "shipping");
    const int incats = 1 + static_cast<int>(rng_.Uniform(3));
    for (int i = 0; i < incats; ++i) {
      const NodeId incat = Child(item, "incategory");
      Child(incat, "@category");
    }
    if (Maybe()) {
      const NodeId mailbox = Child(item, "mailbox");
      const int mails = static_cast<int>(rng_.Uniform(3));
      for (int i = 0; i < mails; ++i) {
        const NodeId mail = Child(mailbox, "mail");
        Child(mail, "from");
        Child(mail, "to");
        Child(mail, "date");
        BuildDescription(mail, 0);
      }
    }
  }

  void BuildDescription(NodeId parent, int depth) {
    const NodeId description = Child(parent, "description");
    BuildTextOrParlist(description, depth);
  }

  void BuildTextOrParlist(NodeId parent, int depth) {
    if (depth >= options_.max_parlist_depth || rng_.Bernoulli(0.6)) {
      Child(parent, "text");
      return;
    }
    const NodeId parlist = Child(parent, "parlist");
    const int items = 1 + static_cast<int>(rng_.Uniform(3));
    for (int i = 0; i < items; ++i) {
      const NodeId listitem = Child(parlist, "listitem");
      BuildTextOrParlist(listitem, depth + 1);
    }
  }

  void BuildCategories(NodeId site) {
    const NodeId categories = Child(site, "categories");
    for (int i = 0; i < options_.num_categories; ++i) {
      const NodeId category = Child(categories, "category");
      Child(category, "@id");
      Child(category, "name");
      BuildDescription(category, 0);
    }
  }

  void BuildCatgraph(NodeId site) {
    const NodeId catgraph = Child(site, "catgraph");
    const int edges = options_.num_categories;
    for (int i = 0; i < edges; ++i) {
      const NodeId edge = Child(catgraph, "edge");
      Child(edge, "@from");
      Child(edge, "@to");
    }
  }

  void BuildPeople(NodeId site) {
    const NodeId people = Child(site, "people");
    for (int i = 0; i < options_.num_people; ++i) {
      const NodeId person = Child(people, "person");
      Child(person, "@id");
      Child(person, "name");
      Child(person, "emailaddress");
      if (Maybe()) Child(person, "phone");
      if (Maybe()) BuildAddress(person);
      if (Maybe()) Child(person, "homepage");
      if (Maybe()) Child(person, "creditcard");
      if (Maybe()) BuildProfile(person);
      if (Maybe()) {
        const NodeId watches = Child(person, "watches");
        const int n = static_cast<int>(rng_.Uniform(4));
        for (int w = 0; w < n; ++w) {
          const NodeId watch = Child(watches, "watch");
          Child(watch, "@open_auction");
        }
      }
    }
  }

  void BuildAddress(NodeId person) {
    const NodeId address = Child(person, "address");
    Child(address, "street");
    Child(address, "city");
    Child(address, "country");
    Child(address, "zipcode");
    if (Maybe()) Child(address, "province");
  }

  void BuildProfile(NodeId person) {
    const NodeId profile = Child(person, "profile");
    Child(profile, "@income");
    const int interests = static_cast<int>(rng_.Uniform(4));
    for (int i = 0; i < interests; ++i) {
      const NodeId interest = Child(profile, "interest");
      Child(interest, "@category");
    }
    if (Maybe()) Child(profile, "education");
    if (Maybe()) Child(profile, "gender");
    Child(profile, "business");
    if (Maybe()) Child(profile, "age");
  }

  void BuildOpenAuctions(NodeId site) {
    const NodeId auctions = Child(site, "open_auctions");
    for (int i = 0; i < options_.num_open_auctions; ++i) {
      const NodeId auction = Child(auctions, "open_auction");
      Child(auction, "@id");
      Child(auction, "initial");
      if (Maybe()) Child(auction, "reserve");
      const int bidders = static_cast<int>(rng_.Uniform(5));
      for (int b = 0; b < bidders; ++b) {
        const NodeId bidder = Child(auction, "bidder");
        Child(bidder, "date");
        Child(bidder, "time");
        const NodeId personref = Child(bidder, "personref");
        Child(personref, "@person");
        Child(bidder, "increase");
      }
      Child(auction, "current");
      if (Maybe()) Child(auction, "privacy");
      const NodeId itemref = Child(auction, "itemref");
      Child(itemref, "@item");
      const NodeId seller = Child(auction, "seller");
      Child(seller, "@person");
      if (Maybe()) BuildAnnotation(auction);
      Child(auction, "quantity");
      Child(auction, "type");
      const NodeId interval = Child(auction, "interval");
      Child(interval, "start");
      Child(interval, "end");
    }
  }

  void BuildAnnotation(NodeId parent) {
    const NodeId annotation = Child(parent, "annotation");
    if (Maybe()) Child(annotation, "author");
    BuildDescription(annotation, 1);
    if (Maybe()) Child(annotation, "happiness");
  }

  void BuildClosedAuctions(NodeId site) {
    const NodeId auctions = Child(site, "closed_auctions");
    for (int i = 0; i < options_.num_closed_auctions; ++i) {
      const NodeId auction = Child(auctions, "closed_auction");
      const NodeId seller = Child(auction, "seller");
      Child(seller, "@person");
      const NodeId buyer = Child(auction, "buyer");
      Child(buyer, "@person");
      const NodeId itemref = Child(auction, "itemref");
      Child(itemref, "@item");
      Child(auction, "price");
      Child(auction, "date");
      Child(auction, "quantity");
      Child(auction, "type");
      if (Maybe()) BuildAnnotation(auction);
    }
  }

  XMarkOptions options_;
  common::Rng rng_;
  common::Interner* interner_;
  XmlTree tree_;
};

}  // namespace

XmlTree GenerateXMark(const XMarkOptions& options,
                      common::Interner* interner) {
  return XMarkBuilder(options, interner).Build();
}

}  // namespace xml
}  // namespace qlearn
