// XMark-style auction-site document generator (substitute for the XMark
// benchmark generator [Schmidt et al., VLDB'02]; see DESIGN.md §1 for why the
// substitution is faithful). The generated structure follows the DTD below,
// scaled by XMarkOptions:
//
//   site            -> regions categories catgraph people
//                      open_auctions closed_auctions
//   regions         -> africa asia australia europe namerica samerica
//   <continent>     -> item*
//   item            -> location quantity name payment description shipping
//                      incategory+ mailbox?
//   description     -> text | parlist
//   parlist         -> listitem+        listitem -> text | parlist
//   people          -> person*
//   person          -> name emailaddress phone? address? homepage?
//                      creditcard? profile? watches?
//   address         -> street city country zipcode province?
//   profile         -> interest* education? gender? business age?
//   watches         -> watch*
//   open_auctions   -> open_auction*
//   open_auction    -> initial reserve? bidder* current privacy? itemref
//                      seller annotation? quantity type interval
//   bidder          -> date time personref increase
//   closed_auctions -> closed_auction*
//   closed_auction  -> seller buyer itemref price date quantity type
//                      annotation?
//   categories      -> category+        category -> name description
//   catgraph        -> edge*
#ifndef QLEARN_XML_XMARK_H_
#define QLEARN_XML_XMARK_H_

#include <cstdint>

#include "common/interner.h"
#include "xml/xml_tree.h"

namespace qlearn {
namespace xml {

/// Scale knobs for the generator. The defaults produce a document of a few
/// thousand nodes; scale linearly for larger corpora.
struct XMarkOptions {
  uint64_t seed = 42;
  int num_people = 25;
  int num_open_auctions = 12;
  int num_closed_auctions = 8;
  int num_items_per_region = 6;
  int num_categories = 10;
  /// Probability of optional elements (phone?, reserve?, ...) being present.
  double optional_probability = 0.5;
  /// Maximum recursion depth of description parlists.
  int max_parlist_depth = 3;
};

/// Generates one XMark-style document, interning labels into `interner`.
XmlTree GenerateXMark(const XMarkOptions& options,
                      common::Interner* interner);

}  // namespace xml
}  // namespace qlearn

#endif  // QLEARN_XML_XMARK_H_
