// Arena-based unordered labeled trees: the document model for twig queries
// and multiplicity schemas. Node labels are interned symbols; attributes are
// modeled as children labeled "@name".
#ifndef QLEARN_XML_XML_TREE_H_
#define QLEARN_XML_XML_TREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/interner.h"

namespace qlearn {
namespace xml {

/// Index of a node within its XmlTree arena.
using NodeId = uint32_t;

/// Sentinel for "no node" (e.g. parent of the root).
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// A rooted, node-labeled tree stored in struct-of-arrays form. Child order
/// is preserved for serialization but carries no semantics for queries or
/// schemas (both are order-oblivious per DESIGN.md §2).
class XmlTree {
 public:
  XmlTree() = default;

  /// Creates the root node. Must be called exactly once, first.
  NodeId AddRoot(common::SymbolId label);

  /// Appends a child to `parent` and returns its id.
  NodeId AddChild(NodeId parent, common::SymbolId label);

  /// Grafts a deep copy of `other`'s subtree rooted at `other_node` under
  /// `parent`. Returns the id of the copied root.
  NodeId GraftSubtree(NodeId parent, const XmlTree& other, NodeId other_node);

  size_t NumNodes() const { return labels_.size(); }
  bool empty() const { return labels_.empty(); }
  NodeId root() const { return 0; }

  common::SymbolId label(NodeId n) const { return labels_[n]; }
  NodeId parent(NodeId n) const { return parents_[n]; }
  const std::vector<NodeId>& children(NodeId n) const { return children_[n]; }
  uint32_t depth(NodeId n) const { return depths_[n]; }

  /// True iff `a` is a proper ancestor of `d`.
  bool IsProperAncestor(NodeId a, NodeId d) const;

  /// All node ids in pre-order (root first).
  std::vector<NodeId> PreOrder() const;

  /// All proper descendants of `n` in pre-order.
  std::vector<NodeId> Descendants(NodeId n) const;

  /// Bag of child labels of `n` (sorted, with duplicates).
  std::vector<common::SymbolId> ChildLabelBag(NodeId n) const;

  /// Serializes the subtree at `n` as indented XML-like text.
  std::string ToXml(const common::Interner& interner,
                    NodeId n = 0, int indent = 0) const;

  /// Height of the subtree at `n` (single node = 1).
  uint32_t Height(NodeId n = 0) const;

 private:
  std::vector<common::SymbolId> labels_;
  std::vector<NodeId> parents_;
  std::vector<uint32_t> depths_;
  std::vector<std::vector<NodeId>> children_;
};

}  // namespace xml
}  // namespace qlearn

#endif  // QLEARN_XML_XML_TREE_H_
