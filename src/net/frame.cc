#include "net/frame.h"

#include <algorithm>
#include <utility>

namespace qlearn {
namespace net {

bool AppendFrame(const std::string& payload, size_t max_frame_bytes,
                 std::string* out) {
  if (payload.empty() || payload.size() > max_frame_bytes ||
      payload.size() > UINT32_MAX) {
    return false;
  }
  unsigned char header[kFrameHeaderBytes];
  EncodeFrameHeader(static_cast<uint32_t>(payload.size()), header);
  out->append(reinterpret_cast<const char*>(header), kFrameHeaderBytes);
  *out += payload;
  return true;
}

void FrameReader::Feed(const char* data, size_t n) {
  size_t pos = 0;
  while (pos < n) {
    switch (state_) {
      case State::kHeader: {
        while (header_filled_ < kFrameHeaderBytes && pos < n) {
          header_[header_filled_++] = static_cast<unsigned char>(data[pos++]);
        }
        if (header_filled_ < kFrameHeaderBytes) break;  // need more bytes
        header_filled_ = 0;
        const uint64_t length = DecodeFrameHeader(header_);
        if (length == 0) {
          Event event;
          event.kind = Event::Kind::kBadFrame;
          event.error = "zero-length frame";
          events_.push_back(std::move(event));
          // No body to consume; stay in kHeader for the next frame.
        } else if (length > max_frame_bytes_) {
          Event event;
          event.kind = Event::Kind::kBadFrame;
          event.error = "frame of " + std::to_string(length) +
                        " bytes exceeds the " +
                        std::to_string(max_frame_bytes_) + "-byte limit";
          events_.push_back(std::move(event));
          remaining_ = length;
          state_ = State::kSkip;  // discard the body as it streams in
        } else {
          remaining_ = length;
          // Frames that fit the string's inline (SSO) capacity need no
          // heap buffer at all; anything larger draws on the pool instead
          // of growing a fresh allocation. The buffer being swapped out
          // goes back to the pool rather than being destroyed.
          if (pool_ != nullptr && partial_.capacity() < length) {
            pool_->Release(std::move(partial_));
            partial_ = pool_->Acquire();
          }
          partial_.clear();
          partial_.reserve(static_cast<size_t>(length));
          state_ = State::kPayload;
        }
        break;
      }
      case State::kPayload: {
        const size_t take =
            std::min<uint64_t>(remaining_, static_cast<uint64_t>(n - pos));
        partial_.append(data + pos, take);
        pos += take;
        remaining_ -= take;
        if (remaining_ == 0) {
          Event event;
          event.kind = Event::Kind::kFrame;
          event.payload = std::move(partial_);
          partial_ = std::string();
          events_.push_back(std::move(event));
          state_ = State::kHeader;
        }
        break;
      }
      case State::kSkip: {
        const size_t take =
            std::min<uint64_t>(remaining_, static_cast<uint64_t>(n - pos));
        pos += take;
        remaining_ -= take;
        if (remaining_ == 0) state_ = State::kHeader;
        break;
      }
    }
  }
}

FrameReader::Event FrameReader::Next() {
  Event event = std::move(events_.front());
  events_.pop_front();
  return event;
}

bool FrameReader::MidFrame() const {
  return header_filled_ > 0 || state_ != State::kHeader;
}

}  // namespace net
}  // namespace qlearn
