// Blocking framed-TCP client for the session server.
//
// One Client is one connection; calls are strict request/response (the
// server answers in order, so a blocking client never needs to correlate).
// Typed helpers mirror the SessionService surface: a server-reported error
// frame comes back as the round-tripped common::Status, so remote misuse
// reads exactly like in-process misuse.
//
// Deadlines: an optional per-call budget (set_deadline_millis, or the
// Connect parameter for the handshake) bounds every blocking wait with
// poll(2) before I/O. A deadline that expires mid-call surfaces as
// DeadlineExceeded and disconnects the client — a half-read response
// leaves the stream unusable, so the router's health probes and handoff
// RPCs fail fast instead of hanging on a wedged backend. The default (0)
// blocks forever, exactly like the pre-deadline client.
//
// Not thread-safe: one thread per Client (the load generator gives each
// worker thread its own connection and multiplexes its sessions over it).
#ifndef QLEARN_NET_CLIENT_H_
#define QLEARN_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "net/frame.h"
#include "net/protocol.h"
#include "service/session_service.h"
#include "service/wire.h"

namespace qlearn {
namespace net {

class Client {
 public:
  /// Connects to a numeric IPv4 address ("127.0.0.1") and port.
  /// `deadline_millis` bounds the TCP handshake and becomes the connected
  /// client's per-call deadline; 0 (the default) blocks forever.
  static common::Result<Client> Connect(
      const std::string& address, uint16_t port,
      size_t max_frame_bytes = kDefaultMaxFrameBytes,
      int64_t deadline_millis = 0);

  Client() = default;  ///< unconnected; Connect() produces usable clients
  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool connected() const { return fd_ >= 0; }
  /// Closes the connection (idempotent).
  void Disconnect();

  /// Per-call wall-clock budget for every subsequent call (send + receive
  /// together); 0 restores unbounded blocking. An expired deadline returns
  /// DeadlineExceeded and disconnects (mid-call framing state is lost).
  void set_deadline_millis(int64_t millis) { deadline_millis_ = millis; }
  int64_t deadline_millis() const { return deadline_millis_; }

  /// Sends one raw payload as a frame and blocks for the response frame.
  /// Transport failures (closed socket, oversized response) are errors;
  /// whatever JSON the server sent back is returned verbatim.
  common::Result<std::string> CallRaw(const std::string& payload);

  /// Serializes `request`, round-trips it, and parses the response for
  /// that op. A Result error is a transport/parse failure; a server-side
  /// error frame is returned as a Response with !status.ok().
  common::Result<Response> Call(const Request& request);

  // Typed helpers: transport failures and server-reported errors both
  // surface as the Result/Status error.
  common::Result<std::string> Open(const std::string& scenario,
                                   const service::OpenOptions& options = {});
  common::Result<std::vector<service::wire::QuestionPayload>> Ask(
      const std::string& id, uint64_t k);
  common::Status Tell(const std::string& id, const std::vector<bool>& labels);
  common::Result<std::vector<bool>> OracleLabels(const std::string& id);
  common::Result<service::SessionStatus> Status(const std::string& id);
  common::Result<service::CloseResult> Close(const std::string& id);
  /// Service-wide counters plus the current open-session count.
  common::Result<std::pair<service::ServiceCounters, uint64_t>> Counters();

  // Administrative surface for sharding/rebalance (sessions/export/import
  // ops): list the backend's live handles, ship a quiescent session's
  // hibernation image out, adopt one shipped from elsewhere.
  common::Result<std::vector<std::string>> ListSessions();
  common::Result<service::ExportedSession> ExportSession(
      const std::string& id);
  common::Status ImportSession(const std::string& id,
                               const std::string& scenario,
                               const std::string& image);

 private:
  int fd_ = -1;
  size_t max_frame_bytes_ = kDefaultMaxFrameBytes;
  int64_t deadline_millis_ = 0;  ///< 0 = block forever
};

}  // namespace net
}  // namespace qlearn

#endif  // QLEARN_NET_CLIENT_H_
