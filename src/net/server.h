// Framed-TCP serving front end for SessionService.
//
// The server runs `reactors` shard threads. Each shard owns a disjoint set
// of connections end to end — accept happens on shard 0, which hands new
// sockets off round-robin — so connection state is single-threaded by
// construction per shard, with no locks on the socket path. Within a
// shard, arriving bytes stream through a per-connection FrameReader, and
// complete request frames are executed against the shared SessionService
// (thread-safe; distinct sessions run in parallel) in one of two modes:
//
//   workers > 0   a fixed per-shard worker pool runs HandleFrameInto and
//                 hands finished responses back over a completion queue
//                 and a self-pipe wakeup (requests park off the reactor
//                 thread, good when learner work dominates)
//   workers == 0  the shard thread dispatches inline — no handoff, no
//                 context switch, pipelined requests are answered
//                 back-to-back and flushed as one scatter-gather write
//                 (lowest per-request cost; the BENCH_serving.json rows)
//
// The request path is allocation-free at steady state: frames are parsed
// with an arena (service/json.h ParseInto), reassembly and response
// buffers recycle through a per-shard BufferPool, and flushing walks the
// queued frames with sendmsg(2) scatter-gather instead of concatenating.
//
// Per-connection protocol discipline: requests are answered strictly in
// arrival order. Pipelined frames queue (bounded; the reactor stops
// reading the socket past the cap, so backpressure is TCP flow control,
// not memory growth). A malformed frame — zero-length, oversized, or
// unparseable JSON — produces a structured error frame in the same
// ordered stream and the connection stays usable; the connection is only
// closed by the peer, by EOF, or by Stop().
#ifndef QLEARN_NET_SERVER_H_
#define QLEARN_NET_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "net/frame.h"
#include "service/session_service.h"

namespace qlearn {
namespace net {

struct ServerOptions {
  /// Numeric IPv4 address to bind; loopback by default (the load harness
  /// and tests run client and server on one host).
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via Server::port()).
  uint16_t port = 0;
  /// Worker threads per shard; 0 dispatches inline on the shard thread
  /// (see the mode comparison above).
  size_t workers = 4;
  /// Reactor shards; must be > 0. Each owns its connections, worker
  /// queue, and buffer pool; accept runs on shard 0 and deals sockets
  /// round-robin.
  size_t reactors = 1;
  /// Frame payload cap, enforced on reads and responses alike.
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// listen(2) backlog.
  int backlog = 128;
  /// Complete frames a connection may queue before the reactor stops
  /// reading its socket (resumed as responses drain).
  size_t max_queued_frames = 32;
  /// Buffers each shard's pool retains, and the capacity above which a
  /// released buffer is freed instead of pooled (one oversized frame must
  /// not pin its footprint).
  size_t pool_buffers = 64;
  size_t pool_buffer_bytes = 64 * 1024;
};

/// Lifetime statistics of one server, for tests and the load harness.
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_open = 0;
  uint64_t frames_received = 0;   ///< complete, well-framed payloads
  uint64_t bad_frames = 0;        ///< zero-length/oversized framing errors
  uint64_t truncated_frames = 0;  ///< peer EOF mid-frame
};

class Server {
 public:
  /// Serves `service` (not owned; must outlive the server).
  Server(service::SessionService* service, ServerOptions options = {});
  ~Server();  ///< calls Stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the reactor and worker threads. Fails
  /// (InvalidArgument/Internal) without leaking resources; safe to retry.
  common::Status Start();

  /// Shuts down: stops accepting, closes every connection, joins all
  /// threads. Idempotent; also called by the destructor.
  void Stop();

  /// The bound port (the ephemeral pick when options.port was 0); valid
  /// after a successful Start().
  uint16_t port() const;

  ServerStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace net
}  // namespace qlearn

#endif  // QLEARN_NET_SERVER_H_
