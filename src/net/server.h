// Framed-TCP serving front end for SessionService.
//
// One reactor thread owns every socket: it accepts connections, feeds
// arriving bytes through a per-connection FrameReader, and flushes response
// frames. Complete request frames are dispatched to a fixed pool of worker
// threads that execute protocol::HandleFrame against the shared
// SessionService (which is thread-safe; distinct sessions run in
// parallel). Workers never touch sockets — they hand finished response
// payloads back to the reactor over a completion queue and a self-pipe
// wakeup, so all connection state is single-threaded by construction.
//
// Per-connection protocol discipline: requests are answered strictly in
// arrival order, one in flight at a time. Pipelined frames queue (bounded;
// the reactor stops reading the socket past the cap, so backpressure is
// TCP flow control, not memory growth). A malformed frame — zero-length,
// oversized, or unparseable JSON — produces a structured error frame in
// the same ordered stream and the connection stays usable; the connection
// is only closed by the peer, by EOF, or by Stop().
#ifndef QLEARN_NET_SERVER_H_
#define QLEARN_NET_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "net/frame.h"
#include "service/session_service.h"

namespace qlearn {
namespace net {

struct ServerOptions {
  /// Numeric IPv4 address to bind; loopback by default (the load harness
  /// and tests run client and server on one host).
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via Server::port()).
  uint16_t port = 0;
  /// Fixed worker-pool size; must be > 0.
  size_t workers = 4;
  /// Frame payload cap, enforced on reads and responses alike.
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// listen(2) backlog.
  int backlog = 128;
  /// Complete frames a connection may queue before the reactor stops
  /// reading its socket (resumed as responses drain).
  size_t max_queued_frames = 32;
};

/// Lifetime statistics of one server, for tests and the load harness.
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_open = 0;
  uint64_t frames_received = 0;   ///< complete, well-framed payloads
  uint64_t bad_frames = 0;        ///< zero-length/oversized framing errors
  uint64_t truncated_frames = 0;  ///< peer EOF mid-frame
};

class Server {
 public:
  /// Serves `service` (not owned; must outlive the server).
  Server(service::SessionService* service, ServerOptions options = {});
  ~Server();  ///< calls Stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the reactor and worker threads. Fails
  /// (InvalidArgument/Internal) without leaking resources; safe to retry.
  common::Status Start();

  /// Shuts down: stops accepting, closes every connection, joins all
  /// threads. Idempotent; also called by the destructor.
  void Stop();

  /// The bound port (the ephemeral pick when options.port was 0); valid
  /// after a successful Start().
  uint16_t port() const;

  ServerStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace net
}  // namespace qlearn

#endif  // QLEARN_NET_SERVER_H_
