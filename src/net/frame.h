// Length-prefixed framing for the TCP front end.
//
// A frame is a 4-byte big-endian unsigned payload length followed by that
// many bytes of UTF-8 JSON. The length must be in [1, max_frame_bytes]:
// zero-length frames and frames above the cap are protocol violations the
// reader surfaces as recoverable kBadFrame events (the oversized payload
// is *discarded as it streams in*, never buffered), so a server can answer
// with a structured error frame and keep the connection usable.
//
// FrameReader is a push parser: feed it whatever bytes arrived, then drain
// complete events. Per-connection memory is bounded by one frame
// (max_frame_bytes) plus the events the server has not yet consumed — and
// the server stops feeding (stops reading the socket) when its per-
// connection input queue is full, so the bound is real backpressure, not
// an assumption about client behavior.
#ifndef QLEARN_NET_FRAME_H_
#define QLEARN_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>

#include "net/buffer_pool.h"

namespace qlearn {
namespace net {

/// Bytes of the big-endian length prefix.
inline constexpr size_t kFrameHeaderBytes = 4;

/// Default cap on a frame's payload length (1 MiB). A batch of questions
/// serializes to a few KiB; the cap is headroom, not a target.
inline constexpr size_t kDefaultMaxFrameBytes = 1 << 20;

/// Writes the 4-byte big-endian length prefix for a `length`-byte payload
/// into `out[0..3]`. The single encoder every hop uses — client, server,
/// router — so the framing can never drift per file.
inline void EncodeFrameHeader(uint32_t length,
                              unsigned char out[kFrameHeaderBytes]) {
  out[0] = static_cast<unsigned char>((length >> 24) & 0xff);
  out[1] = static_cast<unsigned char>((length >> 16) & 0xff);
  out[2] = static_cast<unsigned char>((length >> 8) & 0xff);
  out[3] = static_cast<unsigned char>(length & 0xff);
}

/// Inverse of EncodeFrameHeader. Returns the declared payload length; the
/// caller still checks it against [1, max_frame_bytes].
inline uint64_t DecodeFrameHeader(const unsigned char in[kFrameHeaderBytes]) {
  return (static_cast<uint64_t>(in[0]) << 24) |
         (static_cast<uint64_t>(in[1]) << 16) |
         (static_cast<uint64_t>(in[2]) << 8) | static_cast<uint64_t>(in[3]);
}

/// Appends the framed encoding of `payload` to `out`. The payload must be
/// non-empty and at most `max_frame_bytes` (callers frame only payloads
/// they produced; violating the bound is a programming error and returns
/// false without touching `out`).
bool AppendFrame(const std::string& payload, size_t max_frame_bytes,
                 std::string* out);

/// Incremental frame parser with bounded buffering.
class FrameReader {
 public:
  struct Event {
    enum class Kind {
      kFrame,     ///< a complete payload
      kBadFrame,  ///< zero-length or oversized declared length; recoverable
    };
    Kind kind = Kind::kFrame;
    std::string payload;  ///< kFrame: the payload bytes
    std::string error;    ///< kBadFrame: what was wrong
  };

  explicit FrameReader(size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Reassembly buffers come from (and event payloads should go back to)
  /// `pool` instead of being allocated per frame. The pool must outlive
  /// the reader; nullptr (the default) restores plain allocation.
  void set_pool(BufferPool* pool) { pool_ = pool; }

  /// Consumes `n` bytes, emitting events as frames complete. Oversized
  /// payloads are discarded byte-by-byte (one kBadFrame event when the
  /// header is seen, no buffering of the body).
  void Feed(const char* data, size_t n);

  /// True when at least one event is ready.
  bool HasEvent() const { return !events_.empty(); }
  /// Pops the next event; requires HasEvent().
  Event Next();
  size_t EventCount() const { return events_.size(); }

  /// True when the stream stopped mid-frame (partial header or payload) —
  /// an EOF now means the peer truncated a frame.
  bool MidFrame() const;

  /// Bytes currently buffered for the in-progress frame (tests assert the
  /// bound; never exceeds kFrameHeaderBytes + max_frame_bytes).
  size_t BufferedBytes() const { return header_filled_ + partial_.size(); }

 private:
  enum class State { kHeader, kPayload, kSkip };

  size_t max_frame_bytes_;
  BufferPool* pool_ = nullptr;
  State state_ = State::kHeader;
  unsigned char header_[kFrameHeaderBytes] = {0, 0, 0, 0};
  size_t header_filled_ = 0;
  std::string partial_;     // kPayload: body bytes so far
  uint64_t remaining_ = 0;  // kPayload/kSkip: body bytes still expected
  std::deque<Event> events_;
};

}  // namespace net
}  // namespace qlearn

#endif  // QLEARN_NET_FRAME_H_
