// Request/response protocol of the framed-TCP front end.
//
// Every frame payload is one canonical-JSON object (service/json.h subset).
// A request names one SessionService operation:
//
//   {"op":"open","scenario":"join","seed":7,"max_questions":1000000,
//    "max_pending":64,"max_wall_micros":0}
//   {"op":"ask","id":"s-...","k":4}
//   {"op":"tell","id":"s-...","labels":[true,false]}
//   {"op":"oracle","id":"s-..."}
//   {"op":"status","id":"s-..."}
//   {"op":"close","id":"s-..."}
//   {"op":"counters"}
//   {"op":"sessions"}
//   {"op":"export","id":"s-..."}
//   {"op":"import","id":"s-...","scenario":"join","image":"<hex>"}
//
// `open` also accepts an optional `id` so a routing front tier can mint
// handles itself (consistent-hash placement is then decided before the
// backend is picked). `sessions`/`export`/`import` are the administrative
// surface horizontal sharding is built on: export parks a quiescent
// session and ships its checksummed QLSV hibernation image (hex-encoded —
// the canonical JSON subset has no binary strings); import adopts it on
// the new owner. The shared frame cap (net/frame.h) bounds the image at
// every hop, so an oversized handoff is rejected consistently.
//
// A response is either an ok frame or an error frame — the connection is
// never dropped on a bad request:
//
//   {"ok":{...op-specific body...}}
//   {"error":{"code":"NotFound","message":"unknown session: s-42"}}
//
// Error codes are common::StatusCodeName strings, so a client round-trips
// the server-side common::Status losslessly. Embedded questions,
// hypotheses, and stats reuse the wire-format serializations byte-for-byte
// (service/wire.h), which is what lets a load generator compare served
// responses against golden transcripts by byte equality.
#ifndef QLEARN_NET_PROTOCOL_H_
#define QLEARN_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "service/json.h"
#include "service/session_service.h"
#include "service/wire.h"

namespace qlearn {
namespace net {

/// One decoded request frame. Open's knob fields default like
/// service::OpenOptions, so a request may omit them.
struct Request {
  enum class Op {
    kOpen,
    kAsk,
    kTell,
    kOracle,
    kStatus,
    kClose,
    kCounters,
    kSessions,
    kExport,
    kImport,
  };

  Op op = Op::kCounters;

  // kOpen/kImport
  std::string scenario;

  // kOpen
  uint64_t seed = session::SessionDefaults::kSeed;
  uint64_t max_questions = service::SessionBudget{}.max_questions;
  uint64_t max_pending = service::SessionBudget{}.max_pending;
  uint64_t max_wall_micros = 0;  ///< 0 = unlimited (wire carries micros;
                                 ///< the JSON subset has no floats)

  // kAsk/kTell/kOracle/kStatus/kClose/kExport/kImport; optional for kOpen
  // (empty = the service mints a handle).
  std::string id;

  // kAsk
  uint64_t k = 1;

  // kTell
  std::vector<bool> labels;

  // kImport: raw image bytes (hex on the wire).
  std::string image;
};

/// One decoded response frame. `status` is the server-reported outcome:
/// OK for an ok frame, the round-tripped error for an error frame. The
/// other fields are meaningful per op (and only when status.ok()).
struct Response {
  common::Status status;

  std::string id;                                 // open
  std::vector<service::wire::QuestionPayload> questions;  // ask
  std::vector<bool> labels;                       // oracle
  service::SessionStatus session;                 // status
  service::wire::HypothesisPayload hypothesis;    // close
  session::SessionStats stats;                    // close
  service::ServiceCounters counters;              // counters
  uint64_t open_sessions = 0;                     // counters
  uint64_t resident_sessions = 0;                 // counters (in memory)
  uint64_t parked_sessions = 0;                   // counters (hibernated)
  std::vector<std::string> session_ids;           // sessions
  std::string scenario;                           // export
  std::string image;                              // export (raw bytes)
};

/// Canonical serialization of a request (fixed key order, no whitespace).
std::string Serialize(const Request& request);

/// Strict parse of a request frame; unknown ops, unknown keys, and
/// shape violations are ParseError.
common::Result<Request> ParseRequest(const std::string& text);

/// The error-frame payload for a failed operation.
std::string SerializeError(const common::Status& status);

/// Parses a response frame for the given op. A Result error means the
/// frame itself was malformed; a parsed Response with !status.ok() means
/// the server reported a structured error.
common::Result<Response> ParseResponse(Request::Op op,
                                       const std::string& text);

/// Executes one request frame against `service` and returns the response
/// frame payload. Malformed request JSON yields an error frame (never
/// throws, never asserts) — this is the whole server-side dispatch, kept
/// transport-free so tests can drive it without sockets.
///
/// This is the heap reference path; the server's reactors run
/// HandleFrameInto below, which produces byte-identical frames (pinned by
/// tests/wire_property_test.cc and the golden replay) without the per-node
/// tree or per-frame result strings.
std::string HandleFrame(service::SessionService* service,
                        const std::string& request_json);

/// Arena-mode decoded request: field strings are views into the frame
/// buffer (or the arena), labels are an arena-allocated span. Valid while
/// both the frame bytes and the arena live.
struct RequestView {
  Request::Op op = Request::Op::kCounters;

  // kOpen/kImport
  std::string_view scenario;

  // kOpen
  uint64_t seed = session::SessionDefaults::kSeed;
  uint64_t max_questions = service::SessionBudget{}.max_questions;
  uint64_t max_pending = service::SessionBudget{}.max_pending;
  uint64_t max_wall_micros = 0;

  // kAsk/kTell/kOracle/kStatus/kClose/kExport/kImport; optional for kOpen
  std::string_view id;

  // kAsk
  uint64_t k = 1;

  // kTell
  const bool* labels = nullptr;
  uint32_t label_count = 0;

  // kImport: raw image bytes, hex-decoded into the arena.
  std::string_view image;
};

/// Strict parse of a request frame into arena storage: accepts and rejects
/// exactly what ParseRequest does, with the same error messages. With a
/// recycled arena a steady-state parse performs zero heap allocations.
common::Result<RequestView> ParseRequestView(std::string_view text,
                                             service::json::Arena* arena);

/// Arena-mode HandleFrame: parses via `arena` (caller Resets it between
/// frames) and appends the response frame to `*out` (a recycled buffer the
/// caller owns). The appended bytes are exactly what HandleFrame returns
/// for the same input — this is the request hot path of net::Server.
void HandleFrameInto(service::SessionService* service,
                     std::string_view request_json,
                     service::json::Arena* arena, std::string* out);

/// What a routing front tier needs from a request frame, and nothing more:
/// the op string and the session id if one is present. `root` is the
/// parsed view tree (for the open-frame rebuild). The peek does NOT run
/// the full strict validation — the owning backend does that — so a frame
/// that peeks fine can still earn a structured error downstream.
struct RequestPeek {
  std::string_view op;
  std::string_view id;  ///< empty unless has_id
  bool has_id = false;
  const service::json::View* root = nullptr;
};

/// Arena view-mode peek of `frame` (no heap tree, no copies): object
/// shape, string "op", and string "id" when present. Shape violations use
/// the protocol's error wording so router-answered errors read like
/// backend-answered ones.
common::Result<RequestPeek> PeekRequest(std::string_view frame,
                                        service::json::Arena* arena);

/// Rebuilds an id-less open request with the router-minted `id` appended
/// (original member order preserved, canonical bytes). The caller verified
/// via PeekRequest that `root` is an object without an "id" member.
void AppendOpenWithId(const service::json::View& root, std::string_view id,
                      std::string* out);

/// Merges N `counters` response frames into one: op counts, session
/// gauges, and log2 latency histograms are summed bucket-wise and
/// re-serialized canonically. Any error frame among the inputs wins and is
/// returned verbatim; a Result error means an input frame was malformed.
common::Result<std::string> MergeCountersFrames(
    const std::vector<std::string>& frames);

}  // namespace net
}  // namespace qlearn

#endif  // QLEARN_NET_PROTOCOL_H_
