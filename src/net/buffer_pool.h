// Recycled byte buffers for the serving hot path.
//
// Every request frame body, response body, and reassembly buffer on the
// server used to be a fresh std::string; at tens of thousands of requests
// per second that is the dominant allocation source. A BufferPool keeps a
// bounded free list of cleared strings so steady-state traffic reuses the
// same capacity over and over: FrameReader takes reassembly buffers from
// the pool, workers build response bodies in pooled buffers, and the
// reactor returns each body to the pool once its last byte is flushed.
//
// Thread-safe (one pool is shared by a shard's reactor and its workers);
// the lock is uncontended in practice and never held across an allocation
// on the reuse path. Buffers that grew past `max_buffer_bytes` are dropped
// on release so one huge frame cannot pin its capacity forever, and the
// free list is capped at `max_buffers` so an idle server shrinks back.
#ifndef QLEARN_NET_BUFFER_POOL_H_
#define QLEARN_NET_BUFFER_POOL_H_

#include <cstddef>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace qlearn {
namespace net {

class BufferPool {
 public:
  explicit BufferPool(size_t max_buffers = 64,
                      size_t max_buffer_bytes = 64 * 1024)
      : max_buffers_(max_buffers), max_buffer_bytes_(max_buffer_bytes) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns an empty string, reusing pooled capacity when available.
  std::string Acquire() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!free_.empty()) {
        std::string buffer = std::move(free_.back());
        free_.pop_back();
        return buffer;
      }
    }
    return std::string();
  }

  /// Clears `buffer` and keeps its capacity for a later Acquire, unless it
  /// outgrew the per-buffer cap or the pool is full (then it just frees).
  void Release(std::string&& buffer) {
    // An inline (SSO) buffer owns no heap memory worth keeping; computing
    // the threshold from an empty string keeps this portable.
    static const size_t kInlineCapacity = std::string().capacity();
    if (buffer.capacity() <= kInlineCapacity ||
        buffer.capacity() > max_buffer_bytes_) {
      return;  // drop: nothing worth keeping, or too big to pin
    }
    buffer.clear();
    std::lock_guard<std::mutex> lock(mutex_);
    if (free_.size() >= max_buffers_) return;
    free_.push_back(std::move(buffer));
  }

  /// Buffers currently sitting in the free list (tests assert recycling).
  size_t PooledCount() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return free_.size();
  }

 private:
  const size_t max_buffers_;
  const size_t max_buffer_bytes_;
  mutable std::mutex mutex_;
  std::vector<std::string> free_;
};

}  // namespace net
}  // namespace qlearn

#endif  // QLEARN_NET_BUFFER_POOL_H_
