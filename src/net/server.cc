#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "net/protocol.h"

namespace qlearn {
namespace net {

namespace {

/// One request handed to the worker pool. Connections are referenced by id,
/// not pointer: the connection may be gone by the time the worker finishes,
/// and a stale id simply fails the lookup (the response is dropped).
struct Job {
  uint64_t conn_id = 0;
  std::string payload;
};

struct Completion {
  uint64_t conn_id = 0;
  std::string response;
};

/// Reactor-owned connection state. No locks: only the reactor thread
/// touches it.
struct Connection {
  int fd = -1;
  uint64_t id = 0;
  FrameReader reader;
  std::deque<FrameReader::Event> inputs;  ///< complete frames awaiting dispatch
  bool in_flight = false;                 ///< a worker holds one request
  bool peer_eof = false;                  ///< read side closed; drain then close
  std::string outbuf;
  size_t outpos = 0;

  explicit Connection(size_t max_frame_bytes) : reader(max_frame_bytes) {}

  bool FlushDone() const { return outpos == outbuf.size(); }
};

void CloseFd(int* fd) {
  if (*fd >= 0) {
    ::close(*fd);
    *fd = -1;
  }
}

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

struct Server::Impl {
  service::SessionService* service = nullptr;
  ServerOptions options;

  int listen_fd = -1;
  uint16_t bound_port = 0;
  int wake_read = -1;
  int wake_write = -1;

  std::atomic<bool> running{false};
  std::thread reactor;
  std::vector<std::thread> workers;

  std::mutex jobs_mutex;
  std::condition_variable jobs_cv;
  std::deque<Job> jobs;
  bool stopping = false;  // guarded by jobs_mutex

  std::mutex done_mutex;
  std::deque<Completion> done;

  mutable std::mutex stats_mutex;
  ServerStats stats;

  // Reactor-thread-only state.
  std::map<uint64_t, std::unique_ptr<Connection>> connections;
  uint64_t next_conn_id = 1;

  void WakeReactor() {
    const char byte = 1;
    // A full pipe already guarantees a pending wakeup; EAGAIN is fine.
    [[maybe_unused]] const ssize_t ignored = ::write(wake_write, &byte, 1);
  }

  void WorkerLoop() {
    for (;;) {
      Job job;
      {
        std::unique_lock<std::mutex> lock(jobs_mutex);
        jobs_cv.wait(lock, [&] { return stopping || !jobs.empty(); });
        if (stopping) return;
        job = std::move(jobs.front());
        jobs.pop_front();
      }
      std::string response = HandleFrame(service, job.payload);
      {
        std::lock_guard<std::mutex> lock(done_mutex);
        done.push_back({job.conn_id, std::move(response)});
      }
      WakeReactor();
    }
  }

  void EnqueueResponse(Connection* conn, const std::string& response) {
    if (!AppendFrame(response, options.max_frame_bytes, &conn->outbuf)) {
      // A response bigger than the frame cap (a huge Ask batch) cannot be
      // framed; tell the client why instead of wedging the connection.
      const std::string error = SerializeError(common::Status::Internal(
          "response of " + std::to_string(response.size()) +
          " bytes exceeds the frame limit; ask for a smaller batch"));
      AppendFrame(error, options.max_frame_bytes, &conn->outbuf);
    }
  }

  /// Writes as much buffered output as the socket accepts. False on a dead
  /// socket.
  bool Flush(Connection* conn) {
    while (conn->outpos < conn->outbuf.size()) {
      const ssize_t n =
          ::send(conn->fd, conn->outbuf.data() + conn->outpos,
                 conn->outbuf.size() - conn->outpos, MSG_NOSIGNAL);
      if (n > 0) {
        conn->outpos += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
      if (n < 0 && errno == EINTR) continue;
      return false;  // EPIPE/ECONNRESET/...
    }
    if (conn->FlushDone() && !conn->outbuf.empty()) {
      conn->outbuf.clear();
      conn->outpos = 0;
    }
    return true;
  }

  /// Advances the per-connection request pipeline: answers framing errors
  /// inline, dispatches at most one well-formed request to the pool, keeps
  /// responses in arrival order.
  void Step(Connection* conn) {
    while (!conn->in_flight && conn->FlushDone() && !conn->inputs.empty()) {
      FrameReader::Event event = std::move(conn->inputs.front());
      conn->inputs.pop_front();
      if (event.kind == FrameReader::Event::Kind::kBadFrame) {
        EnqueueResponse(conn, SerializeError(common::Status::InvalidArgument(
                                  "bad frame: " + event.error)));
        if (!Flush(conn)) {
          CloseConnection(conn->id);
          return;
        }
        continue;
      }
      conn->in_flight = true;
      {
        std::lock_guard<std::mutex> lock(jobs_mutex);
        jobs.push_back({conn->id, std::move(event.payload)});
      }
      jobs_cv.notify_one();
    }
    if (conn->peer_eof && !conn->in_flight && conn->inputs.empty() &&
        conn->FlushDone()) {
      CloseConnection(conn->id);
    }
  }

  void CloseConnection(uint64_t id) {
    auto it = connections.find(id);
    if (it == connections.end()) return;
    CloseFd(&it->second->fd);
    connections.erase(it);
    std::lock_guard<std::mutex> lock(stats_mutex);
    --stats.connections_open;
  }

  void Accept() {
    for (;;) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // EAGAIN, or fd exhaustion: try again on the next wakeup
      }
      if (!SetNonBlocking(fd)) {
        ::close(fd);
        continue;
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      auto conn = std::make_unique<Connection>(options.max_frame_bytes);
      conn->fd = fd;
      conn->id = next_conn_id++;
      connections.emplace(conn->id, std::move(conn));
      std::lock_guard<std::mutex> lock(stats_mutex);
      ++stats.connections_accepted;
      ++stats.connections_open;
    }
  }

  void ReadFromConnection(Connection* conn) {
    char buffer[64 * 1024];
    for (;;) {
      // Stop pulling bytes once the input queue is at its cap — the unread
      // bytes stay in the kernel buffer and TCP flow control pushes back.
      if (conn->inputs.size() + conn->reader.EventCount() >=
          options.max_queued_frames) {
        break;
      }
      const ssize_t n = ::recv(conn->fd, buffer, sizeof(buffer), 0);
      if (n > 0) {
        conn->reader.Feed(buffer, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      conn->peer_eof = true;  // EOF or a dead socket; drain what we have
      if (n == 0 && conn->reader.MidFrame()) {
        std::lock_guard<std::mutex> lock(stats_mutex);
        ++stats.truncated_frames;
      }
      break;
    }
    uint64_t good = 0;
    uint64_t bad = 0;
    while (conn->reader.HasEvent()) {
      FrameReader::Event event = conn->reader.Next();
      (event.kind == FrameReader::Event::Kind::kFrame ? good : bad) += 1;
      conn->inputs.push_back(std::move(event));
    }
    if (good + bad > 0) {
      std::lock_guard<std::mutex> lock(stats_mutex);
      stats.frames_received += good;
      stats.bad_frames += bad;
    }
  }

  void DrainCompletions() {
    std::deque<Completion> batch;
    {
      std::lock_guard<std::mutex> lock(done_mutex);
      batch.swap(done);
    }
    for (Completion& completion : batch) {
      auto it = connections.find(completion.conn_id);
      if (it == connections.end()) continue;  // connection died mid-request
      Connection* conn = it->second.get();
      conn->in_flight = false;
      EnqueueResponse(conn, completion.response);
      if (!Flush(conn)) {
        CloseConnection(conn->id);
        continue;
      }
      Step(conn);
    }
  }

  void ReactorLoop() {
    std::vector<pollfd> pollfds;
    std::vector<uint64_t> poll_conn_ids;
    while (running.load(std::memory_order_acquire)) {
      pollfds.clear();
      poll_conn_ids.clear();
      pollfds.push_back({wake_read, POLLIN, 0});
      pollfds.push_back({listen_fd, POLLIN, 0});
      for (auto& [id, conn] : connections) {
        short events = 0;
        const bool input_paused =
            conn->inputs.size() + conn->reader.EventCount() >=
            options.max_queued_frames;
        if (!conn->peer_eof && !input_paused) events |= POLLIN;
        if (!conn->FlushDone()) events |= POLLOUT;
        if (events == 0) continue;  // woken by completion, not the socket
        pollfds.push_back({conn->fd, events, 0});
        poll_conn_ids.push_back(id);
      }
      const int ready = ::poll(pollfds.data(), pollfds.size(), -1);
      if (ready < 0) {
        if (errno == EINTR) continue;
        break;  // poll itself failing is unrecoverable
      }
      if (pollfds[0].revents & POLLIN) {
        char drain[256];
        while (::read(wake_read, drain, sizeof(drain)) > 0) {
        }
      }
      DrainCompletions();
      if (pollfds[1].revents & POLLIN) Accept();
      for (size_t i = 2; i < pollfds.size(); ++i) {
        const uint64_t id = poll_conn_ids[i - 2];
        auto it = connections.find(id);
        if (it == connections.end()) continue;  // closed by DrainCompletions
        Connection* conn = it->second.get();
        const short revents = pollfds[i].revents;
        if (revents & (POLLERR | POLLNVAL)) {
          CloseConnection(id);
          continue;
        }
        if (revents & (POLLIN | POLLHUP)) ReadFromConnection(conn);
        if ((revents & POLLOUT) && !Flush(conn)) {
          CloseConnection(id);
          continue;
        }
        Step(conn);
      }
    }
    // Shutdown: drop every connection (in-flight worker responses will
    // miss their lookup and be discarded).
    for (auto& [id, conn] : connections) CloseFd(&conn->fd);
    {
      std::lock_guard<std::mutex> lock(stats_mutex);
      stats.connections_open = 0;
    }
    connections.clear();
  }
};

Server::Server(service::SessionService* service, ServerOptions options)
    : impl_(std::make_unique<Impl>()) {
  impl_->service = service;
  impl_->options = std::move(options);
}

Server::~Server() { Stop(); }

common::Status Server::Start() {
  Impl* impl = impl_.get();
  if (impl->running.load()) {
    return common::Status::FailedPrecondition("server already running");
  }
  if (impl->options.workers == 0) {
    return common::Status::InvalidArgument("options.workers must be > 0");
  }
  if (impl->options.max_frame_bytes == 0) {
    return common::Status::InvalidArgument(
        "options.max_frame_bytes must be > 0");
  }

  int pipe_fds[2];
  if (::pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) != 0) {
    return common::Status::Internal(std::string("pipe2: ") +
                                    std::strerror(errno));
  }
  impl->wake_read = pipe_fds[0];
  impl->wake_write = pipe_fds[1];

  impl->listen_fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (impl->listen_fd < 0) {
    CloseFd(&impl->wake_read);
    CloseFd(&impl->wake_write);
    return common::Status::Internal(std::string("socket: ") +
                                    std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(impl->listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(impl->options.port);
  if (::inet_pton(AF_INET, impl->options.bind_address.c_str(),
                  &addr.sin_addr) != 1) {
    CloseFd(&impl->listen_fd);
    CloseFd(&impl->wake_read);
    CloseFd(&impl->wake_write);
    return common::Status::InvalidArgument("bad bind address: " +
                                           impl->options.bind_address);
  }
  if (::bind(impl->listen_fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(impl->listen_fd, impl->options.backlog) != 0) {
    const std::string error = std::strerror(errno);
    CloseFd(&impl->listen_fd);
    CloseFd(&impl->wake_read);
    CloseFd(&impl->wake_write);
    return common::Status::Internal("bind/listen: " + error);
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  ::getsockname(impl->listen_fd, reinterpret_cast<sockaddr*>(&bound),
                &bound_len);
  impl->bound_port = ntohs(bound.sin_port);

  {
    std::lock_guard<std::mutex> lock(impl->jobs_mutex);
    impl->stopping = false;
  }
  impl->running.store(true, std::memory_order_release);
  impl->reactor = std::thread([impl] { impl->ReactorLoop(); });
  impl->workers.reserve(impl->options.workers);
  for (size_t i = 0; i < impl->options.workers; ++i) {
    impl->workers.emplace_back([impl] { impl->WorkerLoop(); });
  }
  return common::Status::OK();
}

void Server::Stop() {
  Impl* impl = impl_.get();
  if (impl == nullptr || !impl->running.load()) return;
  impl->running.store(false, std::memory_order_release);
  impl->WakeReactor();
  if (impl->reactor.joinable()) impl->reactor.join();
  {
    std::lock_guard<std::mutex> lock(impl->jobs_mutex);
    impl->stopping = true;
    impl->jobs.clear();
  }
  impl->jobs_cv.notify_all();
  for (std::thread& worker : impl->workers) {
    if (worker.joinable()) worker.join();
  }
  impl->workers.clear();
  {
    std::lock_guard<std::mutex> lock(impl->done_mutex);
    impl->done.clear();
  }
  CloseFd(&impl->listen_fd);
  CloseFd(&impl->wake_read);
  CloseFd(&impl->wake_write);
}

uint16_t Server::port() const { return impl_->bound_port; }

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(impl_->stats_mutex);
  return impl_->stats;
}

}  // namespace net
}  // namespace qlearn
