#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "net/buffer_pool.h"
#include "net/protocol.h"
#include "service/json.h"

namespace qlearn {
namespace net {

namespace {

/// One request handed to a shard's worker pool. Connections are referenced
/// by id, not pointer: the connection may be gone by the time the worker
/// finishes, and a stale id simply fails the lookup (the response is
/// dropped).
struct Job {
  uint64_t conn_id = 0;
  std::string payload;
};

struct Completion {
  uint64_t conn_id = 0;
  std::string response;
};

/// One response frame queued for the socket. The 4-byte length prefix and
/// the body stay separate so Flush can scatter-gather straight out of the
/// queue with sendmsg — no concatenation into a contiguous output buffer —
/// and hand each fully-written body back to the shard's pool.
struct OutFrame {
  unsigned char header[kFrameHeaderBytes] = {0, 0, 0, 0};
  size_t header_sent = 0;
  std::string body;
  size_t body_sent = 0;

  bool Done() const {
    return header_sent == kFrameHeaderBytes && body_sent == body.size();
  }
};

/// Shard-owned connection state. No locks: only the owning shard's reactor
/// thread touches it.
struct Connection {
  int fd = -1;
  uint64_t id = 0;
  FrameReader reader;
  std::deque<FrameReader::Event> inputs;  ///< complete frames awaiting dispatch
  bool in_flight = false;  ///< worker mode: a worker holds one request
  bool peer_eof = false;   ///< read side closed; drain then close
  std::deque<OutFrame> outq;

  explicit Connection(size_t max_frame_bytes) : reader(max_frame_bytes) {}

  bool FlushDone() const { return outq.empty(); }
};

void CloseFd(int* fd) {
  if (*fd >= 0) {
    ::close(*fd);
    *fd = -1;
  }
}

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void AddStats(const ServerStats& in, ServerStats* out) {
  out->connections_accepted += in.connections_accepted;
  out->connections_open += in.connections_open;
  out->frames_received += in.frames_received;
  out->bad_frames += in.bad_frames;
  out->truncated_frames += in.truncated_frames;
}

}  // namespace

struct Server::Impl {
  /// One reactor shard: a thread owning a disjoint set of connections, its
  /// own wakeup pipe, worker handoff queues, and buffer pool. Shard 0 also
  /// owns accept(2) and deals new sockets round-robin via incoming_fds.
  struct Shard {
    Shard(Impl* impl, size_t index)
        : impl(impl),
          index(index),
          pool(impl->options.pool_buffers, impl->options.pool_buffer_bytes) {}

    Impl* const impl;
    const size_t index;

    int wake_read = -1;
    int wake_write = -1;
    std::thread thread;
    std::vector<std::thread> workers;

    BufferPool pool;

    std::mutex jobs_mutex;
    std::condition_variable jobs_cv;
    std::deque<Job> jobs;
    bool stopping = false;  // guarded by jobs_mutex

    std::mutex done_mutex;
    std::deque<Completion> done;

    /// Accepted sockets handed to this shard by the acceptor, not yet
    /// adopted into `connections`.
    std::mutex incoming_mutex;
    std::vector<int> incoming_fds;

    mutable std::mutex stats_mutex;
    ServerStats stats;

    // Shard-thread-only state.
    std::map<uint64_t, std::unique_ptr<Connection>> connections;
    service::json::Arena arena;  // inline mode: reset per request

    void Wake() {
      const char byte = 1;
      // A full pipe already guarantees a pending wakeup; EAGAIN is fine.
      [[maybe_unused]] const ssize_t ignored = ::write(wake_write, &byte, 1);
    }

    void WorkerLoop() {
      service::json::Arena worker_arena;
      for (;;) {
        Job job;
        {
          std::unique_lock<std::mutex> lock(jobs_mutex);
          jobs_cv.wait(lock, [&] { return stopping || !jobs.empty(); });
          if (stopping) return;
          job = std::move(jobs.front());
          jobs.pop_front();
        }
        worker_arena.Reset();
        std::string response = pool.Acquire();
        HandleFrameInto(impl->service, job.payload, &worker_arena, &response);
        pool.Release(std::move(job.payload));
        {
          std::lock_guard<std::mutex> lock(done_mutex);
          done.push_back({job.conn_id, std::move(response)});
        }
        Wake();
      }
    }

    void EnqueueResponse(Connection* conn, std::string&& response) {
      const size_t size = response.size();
      if (size == 0 || size > impl->options.max_frame_bytes ||
          size > UINT32_MAX) {
        // A response bigger than the frame cap (a huge Ask batch) cannot be
        // framed; tell the client why instead of wedging the connection.
        pool.Release(std::move(response));
        response = SerializeError(common::Status::Internal(
            "response of " + std::to_string(size) +
            " bytes exceeds the frame limit; ask for a smaller batch"));
      }
      OutFrame frame;
      EncodeFrameHeader(static_cast<uint32_t>(response.size()), frame.header);
      frame.body = std::move(response);
      conn->outq.push_back(std::move(frame));
    }

    /// Writes as much queued output as the socket accepts, gathering up to
    /// eight frames per sendmsg so a pipelined burst leaves in one syscall.
    /// Fully-written bodies go back to the pool. False on a dead socket.
    bool Flush(Connection* conn) {
      while (!conn->outq.empty()) {
        iovec iov[16];
        size_t iovcnt = 0;
        for (OutFrame& frame : conn->outq) {
          if (iovcnt + 2 > 16) break;
          if (frame.header_sent < kFrameHeaderBytes) {
            iov[iovcnt].iov_base = frame.header + frame.header_sent;
            iov[iovcnt].iov_len = kFrameHeaderBytes - frame.header_sent;
            ++iovcnt;
          }
          if (frame.body_sent < frame.body.size()) {
            iov[iovcnt].iov_base = frame.body.data() + frame.body_sent;
            iov[iovcnt].iov_len = frame.body.size() - frame.body_sent;
            ++iovcnt;
          }
        }
        msghdr msg;
        std::memset(&msg, 0, sizeof(msg));
        msg.msg_iov = iov;
        msg.msg_iovlen = iovcnt;
        const ssize_t n = ::sendmsg(conn->fd, &msg, MSG_NOSIGNAL);
        if (n < 0) {
          if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
          if (errno == EINTR) continue;
          return false;  // EPIPE/ECONNRESET/...
        }
        size_t left = static_cast<size_t>(n);
        while (!conn->outq.empty()) {
          OutFrame& frame = conn->outq.front();
          const size_t header_take =
              std::min(left, kFrameHeaderBytes - frame.header_sent);
          frame.header_sent += header_take;
          left -= header_take;
          const size_t body_take =
              std::min(left, frame.body.size() - frame.body_sent);
          frame.body_sent += body_take;
          left -= body_take;
          if (!frame.Done()) break;
          pool.Release(std::move(frame.body));
          conn->outq.pop_front();
        }
        if (n == 0) return true;  // defensive: avoid a hot spin
      }
      return true;
    }

    /// Advances the per-connection request pipeline, keeping responses in
    /// arrival order. Worker mode parks one request at a time in the pool;
    /// inline mode answers every queued request on this thread and flushes
    /// the burst with one scatter-gather write. May close the connection.
    void Step(Connection* conn) {
      if (impl->options.workers == 0) {
        StepInline(conn);
        return;
      }
      while (!conn->in_flight && conn->FlushDone() && !conn->inputs.empty()) {
        FrameReader::Event event = std::move(conn->inputs.front());
        conn->inputs.pop_front();
        if (event.kind == FrameReader::Event::Kind::kBadFrame) {
          EnqueueResponse(conn,
                          SerializeError(common::Status::InvalidArgument(
                              "bad frame: " + event.error)));
          if (!Flush(conn)) {
            CloseConnection(conn->id);
            return;
          }
          continue;
        }
        conn->in_flight = true;
        {
          std::lock_guard<std::mutex> lock(jobs_mutex);
          jobs.push_back({conn->id, std::move(event.payload)});
        }
        jobs_cv.notify_one();
      }
      if (conn->peer_eof && !conn->in_flight && conn->inputs.empty() &&
          conn->FlushDone()) {
        CloseConnection(conn->id);
      }
    }

    void StepInline(Connection* conn) {
      for (;;) {
        // Answer queued requests only while the output queue is under the
        // pipelining cap: a peer that pipelines but never reads must stall
        // this connection (TCP flow control), not grow conn->outq without
        // bound.
        while (!conn->inputs.empty() &&
               conn->outq.size() < impl->options.max_queued_frames) {
          FrameReader::Event event = std::move(conn->inputs.front());
          conn->inputs.pop_front();
          if (event.kind == FrameReader::Event::Kind::kBadFrame) {
            EnqueueResponse(conn,
                            SerializeError(common::Status::InvalidArgument(
                                "bad frame: " + event.error)));
            continue;
          }
          arena.Reset();
          std::string response = pool.Acquire();
          HandleFrameInto(impl->service, event.payload, &arena, &response);
          pool.Release(std::move(event.payload));
          EnqueueResponse(conn, std::move(response));
        }
        if (!Flush(conn)) {
          CloseConnection(conn->id);
          return;
        }
        // If the flush drained everything but requests are still queued,
        // keep going: with outq empty the poll loop would not arm POLLOUT,
        // and with reads paused nothing else would re-enter this
        // connection. Leaving here with a non-empty outq is safe — POLLOUT
        // drives the next Step.
        if (conn->inputs.empty() || !conn->FlushDone()) break;
      }
      if (conn->peer_eof && conn->inputs.empty() && conn->FlushDone()) {
        CloseConnection(conn->id);
      }
    }

    void CloseConnection(uint64_t id) {
      auto it = connections.find(id);
      if (it == connections.end()) return;
      CloseFd(&it->second->fd);
      connections.erase(it);
      std::lock_guard<std::mutex> lock(stats_mutex);
      --stats.connections_open;
    }

    /// Takes ownership of an accepted, non-blocking socket.
    void AdoptFd(int fd) {
      auto conn = std::make_unique<Connection>(impl->options.max_frame_bytes);
      conn->fd = fd;
      conn->id = impl->next_conn_id.fetch_add(1, std::memory_order_relaxed);
      conn->reader.set_pool(&pool);
      connections.emplace(conn->id, std::move(conn));
      std::lock_guard<std::mutex> lock(stats_mutex);
      ++stats.connections_accepted;
      ++stats.connections_open;
    }

    void AdoptIncoming() {
      std::vector<int> fds;
      {
        std::lock_guard<std::mutex> lock(incoming_mutex);
        fds.swap(incoming_fds);
      }
      for (int fd : fds) AdoptFd(fd);
    }

    /// Shard 0 only: accept everything pending and deal the sockets
    /// round-robin across shards (adopting its own share directly).
    void Accept() {
      for (;;) {
        const int fd = ::accept(impl->listen_fd, nullptr, nullptr);
        if (fd < 0) {
          if (errno == EINTR) continue;
          return;  // EAGAIN, or fd exhaustion: try again on the next wakeup
        }
        if (!SetNonBlocking(fd)) {
          ::close(fd);
          continue;
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        const size_t target =
            impl->next_shard.fetch_add(1, std::memory_order_relaxed) %
            impl->shards.size();
        if (target == index) {
          AdoptFd(fd);
          continue;
        }
        Shard* other = impl->shards[target].get();
        {
          std::lock_guard<std::mutex> lock(other->incoming_mutex);
          other->incoming_fds.push_back(fd);
        }
        other->Wake();
      }
    }

    /// True when this connection holds its fill of queued work — complete
    /// input frames plus unflushed response frames — and the reactor
    /// should stop reading its socket until the backlog drains.
    bool InputPaused(const Connection& conn) const {
      return conn.inputs.size() + conn.reader.EventCount() +
                 conn.outq.size() >=
             impl->options.max_queued_frames;
    }

    void ReadFromConnection(Connection* conn) {
      char buffer[64 * 1024];
      for (;;) {
        // Stop pulling bytes once the queued-work cap is reached — the
        // unread bytes stay in the kernel buffer and TCP flow control
        // pushes back.
        if (InputPaused(*conn)) break;
        const ssize_t n = ::recv(conn->fd, buffer, sizeof(buffer), 0);
        if (n > 0) {
          conn->reader.Feed(buffer, static_cast<size_t>(n));
          continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        if (n < 0 && errno == EINTR) continue;
        conn->peer_eof = true;  // EOF or a dead socket; drain what we have
        if (n == 0 && conn->reader.MidFrame()) {
          std::lock_guard<std::mutex> lock(stats_mutex);
          ++stats.truncated_frames;
        }
        break;
      }
      uint64_t good = 0;
      uint64_t bad = 0;
      while (conn->reader.HasEvent()) {
        FrameReader::Event event = conn->reader.Next();
        (event.kind == FrameReader::Event::Kind::kFrame ? good : bad) += 1;
        conn->inputs.push_back(std::move(event));
      }
      if (good + bad > 0) {
        std::lock_guard<std::mutex> lock(stats_mutex);
        stats.frames_received += good;
        stats.bad_frames += bad;
      }
    }

    void DrainCompletions() {
      std::deque<Completion> batch;
      {
        std::lock_guard<std::mutex> lock(done_mutex);
        batch.swap(done);
      }
      for (Completion& completion : batch) {
        auto it = connections.find(completion.conn_id);
        if (it == connections.end()) {
          // Connection died mid-request; recycle the orphaned response.
          pool.Release(std::move(completion.response));
          continue;
        }
        Connection* conn = it->second.get();
        conn->in_flight = false;
        EnqueueResponse(conn, std::move(completion.response));
        if (!Flush(conn)) {
          CloseConnection(conn->id);
          continue;
        }
        Step(conn);
      }
    }

    void Loop() {
      const bool acceptor = (index == 0);
      std::vector<pollfd> pollfds;
      std::vector<uint64_t> poll_conn_ids;
      while (impl->running.load(std::memory_order_acquire)) {
        pollfds.clear();
        poll_conn_ids.clear();
        pollfds.push_back({wake_read, POLLIN, 0});
        if (acceptor) pollfds.push_back({impl->listen_fd, POLLIN, 0});
        const size_t base = pollfds.size();
        for (auto& [id, conn] : connections) {
          short events = 0;
          if (!conn->peer_eof && !InputPaused(*conn)) events |= POLLIN;
          if (!conn->FlushDone()) events |= POLLOUT;
          if (events == 0) continue;  // woken by completion, not the socket
          pollfds.push_back({conn->fd, events, 0});
          poll_conn_ids.push_back(id);
        }
        const int ready = ::poll(pollfds.data(), pollfds.size(), -1);
        if (ready < 0) {
          if (errno == EINTR) continue;
          break;  // poll itself failing is unrecoverable
        }
        if (pollfds[0].revents & POLLIN) {
          char drain[256];
          while (::read(wake_read, drain, sizeof(drain)) > 0) {
          }
        }
        AdoptIncoming();
        DrainCompletions();
        if (acceptor && (pollfds[1].revents & POLLIN)) Accept();
        for (size_t i = base; i < pollfds.size(); ++i) {
          const uint64_t id = poll_conn_ids[i - base];
          auto it = connections.find(id);
          if (it == connections.end()) continue;  // closed while draining
          Connection* conn = it->second.get();
          const short revents = pollfds[i].revents;
          if (revents & (POLLERR | POLLNVAL)) {
            CloseConnection(id);
            continue;
          }
          if (revents & (POLLIN | POLLHUP)) ReadFromConnection(conn);
          if ((revents & POLLOUT) && !Flush(conn)) {
            CloseConnection(id);
            continue;
          }
          Step(conn);
        }
      }
      // Shutdown: drop every connection (in-flight worker responses will
      // miss their lookup and be discarded).
      for (auto& [id, conn] : connections) CloseFd(&conn->fd);
      {
        std::lock_guard<std::mutex> lock(stats_mutex);
        stats.connections_open = 0;
      }
      connections.clear();
    }
  };

  service::SessionService* service = nullptr;
  ServerOptions options;

  int listen_fd = -1;
  uint16_t bound_port = 0;

  std::atomic<bool> running{false};
  std::atomic<uint64_t> next_conn_id{1};
  std::atomic<uint64_t> next_shard{0};
  std::vector<std::unique_ptr<Shard>> shards;

  /// Stats folded in from shards of a previous Start/Stop cycle, so
  /// restarting the server keeps lifetime counts cumulative. The mutex
  /// also guards the `shards` vector against concurrent structural change:
  /// Start() retires and replaces the vector under it, and stats() holds
  /// it while iterating.
  mutable std::mutex retired_mutex;
  ServerStats retired;
};

Server::Server(service::SessionService* service, ServerOptions options)
    : impl_(std::make_unique<Impl>()) {
  impl_->service = service;
  impl_->options = std::move(options);
}

Server::~Server() { Stop(); }

common::Status Server::Start() {
  Impl* impl = impl_.get();
  if (impl->running.load()) {
    return common::Status::FailedPrecondition("server already running");
  }
  if (impl->options.reactors == 0) {
    return common::Status::InvalidArgument("options.reactors must be > 0");
  }
  if (impl->options.max_frame_bytes == 0) {
    return common::Status::InvalidArgument(
        "options.max_frame_bytes must be > 0");
  }

  // Retire the previous cycle's shards (if any) before building new ones.
  // retired_mutex guards the shards vector itself here so a concurrent
  // stats() never iterates it mid-rebuild.
  if (!impl->shards.empty()) {
    std::lock_guard<std::mutex> lock(impl->retired_mutex);
    for (auto& shard : impl->shards) {
      std::lock_guard<std::mutex> shard_lock(shard->stats_mutex);
      AddStats(shard->stats, &impl->retired);
    }
    impl->shards.clear();
  }

  auto fail = [impl](common::Status status) {
    CloseFd(&impl->listen_fd);
    return status;
  };

  impl->listen_fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (impl->listen_fd < 0) {
    return fail(common::Status::Internal(std::string("socket: ") +
                                         std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(impl->listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(impl->options.port);
  if (::inet_pton(AF_INET, impl->options.bind_address.c_str(),
                  &addr.sin_addr) != 1) {
    return fail(common::Status::InvalidArgument("bad bind address: " +
                                                impl->options.bind_address));
  }
  if (::bind(impl->listen_fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(impl->listen_fd, impl->options.backlog) != 0) {
    return fail(
        common::Status::Internal(std::string("bind/listen: ") +
                                 std::strerror(errno)));
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  ::getsockname(impl->listen_fd, reinterpret_cast<sockaddr*>(&bound),
                &bound_len);
  impl->bound_port = ntohs(bound.sin_port);

  // Build the new shard set off to the side and install it in one move
  // under retired_mutex, so stats() always sees either the old vector or
  // the complete new one.
  std::vector<std::unique_ptr<Impl::Shard>> shards;
  shards.reserve(impl->options.reactors);
  for (size_t i = 0; i < impl->options.reactors; ++i) {
    auto shard = std::make_unique<Impl::Shard>(impl, i);
    int pipe_fds[2];
    if (::pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) != 0) {
      for (auto& built : shards) {
        CloseFd(&built->wake_read);
        CloseFd(&built->wake_write);
      }
      return fail(common::Status::Internal(std::string("pipe2: ") +
                                           std::strerror(errno)));
    }
    shard->wake_read = pipe_fds[0];
    shard->wake_write = pipe_fds[1];
    shards.push_back(std::move(shard));
  }
  {
    std::lock_guard<std::mutex> lock(impl->retired_mutex);
    impl->shards = std::move(shards);
  }

  impl->next_shard.store(0, std::memory_order_relaxed);
  impl->running.store(true, std::memory_order_release);
  for (auto& shard : impl->shards) {
    Impl::Shard* s = shard.get();
    s->thread = std::thread([s] { s->Loop(); });
    s->workers.reserve(impl->options.workers);
    for (size_t w = 0; w < impl->options.workers; ++w) {
      s->workers.emplace_back([s] { s->WorkerLoop(); });
    }
  }
  return common::Status::OK();
}

void Server::Stop() {
  Impl* impl = impl_.get();
  if (impl == nullptr || !impl->running.load()) return;
  impl->running.store(false, std::memory_order_release);
  for (auto& shard : impl->shards) shard->Wake();
  for (auto& shard : impl->shards) {
    if (shard->thread.joinable()) shard->thread.join();
  }
  for (auto& shard : impl->shards) {
    {
      std::lock_guard<std::mutex> lock(shard->jobs_mutex);
      shard->stopping = true;
      shard->jobs.clear();
    }
    shard->jobs_cv.notify_all();
    for (std::thread& worker : shard->workers) {
      if (worker.joinable()) worker.join();
    }
    shard->workers.clear();
    {
      std::lock_guard<std::mutex> lock(shard->done_mutex);
      shard->done.clear();
    }
    {
      // Sockets dealt to this shard that it never got to adopt. Swept
      // after every thread is joined, so nothing races the handoff.
      std::lock_guard<std::mutex> lock(shard->incoming_mutex);
      for (int fd : shard->incoming_fds) ::close(fd);
      shard->incoming_fds.clear();
    }
    CloseFd(&shard->wake_read);
    CloseFd(&shard->wake_write);
  }
  CloseFd(&impl->listen_fd);
}

uint16_t Server::port() const { return impl_->bound_port; }

ServerStats Server::stats() const {
  ServerStats total;
  // retired_mutex also pins the shards vector, which Start() swaps out on
  // a restart; holding it across the iteration keeps stats() safe against
  // a concurrent Stop()/Start() cycle.
  std::lock_guard<std::mutex> lock(impl_->retired_mutex);
  total = impl_->retired;
  for (const auto& shard : impl_->shards) {
    std::lock_guard<std::mutex> shard_lock(shard->stats_mutex);
    AddStats(shard->stats, &total);
  }
  return total;
}

}  // namespace net
}  // namespace qlearn
