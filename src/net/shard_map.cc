#include "net/shard_map.h"

namespace qlearn {
namespace net {

std::string ToString(const BackendAddress& address) {
  return address.host + ":" + std::to_string(address.port);
}

uint64_t SessionKeyHash(std::string_view id) {
  uint64_t hash = 14695981039346656037ull;  // FNV offset basis
  for (const char c : id) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;  // FNV prime
  }
  return hash;
}

size_t JumpConsistentHash(uint64_t key, size_t buckets) {
  // Lamping & Veach, "A Fast, Minimal Memory, Consistent Hash Algorithm".
  int64_t b = -1;
  int64_t j = 0;
  while (j < static_cast<int64_t>(buckets)) {
    b = j;
    key = key * 2862933555777941757ull + 1;
    j = static_cast<int64_t>(
        static_cast<double>(b + 1) *
        (static_cast<double>(1ll << 31) /
         static_cast<double>((key >> 33) + 1)));
  }
  return static_cast<size_t>(b);
}

size_t ShardFor(std::string_view id, size_t buckets) {
  return JumpConsistentHash(SessionKeyHash(id), buckets);
}

}  // namespace net
}  // namespace qlearn
