// Generation-stamped shard map: which backend owns which session id.
//
// Placement is jump consistent hashing (Lamping & Veach) over an FNV-1a-64
// hash of the session id. Jump hash gives the property rebalancing needs:
// growing the backend list from N to N+1 moves only ~1/(N+1) of the keys,
// and every key that moves lands on the NEW backend — so a rebalance
// migrates exactly the sessions whose owner changed and nothing else.
//
// The map is a value type. The router holds the live copy behind its own
// synchronization and bumps `generation` on every install; the generation
// is what lets logs, stats, and the rebalance driver talk about "the map
// before" vs "the map after" unambiguously.
#ifndef QLEARN_NET_SHARD_MAP_H_
#define QLEARN_NET_SHARD_MAP_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace qlearn {
namespace net {

/// One backend process speaking the framed-TCP protocol.
struct BackendAddress {
  std::string host;
  uint16_t port = 0;

  bool operator==(const BackendAddress& other) const {
    return host == other.host && port == other.port;
  }
  bool operator!=(const BackendAddress& other) const {
    return !(*this == other);
  }
};

/// "host:port" — the router keys its connection tables by this.
std::string ToString(const BackendAddress& address);

/// The routing table: an ordered backend list plus the generation stamp
/// that changes whenever the list does. Order matters — jump hash buckets
/// are indices into `backends`, so reordering the list reshuffles
/// placement exactly like replacing it.
struct ShardMap {
  uint64_t generation = 0;
  std::vector<BackendAddress> backends;

  bool empty() const { return backends.empty(); }
  size_t size() const { return backends.size(); }
};

/// FNV-1a-64 of the session id — the key fed to jump hash. Kept separate
/// from placement so tests can pin the hash and the bucket independently.
uint64_t SessionKeyHash(std::string_view id);

/// Jump consistent hash: maps `key` to a bucket in [0, buckets). Requires
/// buckets >= 1.
size_t JumpConsistentHash(uint64_t key, size_t buckets);

/// The bucket (index into ShardMap::backends) owning `id`.
size_t ShardFor(std::string_view id, size_t buckets);

}  // namespace net
}  // namespace qlearn

#endif  // QLEARN_NET_SHARD_MAP_H_
