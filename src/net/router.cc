#include "net/router.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <random>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/buffer_pool.h"
#include "net/client.h"
#include "net/protocol.h"
#include "service/json.h"

namespace qlearn {
namespace net {

namespace {

using common::Status;

/// One response frame queued for a socket (same scatter-gather shape as
/// the server's output queue; see server.cc).
struct OutFrame {
  unsigned char header[kFrameHeaderBytes] = {0, 0, 0, 0};
  size_t header_sent = 0;
  std::string body;
  size_t body_sent = 0;

  bool Done() const {
    return header_sent == kFrameHeaderBytes && body_sent == body.size();
  }
};

/// One response slot in a client connection's FIFO. Slots complete out of
/// order (different backends answer at different speeds) but leave in
/// order: only a ready front slot moves to the output queue.
struct Pending {
  enum class Kind { kSingle, kCounters, kSessions };

  uint64_t seq = 0;
  Kind kind = Kind::kSingle;
  bool ready = false;
  std::string body;  ///< the response frame payload, once ready

  // Fan-out bookkeeping (kCounters/kSessions).
  uint32_t awaiting = 0;
  std::vector<std::string> parts;
};

/// Shard-owned client connection. Only the owning shard thread touches it.
struct ClientConn {
  int fd = -1;
  uint64_t id = 0;
  FrameReader reader;
  std::deque<FrameReader::Event> inputs;
  bool peer_eof = false;
  std::deque<OutFrame> outq;
  std::deque<Pending> pending;
  uint64_t next_seq = 1;

  explicit ClientConn(size_t max_frame_bytes) : reader(max_frame_bytes) {}
};

/// One request forwarded to a backend and not yet answered. The client is
/// referenced by id + slot seq, never by pointer: it may be gone by the
/// time the backend answers, and a stale lookup just drops the response.
struct Forwarded {
  uint64_t client_id = 0;
  uint64_t seq = 0;
  /// Non-empty when this is a `close` whose id has a routing override: an
  /// ok response retires the override (the parked-behind session is gone).
  std::string close_id;
};

/// Shard-owned pooled connection to one backend. Responses come back in
/// request order per connection (the backend answers FIFO), so in_flight
/// is the whole correlation state.
struct BackendConn {
  int fd = -1;
  std::string address;  ///< "host:port", the connection-table key
  FrameReader reader;
  std::deque<OutFrame> outq;
  std::deque<Forwarded> in_flight;

  explicit BackendConn(size_t max_frame_bytes) : reader(max_frame_bytes) {}
};

void CloseFd(int* fd) {
  if (*fd >= 0) {
    ::close(*fd);
    *fd = -1;
  }
}

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Connects to host:port with a wall-clock budget; returns the connected
/// non-blocking fd, or -1 with `*error` set.
int ConnectWithDeadline(const std::string& host, uint16_t port,
                        int64_t deadline_millis, std::string* error) {
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    *error = "bad address: " + host;
    return -1;
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadline_millis);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0 && errno == EINPROGRESS) {
    for (;;) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - std::chrono::steady_clock::now())
                            .count();
      if (left <= 0) {
        ::close(fd);
        *error = "connect: deadline exceeded";
        return -1;
      }
      pollfd p;
      p.fd = fd;
      p.events = POLLOUT;
      p.revents = 0;
      const int ready = ::poll(&p, 1, static_cast<int>(left));
      if (ready > 0) break;
      if (ready == 0) {
        ::close(fd);
        *error = "connect: deadline exceeded";
        return -1;
      }
      if (errno != EINTR) {
        ::close(fd);
        *error = std::string("poll: ") + std::strerror(errno);
        return -1;
      }
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0) {
      so_error = errno;
    }
    if (so_error != 0) {
      ::close(fd);
      *error = std::string("connect: ") + std::strerror(so_error);
      return -1;
    }
  } else if (rc != 0) {
    *error = std::string("connect: ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

/// The error frame a backend would send for a request missing its id
/// (json.cc ToStringView wording), so router-answered errors are
/// byte-identical to backend-answered ones.
std::string MissingIdError() {
  return SerializeError(
      Status::ParseError("json: missing or non-string \"id\""));
}

std::string UnknownOpError(std::string_view op) {
  return SerializeError(
      Status::ParseError("protocol: unknown op \"" + std::string(op) + "\""));
}

/// Merges `sessions` fan-out parts: ids concatenate and sort (each backend
/// lists its own; the union is the fleet's). Any error frame wins.
std::string MergeSessionsFrames(const std::vector<std::string>& parts) {
  std::vector<std::string> ids;
  for (const std::string& part : parts) {
    auto response = ParseResponse(Request::Op::kSessions, part);
    if (!response.ok()) return SerializeError(response.status());
    if (!response.value().status.ok()) return part;
    for (std::string& id : response.value().session_ids) {
      ids.push_back(std::move(id));
    }
  }
  std::sort(ids.begin(), ids.end());
  std::string out = "{\"ok\":{\"ids\":[";
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out.push_back(',');
    service::json::AppendEscaped(ids[i], &out);
  }
  out += "]}}";
  return out;
}

void AddStats(const RouterStats& in, RouterStats* out) {
  out->connections_accepted += in.connections_accepted;
  out->connections_open += in.connections_open;
  out->frames_received += in.frames_received;
  out->bad_frames += in.bad_frames;
  out->truncated_frames += in.truncated_frames;
  out->frames_forwarded += in.frames_forwarded;
  out->local_answers += in.local_answers;
  out->fanouts += in.fanouts;
  out->ids_minted += in.ids_minted;
  out->backend_reconnects += in.backend_reconnects;
  out->backend_errors += in.backend_errors;
  out->dial_backoffs += in.dial_backoffs;
}

}  // namespace

struct Router::Impl {
  struct Shard {
    Shard(Impl* impl, size_t index)
        : impl(impl),
          index(index),
          pool(impl->options.pool_buffers, impl->options.pool_buffer_bytes) {}

    Impl* const impl;
    const size_t index;

    int wake_read = -1;
    int wake_write = -1;
    std::thread thread;

    BufferPool pool;

    std::mutex incoming_mutex;
    std::vector<int> incoming_fds;

    mutable std::mutex stats_mutex;
    RouterStats stats;

    /// Requests forwarded and not yet answered, for the rebalance drain.
    std::atomic<uint64_t> in_flight_count{0};
    /// Set once the shard has observed `paused` and finished the loop
    /// iteration — after this, no new dispatch until the pause lifts.
    std::atomic<bool> pause_ack{false};

    // Shard-thread-only state.
    std::map<uint64_t, std::unique_ptr<ClientConn>> clients;
    std::map<std::string, std::unique_ptr<BackendConn>> backends;
    service::json::Arena arena;  // reset per peeked frame

    /// Recent dial failures: until the entry expires, requests routed to
    /// that backend fail fast with the cached error instead of burning
    /// another admin_deadline_millis blocking the whole reactor.
    struct DialFailure {
      std::chrono::steady_clock::time_point until;
      std::string error;
    };
    std::map<std::string, DialFailure> dial_failures;

    void Wake() {
      const char byte = 1;
      [[maybe_unused]] const ssize_t ignored = ::write(wake_write, &byte, 1);
    }

    void Bump(uint64_t RouterStats::*field, uint64_t by = 1) {
      std::lock_guard<std::mutex> lock(stats_mutex);
      stats.*field += by;
    }

    // ---- output queues (same shape for clients and backends) ----

    void EnqueueOut(std::deque<OutFrame>* outq, std::string&& body) {
      const size_t size = body.size();
      if (size == 0 || size > impl->options.max_frame_bytes ||
          size > UINT32_MAX) {
        pool.Release(std::move(body));
        body = SerializeError(Status::Internal(
            "response of " + std::to_string(size) +
            " bytes exceeds the frame limit"));
      }
      OutFrame frame;
      EncodeFrameHeader(static_cast<uint32_t>(body.size()), frame.header);
      frame.body = std::move(body);
      outq->push_back(std::move(frame));
    }

    /// Writes queued output with sendmsg scatter-gather (up to eight
    /// frames per call). False on a dead socket.
    bool FlushOut(int fd, std::deque<OutFrame>* outq) {
      while (!outq->empty()) {
        iovec iov[16];
        size_t iovcnt = 0;
        for (OutFrame& frame : *outq) {
          if (iovcnt + 2 > 16) break;
          if (frame.header_sent < kFrameHeaderBytes) {
            iov[iovcnt].iov_base = frame.header + frame.header_sent;
            iov[iovcnt].iov_len = kFrameHeaderBytes - frame.header_sent;
            ++iovcnt;
          }
          if (frame.body_sent < frame.body.size()) {
            iov[iovcnt].iov_base = frame.body.data() + frame.body_sent;
            iov[iovcnt].iov_len = frame.body.size() - frame.body_sent;
            ++iovcnt;
          }
        }
        msghdr msg;
        std::memset(&msg, 0, sizeof(msg));
        msg.msg_iov = iov;
        msg.msg_iovlen = iovcnt;
        const ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
        if (n < 0) {
          if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
          if (errno == EINTR) continue;
          return false;
        }
        size_t left = static_cast<size_t>(n);
        while (!outq->empty()) {
          OutFrame& frame = outq->front();
          const size_t header_take =
              std::min(left, kFrameHeaderBytes - frame.header_sent);
          frame.header_sent += header_take;
          left -= header_take;
          const size_t body_take =
              std::min(left, frame.body.size() - frame.body_sent);
          frame.body_sent += body_take;
          left -= body_take;
          if (!frame.Done()) break;
          pool.Release(std::move(frame.body));
          outq->pop_front();
        }
        if (n == 0) return true;
      }
      return true;
    }

    // ---- client side ----

    void CloseClient(uint64_t id) {
      auto it = clients.find(id);
      if (it == clients.end()) return;
      CloseFd(&it->second->fd);
      clients.erase(it);
      std::lock_guard<std::mutex> lock(stats_mutex);
      --stats.connections_open;
    }

    void AdoptFd(int fd) {
      auto conn = std::make_unique<ClientConn>(impl->options.max_frame_bytes);
      conn->fd = fd;
      conn->id = impl->next_conn_id.fetch_add(1, std::memory_order_relaxed);
      conn->reader.set_pool(&pool);
      clients.emplace(conn->id, std::move(conn));
      std::lock_guard<std::mutex> lock(stats_mutex);
      ++stats.connections_accepted;
      ++stats.connections_open;
    }

    void AdoptIncoming() {
      std::vector<int> fds;
      {
        std::lock_guard<std::mutex> lock(incoming_mutex);
        fds.swap(incoming_fds);
      }
      for (int fd : fds) AdoptFd(fd);
    }

    void Accept() {
      for (;;) {
        const int fd = ::accept(impl->listen_fd, nullptr, nullptr);
        if (fd < 0) {
          if (errno == EINTR) continue;
          return;
        }
        if (!SetNonBlocking(fd)) {
          ::close(fd);
          continue;
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        const size_t target =
            impl->next_shard.fetch_add(1, std::memory_order_relaxed) %
            impl->shards.size();
        if (target == index) {
          AdoptFd(fd);
          continue;
        }
        Shard* other = impl->shards[target].get();
        {
          std::lock_guard<std::mutex> lock(other->incoming_mutex);
          other->incoming_fds.push_back(fd);
        }
        other->Wake();
      }
    }

    bool InputPaused(const ClientConn& conn) const {
      return conn.inputs.size() + conn.reader.EventCount() +
                 conn.pending.size() >=
             impl->options.max_queued_frames;
    }

    void ReadFromClient(ClientConn* conn) {
      char buffer[64 * 1024];
      for (;;) {
        if (InputPaused(*conn)) break;
        const ssize_t n = ::recv(conn->fd, buffer, sizeof(buffer), 0);
        if (n > 0) {
          conn->reader.Feed(buffer, static_cast<size_t>(n));
          continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        if (n < 0 && errno == EINTR) continue;
        conn->peer_eof = true;
        if (n == 0 && conn->reader.MidFrame()) {
          std::lock_guard<std::mutex> lock(stats_mutex);
          ++stats.truncated_frames;
        }
        break;
      }
      uint64_t good = 0;
      uint64_t bad = 0;
      while (conn->reader.HasEvent()) {
        FrameReader::Event event = conn->reader.Next();
        (event.kind == FrameReader::Event::Kind::kFrame ? good : bad) += 1;
        conn->inputs.push_back(std::move(event));
      }
      if (good + bad > 0) {
        std::lock_guard<std::mutex> lock(stats_mutex);
        stats.frames_received += good;
        stats.bad_frames += bad;
      }
    }

    /// Moves every ready front slot to the output queue and flushes. May
    /// close the connection; false if it did.
    bool PumpClient(ClientConn* conn) {
      while (!conn->pending.empty() && conn->pending.front().ready) {
        EnqueueOut(&conn->outq, std::move(conn->pending.front().body));
        conn->pending.pop_front();
      }
      if (!FlushOut(conn->fd, &conn->outq)) {
        CloseClient(conn->id);
        return false;
      }
      return true;
    }

    Pending& PushSlot(ClientConn* conn) {
      conn->pending.emplace_back();
      conn->pending.back().seq = conn->next_seq++;
      return conn->pending.back();
    }

    /// Answers a request locally (no backend round trip).
    void PushLocal(ClientConn* conn, std::string&& body) {
      Pending& slot = PushSlot(conn);
      slot.ready = true;
      slot.body = std::move(body);
      Bump(&RouterStats::local_answers);
    }

    // ---- backend side ----

    /// The live connection to `address`, dialing if necessary. Null on
    /// connect failure, with `*error` set.
    BackendConn* EnsureBackend(const BackendAddress& address,
                               std::string* error) {
      const std::string key = ToString(address);
      auto it = backends.find(key);
      if (it != backends.end()) return it->second.get();
      auto failed = dial_failures.find(key);
      if (failed != dial_failures.end()) {
        if (std::chrono::steady_clock::now() < failed->second.until) {
          *error = failed->second.error;
          Bump(&RouterStats::dial_backoffs);
          return nullptr;
        }
        dial_failures.erase(failed);
      }
      const int fd = ConnectWithDeadline(
          address.host, address.port, impl->options.admin_deadline_millis,
          error);
      if (fd < 0) {
        dial_failures[key] = {
            std::chrono::steady_clock::now() +
                std::chrono::milliseconds(
                    impl->options.connect_backoff_millis),
            *error};
        return nullptr;
      }
      auto conn = std::make_unique<BackendConn>(impl->options.max_frame_bytes);
      conn->fd = fd;
      conn->address = key;
      conn->reader.set_pool(&pool);
      BackendConn* raw = conn.get();
      backends.emplace(key, std::move(conn));
      Bump(&RouterStats::backend_reconnects);
      return raw;
    }

    /// Fails every in-flight request on `backend` with Unavailable and
    /// drops the connection (the next request re-dials).
    void FailBackend(BackendConn* backend, const std::string& reason) {
      const std::string key = backend->address;
      std::deque<Forwarded> orphans;
      orphans.swap(backend->in_flight);
      in_flight_count.fetch_sub(orphans.size(), std::memory_order_relaxed);
      Bump(&RouterStats::backend_errors, orphans.size());
      CloseFd(&backend->fd);
      backends.erase(key);  // `backend` is dead past this line
      const std::string error = SerializeError(
          Status::Unavailable("backend " + key + ": " + reason));
      for (Forwarded& entry : orphans) {
        auto it = clients.find(entry.client_id);
        if (it == clients.end()) continue;
        ClientConn* conn = it->second.get();
        touched_clients.push_back(conn->id);
        for (Pending& slot : conn->pending) {
          if (slot.seq != entry.seq) continue;
          if (!slot.ready) {
            slot.ready = true;
            slot.kind = Pending::Kind::kSingle;
            slot.body = error;
          }
          break;
        }
        PumpClient(conn);
      }
    }

    /// Queues `payload` on the backend owning it and records the slot to
    /// fill when the response comes back.
    void Forward(ClientConn* conn, const BackendAddress& address,
                 std::string&& payload, std::string close_id) {
      std::string error;
      BackendConn* backend = EnsureBackend(address, &error);
      if (backend == nullptr) {
        pool.Release(std::move(payload));
        Bump(&RouterStats::backend_errors);
        PushLocal(conn, SerializeError(Status::Unavailable(
                            "backend " + ToString(address) + ": " + error)));
        return;
      }
      Pending& slot = PushSlot(conn);
      backend->in_flight.push_back({conn->id, slot.seq, std::move(close_id)});
      in_flight_count.fetch_add(1, std::memory_order_relaxed);
      EnqueueOut(&backend->outq, std::move(payload));
      Bump(&RouterStats::frames_forwarded);
      if (!FlushOut(backend->fd, &backend->outq)) {
        FailBackend(backend, "send failed");
      }
    }

    /// Broadcasts `payload` to every backend in the map — plus any
    /// override targets the map no longer lists, where sessions stranded
    /// by a failed rebalance still live — and merges the responses into
    /// one slot.
    void FanOut(ClientConn* conn, Pending::Kind kind, std::string&& payload) {
      const std::shared_ptr<const ShardMap> map = impl->Map();
      std::vector<BackendAddress> targets = map->backends;
      if (impl->override_count.load(std::memory_order_acquire) > 0) {
        std::lock_guard<std::mutex> lock(impl->override_mutex);
        for (const auto& [id, address] : impl->overrides) {
          bool known = false;
          for (const BackendAddress& target : targets) {
            if (target == address) known = true;
          }
          if (!known) targets.push_back(address);
        }
      }
      Pending& slot = PushSlot(conn);
      slot.kind = kind;
      slot.awaiting = static_cast<uint32_t>(targets.size());
      slot.parts.reserve(targets.size());
      const uint64_t seq = slot.seq;
      Bump(&RouterStats::fanouts);
      for (const BackendAddress& address : targets) {
        std::string error;
        BackendConn* backend = EnsureBackend(address, &error);
        if (backend == nullptr) {
          // One unreachable backend fails the whole merge: a partial sum
          // would silently under-report. (`slot` stays valid: deque
          // references survive push_backs at the ends.)
          Bump(&RouterStats::backend_errors);
          slot.ready = true;
          slot.kind = Pending::Kind::kSingle;
          slot.awaiting = 0;
          slot.parts.clear();
          slot.body = SerializeError(Status::Unavailable(
              "backend " + ToString(address) + ": " + error));
          break;
        }
        std::string copy = pool.Acquire();
        copy.assign(payload);
        backend->in_flight.push_back({conn->id, seq, std::string()});
        in_flight_count.fetch_add(1, std::memory_order_relaxed);
        EnqueueOut(&backend->outq, std::move(copy));
        Bump(&RouterStats::frames_forwarded);
        if (!FlushOut(backend->fd, &backend->outq)) {
          FailBackend(backend, "send failed");
          break;  // FailBackend may have completed the slot already
        }
      }
      pool.Release(std::move(payload));
    }

    /// Clients whose pending queue changed while handling backend I/O;
    /// re-stepped after the backend pass so inputs parked by the
    /// pending-queue cap get dispatched once capacity frees up.
    std::vector<uint64_t> touched_clients;

    /// Steps every touched client until quiet. Stepping can touch more
    /// clients (a dispatch hitting a dead backend), hence the loop.
    void DrainTouched(bool paused_now) {
      while (!touched_clients.empty()) {
        std::vector<uint64_t> touched;
        touched.swap(touched_clients);
        for (const uint64_t id : touched) {
          auto it = clients.find(id);
          if (it == clients.end()) continue;
          Step(it->second.get(), paused_now);
        }
      }
    }

    /// One response frame from a backend: fill the slot it answers.
    void OnBackendResponse(BackendConn* backend, std::string&& payload) {
      if (backend->in_flight.empty()) {
        // A response nobody asked for: protocol corruption.
        pool.Release(std::move(payload));
        FailBackend(backend, "unsolicited response");
        return;
      }
      Forwarded entry = std::move(backend->in_flight.front());
      backend->in_flight.pop_front();
      in_flight_count.fetch_sub(1, std::memory_order_relaxed);
      if (!entry.close_id.empty() && payload.rfind("{\"ok\"", 0) == 0) {
        impl->EraseOverride(entry.close_id);
      }
      auto it = clients.find(entry.client_id);
      if (it == clients.end()) {
        pool.Release(std::move(payload));  // client died mid-request
        return;
      }
      ClientConn* conn = it->second.get();
      touched_clients.push_back(conn->id);
      for (Pending& slot : conn->pending) {
        if (slot.seq != entry.seq) continue;
        if (slot.ready) break;  // already failed (backend death, fan-out)
        if (slot.kind == Pending::Kind::kSingle) {
          slot.ready = true;
          slot.body = std::move(payload);
        } else {
          slot.parts.push_back(std::move(payload));
          if (--slot.awaiting == 0) {
            if (slot.kind == Pending::Kind::kCounters) {
              auto merged = MergeCountersFrames(slot.parts);
              slot.body = merged.ok() ? std::move(merged.value())
                                      : SerializeError(merged.status());
            } else {
              slot.body = MergeSessionsFrames(slot.parts);
            }
            slot.parts.clear();
            slot.ready = true;
          }
        }
        break;
      }
      PumpClient(conn);
    }

    void ReadFromBackend(BackendConn* backend) {
      char buffer[64 * 1024];
      bool dead = false;
      std::string reason;
      for (;;) {
        const ssize_t n = ::recv(backend->fd, buffer, sizeof(buffer), 0);
        if (n > 0) {
          backend->reader.Feed(buffer, static_cast<size_t>(n));
          continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        if (n < 0 && errno == EINTR) continue;
        dead = true;
        reason = n == 0 ? "connection closed"
                        : std::string("recv: ") + std::strerror(errno);
        break;
      }
      // OnBackendResponse can kill `backend` via FailBackend (an
      // unsolicited frame, say), so the liveness re-check must go through
      // the map by key — touching backend->address after that would read
      // freed memory.
      const std::string key = backend->address;
      while (backend->reader.HasEvent()) {
        FrameReader::Event event = backend->reader.Next();
        if (event.kind == FrameReader::Event::Kind::kBadFrame) {
          FailBackend(backend, "bad response frame: " + event.error);
          return;
        }
        OnBackendResponse(backend, std::move(event.payload));
        if (backends.find(key) == backends.end()) return;
      }
      if (dead) FailBackend(backend, reason);
    }

    // ---- routing ----

    /// The backend owning `id`: the override table first (non-quiescent
    /// sessions pinned to their pre-rebalance home), then jump hash.
    BackendAddress Route(std::string_view id,
                         const std::shared_ptr<const ShardMap>& map) {
      if (impl->override_count.load(std::memory_order_acquire) > 0) {
        std::lock_guard<std::mutex> lock(impl->override_mutex);
        auto it = impl->overrides.find(std::string(id));
        if (it != impl->overrides.end()) return it->second;
      }
      return map->backends[ShardFor(id, map->backends.size())];
    }

    void Dispatch(ClientConn* conn, FrameReader::Event&& event) {
      if (event.kind == FrameReader::Event::Kind::kBadFrame) {
        PushLocal(conn, SerializeError(Status::InvalidArgument(
                            "bad frame: " + event.error)));
        return;
      }
      arena.Reset();
      auto peeked = PeekRequest(event.payload, &arena);
      if (!peeked.ok()) {
        pool.Release(std::move(event.payload));
        PushLocal(conn, SerializeError(peeked.status()));
        return;
      }
      const RequestPeek& peek = peeked.value();
      const std::string_view op = peek.op;
      if (op == "counters" || op == "sessions") {
        FanOut(conn,
               op == "counters" ? Pending::Kind::kCounters
                                : Pending::Kind::kSessions,
               std::move(event.payload));
        return;
      }
      const std::shared_ptr<const ShardMap> map = impl->Map();
      if (op == "open") {
        if (peek.has_id) {
          Forward(conn, Route(peek.id, map), std::move(event.payload),
                  std::string());
          return;
        }
        // Mint the handle here so placement is decided before any backend
        // sees the open.
        char minted[2 + 16 + 1];
        std::snprintf(minted, sizeof(minted), "r-%016llx",
                      static_cast<unsigned long long>(
                          impl->next_minted.fetch_add(
                              1, std::memory_order_relaxed)));
        std::string rebuilt = pool.Acquire();
        AppendOpenWithId(*peek.root, minted, &rebuilt);
        pool.Release(std::move(event.payload));
        Bump(&RouterStats::ids_minted);
        Forward(conn, Route(minted, map), std::move(rebuilt), std::string());
        return;
      }
      const bool needs_id = op == "ask" || op == "tell" || op == "oracle" ||
                            op == "status" || op == "close" ||
                            op == "export" || op == "import";
      if (!needs_id) {
        std::string body = UnknownOpError(op);  // `op` views the payload
        pool.Release(std::move(event.payload));
        PushLocal(conn, std::move(body));
        return;
      }
      if (!peek.has_id) {
        pool.Release(std::move(event.payload));
        PushLocal(conn, MissingIdError());
        return;
      }
      std::string close_id;
      if (op == "close" &&
          impl->override_count.load(std::memory_order_acquire) > 0) {
        close_id = std::string(peek.id);
      }
      Forward(conn, Route(peek.id, map), std::move(event.payload),
              std::move(close_id));
    }

    /// Advances one client connection: dispatch queued requests (unless a
    /// rebalance has dispatch paused), send ready responses, close when
    /// fully drained after EOF.
    void Step(ClientConn* conn, bool paused_now) {
      const uint64_t conn_id = conn->id;  // Dispatch can free `conn`
      while (!paused_now && !conn->inputs.empty() &&
             conn->pending.size() < impl->options.max_queued_frames) {
        FrameReader::Event event = std::move(conn->inputs.front());
        conn->inputs.pop_front();
        Dispatch(conn, std::move(event));
        // Dispatch can close the connection (flush failure); re-find.
        if (clients.find(conn_id) == clients.end()) return;
      }
      if (!PumpClient(conn)) return;
      if (conn->peer_eof && conn->inputs.empty() && conn->pending.empty() &&
          conn->outq.empty()) {
        CloseClient(conn->id);
      }
    }

    void Loop() {
      const bool acceptor = (index == 0);
      std::vector<pollfd> pollfds;
      std::vector<uint64_t> poll_client_ids;
      std::vector<std::string> poll_backend_keys;
      bool was_paused = false;
      while (impl->running.load(std::memory_order_acquire)) {
        const bool paused_now =
            impl->paused.load(std::memory_order_acquire);
        if (was_paused && !paused_now) {
          // Dispatch resumed: requests queued while paused generate no new
          // socket events, so every client must be stepped by hand — and
          // before this iteration's poll, which would otherwise block on
          // sockets that will never speak first.
          for (auto& [id, conn] : clients) touched_clients.push_back(id);
          DrainTouched(paused_now);
        }
        was_paused = paused_now;
        pollfds.clear();
        poll_client_ids.clear();
        poll_backend_keys.clear();
        pollfds.push_back({wake_read, POLLIN, 0});
        if (acceptor) pollfds.push_back({impl->listen_fd, POLLIN, 0});
        const size_t base = pollfds.size();
        for (auto& [id, conn] : clients) {
          short events = 0;
          if (!conn->peer_eof && !InputPaused(*conn)) events |= POLLIN;
          if (!conn->outq.empty()) events |= POLLOUT;
          if (events == 0) continue;
          pollfds.push_back({conn->fd, events, 0});
          poll_client_ids.push_back(id);
        }
        const size_t backend_base = pollfds.size();
        for (auto& [key, backend] : backends) {
          short events = POLLIN;  // responses can arrive at any time
          if (!backend->outq.empty()) events |= POLLOUT;
          pollfds.push_back({backend->fd, events, 0});
          poll_backend_keys.push_back(key);
        }
        const int ready = ::poll(pollfds.data(), pollfds.size(), -1);
        if (ready < 0) {
          if (errno == EINTR) continue;
          break;
        }
        if (pollfds[0].revents & POLLIN) {
          char drain[256];
          while (::read(wake_read, drain, sizeof(drain)) > 0) {
          }
        }
        AdoptIncoming();
        if (acceptor && (pollfds[1].revents & POLLIN)) Accept();
        for (size_t i = base; i < backend_base; ++i) {
          const uint64_t id = poll_client_ids[i - base];
          auto it = clients.find(id);
          if (it == clients.end()) continue;
          ClientConn* conn = it->second.get();
          const short revents = pollfds[i].revents;
          if (revents & (POLLERR | POLLNVAL)) {
            CloseClient(id);
            continue;
          }
          if (revents & (POLLIN | POLLHUP)) ReadFromClient(conn);
          Step(conn, paused_now);
        }
        for (size_t i = backend_base; i < pollfds.size(); ++i) {
          const std::string& key = poll_backend_keys[i - backend_base];
          auto it = backends.find(key);
          if (it == backends.end()) continue;  // failed while handling others
          BackendConn* backend = it->second.get();
          const short revents = pollfds[i].revents;
          if (revents & (POLLERR | POLLNVAL)) {
            FailBackend(backend, "socket error");
            continue;
          }
          if (revents & (POLLIN | POLLHUP)) {
            ReadFromBackend(backend);
            if (backends.find(key) == backends.end()) continue;
          }
          if ((revents & POLLOUT) &&
              !FlushOut(backend->fd, &backend->outq)) {
            FailBackend(backend, "send failed");
            continue;
          }
        }
        // Backend responses freed pending-queue slots on these clients;
        // without this pass, a client paused at the cap with no socket
        // events would never dispatch its queued inputs again.
        DrainTouched(paused_now);
        // With the pause observed and this iteration's dispatches counted
        // in in_flight_count, acking is what lets Rebalance trust a zero
        // in-flight sum: no dispatch can follow the ack until unpause.
        pause_ack.store(paused_now, std::memory_order_release);
      }
      for (auto& [id, conn] : clients) CloseFd(&conn->fd);
      for (auto& [key, backend] : backends) CloseFd(&backend->fd);
      {
        std::lock_guard<std::mutex> lock(stats_mutex);
        stats.connections_open = 0;
      }
      clients.clear();
      backends.clear();
    }
  };

  RouterOptions options;

  int listen_fd = -1;
  uint16_t bound_port = 0;

  std::atomic<bool> running{false};
  std::atomic<bool> paused{false};
  std::atomic<uint64_t> next_conn_id{1};
  std::atomic<uint64_t> next_shard{0};
  std::atomic<uint64_t> next_minted{1};  ///< re-seeded with a nonce at Start
  std::vector<std::unique_ptr<Shard>> shards;

  /// The live map, copy-on-write: dispatch grabs the shared_ptr under the
  /// mutex (cheap), Rebalance installs a fresh one.
  mutable std::mutex map_mutex;
  std::shared_ptr<const ShardMap> map;

  /// Sessions pinned off their jump-hash home: non-quiescent at rebalance
  /// time, still living on their old backend until they close. Checked on
  /// the hot path only when non-empty (override_count guards the lock).
  std::mutex override_mutex;
  std::unordered_map<std::string, BackendAddress> overrides;
  std::atomic<uint64_t> override_count{0};

  /// One rebalance at a time.
  std::mutex rebalance_mutex;
  std::atomic<uint64_t> handoffs{0};
  std::atomic<uint64_t> handoff_skipped{0};
  std::atomic<uint64_t> rebalances{0};

  mutable std::mutex retired_mutex;
  RouterStats retired;

  std::shared_ptr<const ShardMap> Map() const {
    std::lock_guard<std::mutex> lock(map_mutex);
    return map;
  }

  void InstallMap(ShardMap next) {
    std::lock_guard<std::mutex> lock(map_mutex);
    map = std::make_shared<const ShardMap>(std::move(next));
  }

  void AddOverride(const std::string& id, const BackendAddress& address) {
    std::lock_guard<std::mutex> lock(override_mutex);
    if (overrides.emplace(id, address).second) {
      override_count.fetch_add(1, std::memory_order_release);
    }
  }

  void EraseOverride(const std::string& id) {
    std::lock_guard<std::mutex> lock(override_mutex);
    if (overrides.erase(id) > 0) {
      override_count.fetch_sub(1, std::memory_order_release);
    }
  }
};

Router::Router(ShardMap map, RouterOptions options)
    : impl_(std::make_unique<Impl>()) {
  if (map.generation == 0) map.generation = 1;
  impl_->options = std::move(options);
  impl_->InstallMap(std::move(map));
}

Router::~Router() { Stop(); }

common::Status Router::Start() {
  Impl* impl = impl_.get();
  if (impl->running.load()) {
    return Status::FailedPrecondition("router already running");
  }
  if (impl->options.reactors == 0) {
    return Status::InvalidArgument("options.reactors must be > 0");
  }
  if (impl->Map()->empty()) {
    return Status::InvalidArgument("shard map has no backends");
  }

  if (!impl->shards.empty()) {
    std::lock_guard<std::mutex> lock(impl->retired_mutex);
    for (auto& shard : impl->shards) {
      std::lock_guard<std::mutex> shard_lock(shard->stats_mutex);
      AddStats(shard->stats, &impl->retired);
    }
    impl->shards.clear();
  }

  auto fail = [impl](Status status) {
    CloseFd(&impl->listen_fd);
    return status;
  };

  impl->listen_fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (impl->listen_fd < 0) {
    return fail(Status::Internal(std::string("socket: ") +
                                 std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(impl->listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(impl->options.port);
  if (::inet_pton(AF_INET, impl->options.bind_address.c_str(),
                  &addr.sin_addr) != 1) {
    return fail(Status::InvalidArgument("bad bind address: " +
                                        impl->options.bind_address));
  }
  if (::bind(impl->listen_fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(impl->listen_fd, impl->options.backlog) != 0) {
    return fail(Status::Internal(std::string("bind/listen: ") +
                                 std::strerror(errno)));
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  ::getsockname(impl->listen_fd, reinterpret_cast<sockaddr*>(&bound),
                &bound_len);
  impl->bound_port = ntohs(bound.sin_port);

  std::vector<std::unique_ptr<Impl::Shard>> shards;
  shards.reserve(impl->options.reactors);
  for (size_t i = 0; i < impl->options.reactors; ++i) {
    auto shard = std::make_unique<Impl::Shard>(impl, i);
    int pipe_fds[2];
    if (::pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) != 0) {
      for (auto& built : shards) {
        CloseFd(&built->wake_read);
        CloseFd(&built->wake_write);
      }
      return fail(Status::Internal(std::string("pipe2: ") +
                                   std::strerror(errno)));
    }
    shard->wake_read = pipe_fds[0];
    shard->wake_write = pipe_fds[1];
    shards.push_back(std::move(shard));
  }
  {
    std::lock_guard<std::mutex> lock(impl->retired_mutex);
    impl->shards = std::move(shards);
  }

  impl->next_shard.store(0, std::memory_order_relaxed);
  // Minted ids keep their "r-" + 16 hex digit shape, but the counter's
  // high 32 bits are a per-Start nonce: a restarted router (or a second
  // instance) mints from a different range instead of replaying 1, 2, 3
  // into backends that may still hold those handles.
  {
    std::random_device entropy;
    const uint64_t nonce =
        (static_cast<uint64_t>(entropy()) ^
         static_cast<uint64_t>(std::chrono::steady_clock::now()
                                   .time_since_epoch()
                                   .count())) &
        0xffffffffull;
    impl->next_minted.store((nonce << 32) | 1, std::memory_order_relaxed);
  }
  impl->paused.store(false, std::memory_order_release);
  impl->running.store(true, std::memory_order_release);
  for (auto& shard : impl->shards) {
    Impl::Shard* s = shard.get();
    s->thread = std::thread([s] { s->Loop(); });
  }
  return Status::OK();
}

void Router::Stop() {
  Impl* impl = impl_.get();
  if (impl == nullptr || !impl->running.load()) return;
  impl->running.store(false, std::memory_order_release);
  for (auto& shard : impl->shards) shard->Wake();
  for (auto& shard : impl->shards) {
    if (shard->thread.joinable()) shard->thread.join();
  }
  for (auto& shard : impl->shards) {
    {
      std::lock_guard<std::mutex> lock(shard->incoming_mutex);
      for (int fd : shard->incoming_fds) ::close(fd);
      shard->incoming_fds.clear();
    }
    CloseFd(&shard->wake_read);
    CloseFd(&shard->wake_write);
  }
  CloseFd(&impl->listen_fd);
}

uint16_t Router::port() const { return impl_->bound_port; }

ShardMap Router::shard_map() const { return *impl_->Map(); }

common::Status Router::Rebalance(std::vector<BackendAddress> backends) {
  Impl* impl = impl_.get();
  if (backends.empty()) {
    return Status::InvalidArgument("rebalance needs at least one backend");
  }
  if (!impl->running.load()) {
    return Status::FailedPrecondition("router not running");
  }
  std::lock_guard<std::mutex> rebalance_lock(impl->rebalance_mutex);
  const ShardMap old = *impl->Map();

  // Pause dispatch and drain: once every shard acks the pause, the
  // in-flight sum can only fall; zero means the fleet is request-silent
  // and sessions can quiesce.
  impl->paused.store(true, std::memory_order_release);
  // A shard's ack can still be true from the previous rebalance (it is
  // only rewritten at the end of a loop iteration, and requests queued
  // while paused dispatch at the top of the next one). Clear them all so
  // the drain below trusts only acks that observed *this* pause.
  for (auto& shard : impl->shards) {
    shard->pause_ack.store(false, std::memory_order_release);
  }
  for (auto& shard : impl->shards) shard->Wake();
  auto resume = [impl] {
    impl->paused.store(false, std::memory_order_release);
    for (auto& shard : impl->shards) shard->Wake();
  };
  const auto drain_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(impl->options.drain_deadline_millis);
  for (;;) {
    bool acked = true;
    for (auto& shard : impl->shards) {
      if (!shard->pause_ack.load(std::memory_order_acquire)) acked = false;
    }
    uint64_t in_flight = 0;
    for (auto& shard : impl->shards) {
      in_flight += shard->in_flight_count.load(std::memory_order_relaxed);
    }
    if (acked && in_flight == 0) break;
    if (std::chrono::steady_clock::now() >= drain_deadline) {
      resume();
      return Status::DeadlineExceeded(
          "rebalance: in-flight requests did not drain");
    }
    for (auto& shard : impl->shards) shard->Wake();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Migrate every session whose owner changes, over fresh control-plane
  // connections (deadline-bounded so a wedged backend fails the rebalance
  // instead of hanging it). Sessions pinned by an override live on their
  // pinned backend, which is where ListSessions finds them.
  std::map<std::string, Client> admin;
  auto admin_client = [&](const BackendAddress& address) -> Client* {
    const std::string key = ToString(address);
    auto it = admin.find(key);
    if (it != admin.end()) return &it->second;
    auto connected =
        Client::Connect(address.host, address.port,
                        impl->options.max_frame_bytes,
                        impl->options.admin_deadline_millis);
    if (!connected.ok()) return nullptr;
    return &admin.emplace(key, std::move(connected.value())).first->second;
  };
  // Sessions already moved when a later step fails: pinned to their new
  // home so the old map still routes them, then the rebalance aborts.
  std::vector<std::pair<std::string, BackendAddress>> moved;
  auto abort_rebalance = [&](Status status) {
    for (const auto& [id, address] : moved) impl->AddOverride(id, address);
    resume();
    return status;
  };

  // The sources to sweep: every backend of the old map, plus any override
  // targets that are off-map (sessions stranded by an earlier rebalance).
  std::vector<BackendAddress> sources = old.backends;
  {
    std::lock_guard<std::mutex> lock(impl->override_mutex);
    for (const auto& [id, address] : impl->overrides) {
      bool known = false;
      for (const BackendAddress& source : sources) {
        if (source == address) known = true;
      }
      if (!known) sources.push_back(address);
    }
  }

  for (const BackendAddress& source : sources) {
    Client* from = admin_client(source);
    if (from == nullptr) {
      return abort_rebalance(Status::Unavailable(
          "rebalance: cannot reach backend " + ToString(source)));
    }
    auto listed = from->ListSessions();
    if (!listed.ok()) return abort_rebalance(listed.status());
    for (const std::string& id : listed.value()) {
      const BackendAddress target =
          backends[ShardFor(id, backends.size())];
      if (target == source) {
        impl->EraseOverride(id);  // the new map's home is where it lives
        continue;
      }
      auto exported = from->ExportSession(id);
      if (!exported.ok()) {
        if (exported.status().code() ==
            common::StatusCode::kFailedPrecondition) {
          // Labels pending: the session cannot park. Pin it where it is
          // and migrate it on a later rebalance (or let close retire it).
          impl->AddOverride(id, source);
          impl->handoff_skipped.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        return abort_rebalance(exported.status());
      }
      Client* to = admin_client(target);
      Status imported =
          to == nullptr ? Status::Unavailable("rebalance: cannot reach " +
                                              ToString(target))
                        : to->ImportSession(id, exported.value().scenario,
                                            exported.value().image);
      if (!imported.ok()) {
        // Put the session back where it came from; if even that fails the
        // image is lost and the error says so.
        const Status restored = from->ImportSession(
            id, exported.value().scenario, exported.value().image);
        if (!restored.ok()) {
          return abort_rebalance(Status::DataLoss(
              "rebalance: import failed (" + imported.message() +
              ") and restore failed (" + restored.message() +
              ") for session " + id));
        }
        return abort_rebalance(imported);
      }
      impl->EraseOverride(id);
      moved.emplace_back(id, target);
      impl->handoffs.fetch_add(1, std::memory_order_relaxed);
    }
  }

  ShardMap next;
  next.generation = old.generation + 1;
  next.backends = std::move(backends);
  impl->InstallMap(std::move(next));
  impl->rebalances.fetch_add(1, std::memory_order_relaxed);
  resume();
  return Status::OK();
}

RouterStats Router::stats() const {
  RouterStats total;
  std::lock_guard<std::mutex> lock(impl_->retired_mutex);
  total = impl_->retired;
  for (const auto& shard : impl_->shards) {
    std::lock_guard<std::mutex> shard_lock(shard->stats_mutex);
    AddStats(shard->stats, &total);
  }
  total.handoffs = impl_->handoffs.load(std::memory_order_relaxed);
  total.handoff_skipped =
      impl_->handoff_skipped.load(std::memory_order_relaxed);
  total.rebalances = impl_->rebalances.load(std::memory_order_relaxed);
  return total;
}

}  // namespace net
}  // namespace qlearn
