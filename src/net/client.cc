#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace qlearn {
namespace net {

namespace {

using common::Result;
using common::Status;

Status WriteAll(int fd, const std::string& bytes) {
  size_t pos = 0;
  while (pos < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + pos, bytes.size() - pos, MSG_NOSIGNAL);
    if (n > 0) {
      pos += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::Internal(std::string("send: ") + std::strerror(errno));
  }
  return Status::OK();
}

Status ReadExactly(int fd, char* out, size_t n) {
  size_t pos = 0;
  while (pos < n) {
    const ssize_t got = ::recv(fd, out + pos, n - pos, 0);
    if (got > 0) {
      pos += static_cast<size_t>(got);
      continue;
    }
    if (got < 0 && errno == EINTR) continue;
    if (got == 0) {
      return Status::Internal("connection closed mid-response");
    }
    return Status::Internal(std::string("recv: ") + std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace

Result<Client> Client::Connect(const std::string& address, uint16_t port,
                               size_t max_frame_bytes) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad address: " + address);
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::Internal("connect " + address + ":" +
                            std::to_string(port) + ": " + error);
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  Client client;
  client.fd_ = fd;
  client.max_frame_bytes_ = max_frame_bytes;
  return client;
}

Client::~Client() { Disconnect(); }

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), max_frame_bytes_(other.max_frame_bytes_) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Disconnect();
    fd_ = other.fd_;
    max_frame_bytes_ = other.max_frame_bytes_;
    other.fd_ = -1;
  }
  return *this;
}

void Client::Disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<std::string> Client::CallRaw(const std::string& payload) {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  std::string framed;
  if (!AppendFrame(payload, max_frame_bytes_, &framed)) {
    return Status::InvalidArgument("payload does not fit in a frame");
  }
  QLEARN_RETURN_IF_ERROR(WriteAll(fd_, framed));

  char header[kFrameHeaderBytes];
  QLEARN_RETURN_IF_ERROR(ReadExactly(fd_, header, sizeof(header)));
  const uint64_t length =
      (static_cast<uint64_t>(static_cast<unsigned char>(header[0])) << 24) |
      (static_cast<uint64_t>(static_cast<unsigned char>(header[1])) << 16) |
      (static_cast<uint64_t>(static_cast<unsigned char>(header[2])) << 8) |
      static_cast<uint64_t>(static_cast<unsigned char>(header[3]));
  if (length == 0 || length > max_frame_bytes_) {
    Disconnect();  // framing is out of sync; the stream is unusable
    return Status::Internal("server sent a frame of " +
                            std::to_string(length) + " bytes");
  }
  std::string payload_in(static_cast<size_t>(length), '\0');
  QLEARN_RETURN_IF_ERROR(ReadExactly(fd_, payload_in.data(),
                                     payload_in.size()));
  return payload_in;
}

Result<Response> Client::Call(const Request& request) {
  QLEARN_ASSIGN_OR_RETURN(const std::string raw,
                          CallRaw(Serialize(request)));
  return ParseResponse(request.op, raw);
}

Result<std::string> Client::Open(const std::string& scenario,
                                 const service::OpenOptions& options) {
  Request request;
  request.op = Request::Op::kOpen;
  request.scenario = scenario;
  request.seed = options.seed;
  request.max_questions = options.budget.max_questions;
  request.max_pending = options.budget.max_pending;
  request.max_wall_micros =
      static_cast<uint64_t>(options.budget.max_wall_seconds * 1e6);
  QLEARN_ASSIGN_OR_RETURN(const Response response, Call(request));
  if (!response.status.ok()) return response.status;
  return response.id;
}

Result<std::vector<service::wire::QuestionPayload>> Client::Ask(
    const std::string& id, uint64_t k) {
  Request request;
  request.op = Request::Op::kAsk;
  request.id = id;
  request.k = k;
  QLEARN_ASSIGN_OR_RETURN(Response response, Call(request));
  if (!response.status.ok()) return response.status;
  return std::move(response.questions);
}

common::Status Client::Tell(const std::string& id,
                            const std::vector<bool>& labels) {
  Request request;
  request.op = Request::Op::kTell;
  request.id = id;
  request.labels = labels;
  auto response = Call(request);
  if (!response.ok()) return response.status();
  return response.value().status;
}

Result<std::vector<bool>> Client::OracleLabels(const std::string& id) {
  Request request;
  request.op = Request::Op::kOracle;
  request.id = id;
  QLEARN_ASSIGN_OR_RETURN(Response response, Call(request));
  if (!response.status.ok()) return response.status;
  return std::move(response.labels);
}

Result<service::SessionStatus> Client::Status(const std::string& id) {
  Request request;
  request.op = Request::Op::kStatus;
  request.id = id;
  QLEARN_ASSIGN_OR_RETURN(Response response, Call(request));
  if (!response.status.ok()) return response.status;
  return std::move(response.session);
}

Result<service::CloseResult> Client::Close(const std::string& id) {
  Request request;
  request.op = Request::Op::kClose;
  request.id = id;
  QLEARN_ASSIGN_OR_RETURN(Response response, Call(request));
  if (!response.status.ok()) return response.status;
  service::CloseResult result;
  result.hypothesis = std::move(response.hypothesis);
  result.stats = response.stats;
  return result;
}

Result<std::pair<service::ServiceCounters, uint64_t>> Client::Counters() {
  Request request;
  request.op = Request::Op::kCounters;
  QLEARN_ASSIGN_OR_RETURN(const Response response, Call(request));
  if (!response.status.ok()) return response.status;
  return std::make_pair(response.counters, response.open_sessions);
}

}  // namespace net
}  // namespace qlearn
