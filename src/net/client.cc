#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <climits>
#include <cstring>

namespace qlearn {
namespace net {

namespace {

using common::Result;
using common::Status;

// One call's wall-clock budget as an absolute point, so a call that polls
// many times (short writes, slow trickle of response bytes) still honors
// the total. `has == false` means block forever (poll timeout -1).
struct Deadline {
  bool has = false;
  std::chrono::steady_clock::time_point at;

  static Deadline After(int64_t millis) {
    Deadline d;
    if (millis > 0) {
      d.has = true;
      d.at = std::chrono::steady_clock::now() +
             std::chrono::milliseconds(millis);
    }
    return d;
  }

  /// Remaining budget in poll(2) terms: -1 = infinite, 0 = already expired.
  int PollTimeoutMillis() const {
    if (!has) return -1;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          at - std::chrono::steady_clock::now())
                          .count();
    if (left <= 0) return 0;
    if (left > INT_MAX) return INT_MAX;
    return static_cast<int>(left);
  }
};

/// Blocks until `fd` is ready for `events` or the deadline expires.
Status Await(int fd, short events, const Deadline& deadline,
             const char* what) {
  for (;;) {
    const int timeout = deadline.PollTimeoutMillis();
    if (timeout == 0) {
      return Status::DeadlineExceeded(std::string(what) +
                                      ": deadline exceeded");
    }
    pollfd p;
    p.fd = fd;
    p.events = events;
    p.revents = 0;
    const int rc = ::poll(&p, 1, timeout);
    if (rc > 0) return Status::OK();
    if (rc == 0) {
      return Status::DeadlineExceeded(std::string(what) +
                                      ": deadline exceeded");
    }
    if (errno == EINTR) continue;
    return Status::Internal(std::string("poll: ") + std::strerror(errno));
  }
}

Status WriteAll(int fd, const std::string& bytes, const Deadline& deadline) {
  size_t pos = 0;
  while (pos < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + pos, bytes.size() - pos, MSG_NOSIGNAL);
    if (n > 0) {
      pos += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      QLEARN_RETURN_IF_ERROR(Await(fd, POLLOUT, deadline, "send"));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::Internal(std::string("send: ") + std::strerror(errno));
  }
  return Status::OK();
}

Status ReadExactly(int fd, char* out, size_t n, const Deadline& deadline) {
  size_t pos = 0;
  while (pos < n) {
    const ssize_t got = ::recv(fd, out + pos, n - pos, 0);
    if (got > 0) {
      pos += static_cast<size_t>(got);
      continue;
    }
    if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      QLEARN_RETURN_IF_ERROR(Await(fd, POLLIN, deadline, "recv"));
      continue;
    }
    if (got < 0 && errno == EINTR) continue;
    if (got == 0) {
      return Status::Internal("connection closed mid-response");
    }
    return Status::Internal(std::string("recv: ") + std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace

Result<Client> Client::Connect(const std::string& address, uint16_t port,
                               size_t max_frame_bytes,
                               int64_t deadline_millis) {
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad address: " + address);
  }
  const Deadline deadline = Deadline::After(deadline_millis);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0 && errno == EINPROGRESS) {
    const common::Status ready = Await(fd, POLLOUT, deadline, "connect");
    if (!ready.ok()) {
      ::close(fd);
      return ready;
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0) {
      so_error = errno;
    }
    rc = so_error == 0 ? 0 : -1;
    errno = so_error;
  }
  if (rc != 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::Internal("connect " + address + ":" +
                            std::to_string(port) + ": " + error);
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  Client client;
  client.fd_ = fd;
  client.max_frame_bytes_ = max_frame_bytes;
  client.deadline_millis_ = deadline_millis;
  return client;
}

Client::~Client() { Disconnect(); }

Client::Client(Client&& other) noexcept
    : fd_(other.fd_),
      max_frame_bytes_(other.max_frame_bytes_),
      deadline_millis_(other.deadline_millis_) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Disconnect();
    fd_ = other.fd_;
    max_frame_bytes_ = other.max_frame_bytes_;
    deadline_millis_ = other.deadline_millis_;
    other.fd_ = -1;
  }
  return *this;
}

void Client::Disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<std::string> Client::CallRaw(const std::string& payload) {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  const Deadline deadline = Deadline::After(deadline_millis_);
  std::string framed;
  if (!AppendFrame(payload, max_frame_bytes_, &framed)) {
    return Status::InvalidArgument("payload does not fit in a frame");
  }
  auto deadline_guard = [this](common::Status status) {
    // An expired deadline abandons a call mid-stream; the framing state is
    // unknowable, so the connection is done.
    if (status.code() == common::StatusCode::kDeadlineExceeded) Disconnect();
    return status;
  };
  {
    common::Status sent = WriteAll(fd_, framed, deadline);
    if (!sent.ok()) return deadline_guard(std::move(sent));
  }

  unsigned char header[kFrameHeaderBytes];
  {
    common::Status got = ReadExactly(fd_, reinterpret_cast<char*>(header),
                             sizeof(header), deadline);
    if (!got.ok()) return deadline_guard(std::move(got));
  }
  const uint64_t length = DecodeFrameHeader(header);
  if (length == 0 || length > max_frame_bytes_) {
    Disconnect();  // framing is out of sync; the stream is unusable
    return Status::Internal("server sent a frame of " +
                            std::to_string(length) + " bytes");
  }
  std::string payload_in(static_cast<size_t>(length), '\0');
  {
    common::Status got =
        ReadExactly(fd_, payload_in.data(), payload_in.size(), deadline);
    if (!got.ok()) return deadline_guard(std::move(got));
  }
  return payload_in;
}

Result<Response> Client::Call(const Request& request) {
  QLEARN_ASSIGN_OR_RETURN(const std::string raw,
                          CallRaw(Serialize(request)));
  return ParseResponse(request.op, raw);
}

Result<std::string> Client::Open(const std::string& scenario,
                                 const service::OpenOptions& options) {
  Request request;
  request.op = Request::Op::kOpen;
  request.scenario = scenario;
  request.seed = options.seed;
  request.max_questions = options.budget.max_questions;
  request.max_pending = options.budget.max_pending;
  request.max_wall_micros =
      static_cast<uint64_t>(options.budget.max_wall_seconds * 1e6);
  request.id = options.id;
  QLEARN_ASSIGN_OR_RETURN(const Response response, Call(request));
  if (!response.status.ok()) return response.status;
  return response.id;
}

Result<std::vector<service::wire::QuestionPayload>> Client::Ask(
    const std::string& id, uint64_t k) {
  Request request;
  request.op = Request::Op::kAsk;
  request.id = id;
  request.k = k;
  QLEARN_ASSIGN_OR_RETURN(Response response, Call(request));
  if (!response.status.ok()) return response.status;
  return std::move(response.questions);
}

common::Status Client::Tell(const std::string& id,
                            const std::vector<bool>& labels) {
  Request request;
  request.op = Request::Op::kTell;
  request.id = id;
  request.labels = labels;
  auto response = Call(request);
  if (!response.ok()) return response.status();
  return response.value().status;
}

Result<std::vector<bool>> Client::OracleLabels(const std::string& id) {
  Request request;
  request.op = Request::Op::kOracle;
  request.id = id;
  QLEARN_ASSIGN_OR_RETURN(Response response, Call(request));
  if (!response.status.ok()) return response.status;
  return std::move(response.labels);
}

Result<service::SessionStatus> Client::Status(const std::string& id) {
  Request request;
  request.op = Request::Op::kStatus;
  request.id = id;
  QLEARN_ASSIGN_OR_RETURN(Response response, Call(request));
  if (!response.status.ok()) return response.status;
  return std::move(response.session);
}

Result<service::CloseResult> Client::Close(const std::string& id) {
  Request request;
  request.op = Request::Op::kClose;
  request.id = id;
  QLEARN_ASSIGN_OR_RETURN(Response response, Call(request));
  if (!response.status.ok()) return response.status;
  service::CloseResult result;
  result.hypothesis = std::move(response.hypothesis);
  result.stats = response.stats;
  return result;
}

Result<std::pair<service::ServiceCounters, uint64_t>> Client::Counters() {
  Request request;
  request.op = Request::Op::kCounters;
  QLEARN_ASSIGN_OR_RETURN(const Response response, Call(request));
  if (!response.status.ok()) return response.status;
  return std::make_pair(response.counters, response.open_sessions);
}

Result<std::vector<std::string>> Client::ListSessions() {
  Request request;
  request.op = Request::Op::kSessions;
  QLEARN_ASSIGN_OR_RETURN(Response response, Call(request));
  if (!response.status.ok()) return response.status;
  return std::move(response.session_ids);
}

Result<service::ExportedSession> Client::ExportSession(
    const std::string& id) {
  Request request;
  request.op = Request::Op::kExport;
  request.id = id;
  QLEARN_ASSIGN_OR_RETURN(Response response, Call(request));
  if (!response.status.ok()) return response.status;
  service::ExportedSession exported;
  exported.scenario = std::move(response.scenario);
  exported.image = std::move(response.image);
  return exported;
}

common::Status Client::ImportSession(const std::string& id,
                                     const std::string& scenario,
                                     const std::string& image) {
  Request request;
  request.op = Request::Op::kImport;
  request.id = id;
  request.scenario = scenario;
  request.image = image;
  auto response = Call(request);
  if (!response.ok()) return response.status();
  return response.value().status;
}

}  // namespace net
}  // namespace qlearn
