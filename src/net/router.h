// Consistent-hash routing front tier: one process that looks like a
// net::Server to clients and like a client to N backend servers.
//
// Clients speak the ordinary framed-TCP protocol to the router. For each
// request frame the router *peeks* the session id with the arena view-mode
// parser (net::PeekRequest — no heap tree, no copies, no full validation),
// picks the owning backend by jump consistent hash over the shard map
// (net/shard_map.h), and forwards the frame bytes verbatim. Responses come
// back as opaque bytes — the router never re-serializes a payload it
// routed, which is what keeps golden replays byte-identical through it.
//
// Ordering: responses to one client go out strictly in request-arrival
// order, even when consecutive requests land on different backends. Each
// client connection keeps a FIFO of pending slots; a slot filled out of
// order waits for the slots ahead of it.
//
// Special cases handled router-side:
//   - `open` without an id gets one minted here ("r-" + 16 hex digits),
//     injected with net::AppendOpenWithId, so placement is decided before
//     any backend sees the request.
//   - `counters` and `sessions` fan out to every backend in the map —
//     plus any override-pinned backends the map no longer lists — and
//     the responses are merged (op counts and log2 latency histograms sum
//     bucket-wise; id lists concatenate).
//   - A request whose id is missing or malformed is answered with the
//     same structured error frame the backend would send — without a
//     backend round trip.
//   - A backend dying mid-call fails its in-flight requests with
//     Unavailable; other shards keep serving, and the connection is
//     re-established on next use.
//
// Rebalance is snapshot handoff (Rebalance()): dispatch pauses, in-flight
// requests drain to zero, every session whose jump-hash owner changes is
// exported from its old backend (park + checksummed QLSV image) and
// imported on the new one, then the new map installs with generation+1
// and dispatch resumes. A session that cannot quiesce (labels still
// pending) stays where it is behind a routing override that is retired
// when the session closes.
#ifndef QLEARN_NET_ROUTER_H_
#define QLEARN_NET_ROUTER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/frame.h"
#include "net/shard_map.h"

namespace qlearn {
namespace net {

struct RouterOptions {
  /// Numeric IPv4 address to bind; loopback by default.
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read back via Router::port()).
  uint16_t port = 0;
  /// Reactor shards; must be > 0. Each owns its client connections and its
  /// own pooled connections to every backend.
  size_t reactors = 1;
  /// Frame payload cap — shared with FrameReader and net::Client via
  /// net/frame.h, so an oversized frame (a too-big handoff image, say) is
  /// rejected identically at every hop.
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// listen(2) backlog.
  int backlog = 128;
  /// Complete frames one client connection may have queued or in flight
  /// before the reactor stops reading its socket.
  size_t max_queued_frames = 32;
  /// Per-shard buffer pool sizing (see ServerOptions).
  size_t pool_buffers = 64;
  size_t pool_buffer_bytes = 64 * 1024;
  /// Deadline for control-plane work: backend connects on the hot path and
  /// the export/import/sessions calls a rebalance makes.
  int64_t admin_deadline_millis = 5000;
  /// After a backend dial fails, further dials to it fail fast (with the
  /// cached error) for this long, so one unreachable backend can't stall
  /// the reactor for admin_deadline_millis on every request routed to it.
  int64_t connect_backoff_millis = 1000;
  /// How long Rebalance() waits for in-flight requests to drain before
  /// giving up and resuming with the old map.
  int64_t drain_deadline_millis = 10000;
};

/// Lifetime statistics of one router.
struct RouterStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_open = 0;
  uint64_t frames_received = 0;   ///< complete, well-framed client payloads
  uint64_t bad_frames = 0;        ///< client framing errors
  uint64_t truncated_frames = 0;  ///< client EOF mid-frame
  uint64_t frames_forwarded = 0;  ///< frames dispatched to a backend
  uint64_t local_answers = 0;     ///< answered without a backend round trip
  uint64_t fanouts = 0;           ///< counters/sessions broadcasts
  uint64_t ids_minted = 0;        ///< router-minted open ids
  uint64_t backend_reconnects = 0;  ///< backend connections established
  uint64_t backend_errors = 0;    ///< in-flight requests failed Unavailable
  uint64_t dial_backoffs = 0;     ///< dials skipped by the failure cache
  uint64_t handoffs = 0;          ///< sessions migrated by rebalances
  uint64_t handoff_skipped = 0;   ///< non-quiescent sessions left behind
  uint64_t rebalances = 0;        ///< successful map installs
};

class Router {
 public:
  /// Routes over `map.backends`; the map's generation is bumped to 1 if 0.
  Router(ShardMap map, RouterOptions options = {});
  ~Router();  ///< calls Stop()

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Binds, listens, and starts the reactor shards. Fails without leaking
  /// resources; safe to retry.
  common::Status Start();

  /// Shuts down: closes every client and backend connection, joins all
  /// threads. Idempotent; also called by the destructor.
  void Stop();

  /// The bound port; valid after a successful Start().
  uint16_t port() const;

  /// The current shard map (a copy, with its generation).
  ShardMap shard_map() const;

  /// Installs a new backend list via snapshot handoff: pause, drain,
  /// migrate every session whose owner changes, install generation+1,
  /// resume. Serialized (one rebalance at a time); on failure the old map
  /// stays installed and any sessions already moved are reachable through
  /// routing overrides, so a failed rebalance degrades, never corrupts.
  common::Status Rebalance(std::vector<BackendAddress> backends);

  RouterStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace net
}  // namespace qlearn

#endif  // QLEARN_NET_ROUTER_H_
