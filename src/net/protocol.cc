#include "net/protocol.h"

#include <utility>

#include "service/json.h"

namespace qlearn {
namespace net {

namespace {

using common::Result;
using common::Status;
using service::SessionBudget;
using service::wire::QuestionPayload;
using Json = service::json::Value;
using service::json::AppendEscaped;
using service::json::CheckAllKeysKnown;
using service::json::Find;
using service::json::ToBool;
using service::json::ToString;
using service::json::ToUInt;

const char* OpName(Request::Op op) {
  switch (op) {
    case Request::Op::kOpen:
      return "open";
    case Request::Op::kAsk:
      return "ask";
    case Request::Op::kTell:
      return "tell";
    case Request::Op::kOracle:
      return "oracle";
    case Request::Op::kStatus:
      return "status";
    case Request::Op::kClose:
      return "close";
    case Request::Op::kCounters:
      return "counters";
    case Request::Op::kSessions:
      return "sessions";
    case Request::Op::kExport:
      return "export";
    case Request::Op::kImport:
      return "import";
  }
  return "unknown";
}

Status ShapeError(const std::string& message) {
  return Status::ParseError("protocol: " + message);
}

void AppendLabels(const std::vector<bool>& labels, std::string* out) {
  out->push_back('[');
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out->push_back(',');
    *out += labels[i] ? "true" : "false";
  }
  out->push_back(']');
}

Result<std::vector<bool>> LabelsFromJson(const Json* value,
                                         const std::string& what) {
  if (value == nullptr || value->type != Json::Type::kArray) {
    return ShapeError("missing or non-array \"" + what + "\"");
  }
  std::vector<bool> labels;
  labels.reserve(value->array.size());
  for (const Json& label : value->array) {
    if (label.type != Json::Type::kBool) {
      return ShapeError("non-boolean entry in \"" + what + "\"");
    }
    labels.push_back(label.bool_value);
  }
  return labels;
}

/// Reads an optional unsigned field into `*out` (leaves the default when
/// the key is absent).
Status OptionalUInt(const Json& object, const std::string& key,
                    std::vector<bool>* seen, uint64_t* out) {
  const Json* value = Find(object, key, seen);
  if (value == nullptr) return Status::OK();
  QLEARN_ASSIGN_OR_RETURN(*out, ToUInt(value, key));
  return Status::OK();
}

// Hex codec for the snapshot-handoff image: the canonical JSON subset has
// no binary strings, so export/import carry the QLSV bytes as lowercase
// hex. Both parse modes share the decode core for identical error wording.

void AppendHexQuoted(std::string_view bytes, std::string* out) {
  static constexpr char kDigits[] = "0123456789abcdef";
  out->push_back('"');
  for (const char byte : bytes) {
    const unsigned char c = static_cast<unsigned char>(byte);
    out->push_back(kDigits[c >> 4]);
    out->push_back(kDigits[c & 0xf]);
  }
  out->push_back('"');
}

int HexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;  // uppercase rejected: canonical bytes are lowercase
}

Status HexDecodeTo(std::string_view hex, std::string_view what, char* out) {
  for (size_t i = 0; i < hex.size(); i += 2) {
    const int hi = HexNibble(hex[i]);
    const int lo = HexNibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return ShapeError("\"" + std::string(what) +
                        "\" is not lowercase hex");
    }
    out[i / 2] = static_cast<char>((hi << 4) | lo);
  }
  return Status::OK();
}

Status CheckHexLength(std::string_view hex, std::string_view what) {
  if (hex.size() % 2 != 0) {
    return ShapeError("\"" + std::string(what) +
                      "\" hex has odd length " + std::to_string(hex.size()));
  }
  return Status::OK();
}

Result<std::string> HexDecode(std::string_view hex, std::string_view what) {
  QLEARN_RETURN_IF_ERROR(CheckHexLength(hex, what));
  std::string out(hex.size() / 2, '\0');
  QLEARN_RETURN_IF_ERROR(HexDecodeTo(hex, what, out.data()));
  return out;
}

Result<std::string_view> HexDecodeIntoArena(std::string_view hex,
                                            std::string_view what,
                                            service::json::Arena* arena) {
  QLEARN_RETURN_IF_ERROR(CheckHexLength(hex, what));
  char* out = static_cast<char*>(
      arena->Allocate(hex.size() / 2 + 1, alignof(char)));
  QLEARN_RETURN_IF_ERROR(HexDecodeTo(hex, what, out));
  return std::string_view(out, hex.size() / 2);
}

// ---------------------------------------------------------------------------
// Ok-frame writers, one appender per op, shared by the heap and arena
// dispatch paths (so the two produce identical bytes by construction). All
// reuse the canonical wire serializations for embedded payloads and append
// into the caller's (pooled, on the server) buffer.

void AppendUInt(uint64_t value, std::string* out) {
  service::json::AppendUInt(value, out);
}

void AppendOkOpen(std::string_view id, std::string* out) {
  *out += "{\"ok\":{\"id\":";
  AppendEscaped(id, out);
  *out += "}}";
}

void AppendOkAsk(const std::vector<QuestionPayload>& questions,
                 std::string* out) {
  *out += "{\"ok\":{\"questions\":[";
  for (size_t i = 0; i < questions.size(); ++i) {
    if (i > 0) out->push_back(',');
    service::wire::SerializeTo(questions[i], out);
  }
  *out += "]}}";
}

void AppendOkTell(std::string* out) { *out += "{\"ok\":{}}"; }

void AppendOkOracle(const std::vector<bool>& labels, std::string* out) {
  *out += "{\"ok\":{\"labels\":";
  AppendLabels(labels, out);
  *out += "}}";
}

void AppendOkStatus(const service::SessionStatus& status, std::string* out) {
  *out += "{\"ok\":{\"id\":";
  AppendEscaped(status.id, out);
  *out += ",\"scenario\":";
  AppendEscaped(status.scenario, out);
  *out += ",\"stats\":";
  service::wire::SerializeTo(status.stats, out);
  *out += ",\"pending\":";
  AppendUInt(status.pending, out);
  *out += ",\"budget_exhausted\":";
  *out += status.budget_exhausted ? "true" : "false";
  *out += ",\"hypothesis\":";
  AppendEscaped(status.hypothesis, out);
  *out += "}}";
}

void AppendOkClose(const service::CloseResult& result, std::string* out) {
  *out += "{\"ok\":{\"hypothesis\":";
  service::wire::SerializeTo(result.hypothesis, out);
  *out += ",\"stats\":";
  service::wire::SerializeTo(result.stats, out);
  *out += "}}";
}

/// Log2 bucket counts as a JSON array, trimmed after the last nonzero
/// bucket (so idle histograms serialize as `[]`, and trailing-zero
/// trimming keeps the writer deterministic for the round-trip property).
void AppendLatencyArray(const service::LatencySnapshot& snapshot,
                        std::string* out) {
  size_t limit = 0;
  for (size_t i = 0; i < service::LatencySnapshot::kBuckets; ++i) {
    if (snapshot.buckets[i] != 0) limit = i + 1;
  }
  out->push_back('[');
  for (size_t i = 0; i < limit; ++i) {
    if (i > 0) out->push_back(',');
    AppendUInt(snapshot.buckets[i], out);
  }
  out->push_back(']');
}

void AppendOkCounters(const service::ServiceCounters& counters,
                      uint64_t open_sessions, uint64_t resident_sessions,
                      uint64_t parked_sessions, std::string* out) {
  *out += "{\"ok\":{\"opens\":";
  AppendUInt(counters.opens, out);
  *out += ",\"asks\":";
  AppendUInt(counters.asks, out);
  *out += ",\"tells\":";
  AppendUInt(counters.tells, out);
  *out += ",\"oracles\":";
  AppendUInt(counters.oracles, out);
  *out += ",\"statuses\":";
  AppendUInt(counters.statuses, out);
  *out += ",\"closes\":";
  AppendUInt(counters.closes, out);
  *out += ",\"errors\":";
  AppendUInt(counters.errors, out);
  *out += ",\"questions_served\":";
  AppendUInt(counters.questions_served, out);
  *out += ",\"labels_accepted\":";
  AppendUInt(counters.labels_accepted, out);
  *out += ",\"hibernates\":";
  AppendUInt(counters.hibernates, out);
  *out += ",\"rehydrates\":";
  AppendUInt(counters.rehydrates, out);
  *out += ",\"hibernate_errors\":";
  AppendUInt(counters.hibernate_errors, out);
  *out += ",\"exports\":";
  AppendUInt(counters.exports, out);
  *out += ",\"imports\":";
  AppendUInt(counters.imports, out);
  *out += ",\"open_sessions\":";
  AppendUInt(open_sessions, out);
  *out += ",\"resident_sessions\":";
  AppendUInt(resident_sessions, out);
  *out += ",\"parked_sessions\":";
  AppendUInt(parked_sessions, out);
  *out += ",\"latency_us\":{\"open\":";
  AppendLatencyArray(counters.open_latency_us, out);
  *out += ",\"ask\":";
  AppendLatencyArray(counters.ask_latency_us, out);
  *out += ",\"tell\":";
  AppendLatencyArray(counters.tell_latency_us, out);
  *out += ",\"oracle\":";
  AppendLatencyArray(counters.oracle_latency_us, out);
  *out += ",\"status\":";
  AppendLatencyArray(counters.status_latency_us, out);
  *out += ",\"close\":";
  AppendLatencyArray(counters.close_latency_us, out);
  *out += "}}}";
}

void AppendOkSessions(const std::vector<std::string>& ids, std::string* out) {
  *out += "{\"ok\":{\"ids\":[";
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out->push_back(',');
    AppendEscaped(ids[i], out);
  }
  *out += "]}}";
}

void AppendOkExport(const service::ExportedSession& exported,
                    std::string* out) {
  *out += "{\"ok\":{\"scenario\":";
  AppendEscaped(exported.scenario, out);
  *out += ",\"image\":";
  AppendHexQuoted(exported.image, out);
  *out += "}}";
}

void AppendErrorFrame(const common::Status& status, std::string* out) {
  *out += "{\"error\":{\"code\":\"";
  *out += common::StatusCodeName(status.code());
  *out += "\",\"message\":";
  AppendEscaped(status.message(), out);
  *out += "}}";
}

// ---------------------------------------------------------------------------
// Ok-frame body parsing, one reader per op (strict, like the wire parsers).

Status LatencyFromJson(const Json* value, const std::string& what,
                       service::LatencySnapshot* out) {
  if (value == nullptr || value->type != Json::Type::kArray) {
    return ShapeError("missing or non-array \"" + what +
                      "\" latency histogram");
  }
  if (value->array.size() > service::LatencySnapshot::kBuckets) {
    return ShapeError(
        "\"" + what + "\" latency histogram has more than " +
        std::to_string(service::LatencySnapshot::kBuckets) + " buckets");
  }
  for (size_t i = 0; i < value->array.size(); ++i) {
    if (value->array[i].type != Json::Type::kUInt) {
      return ShapeError("non-integer bucket in \"" + what +
                        "\" latency histogram");
    }
    out->buckets[i] = value->array[i].uint_value;
  }
  return Status::OK();
}

Status ParseOkBody(Request::Op op, const Json& body, Response* response) {
  if (body.type != Json::Type::kObject) {
    return ShapeError("\"ok\" body must be an object");
  }
  std::vector<bool> seen(body.object.size(), false);
  switch (op) {
    case Request::Op::kOpen: {
      QLEARN_ASSIGN_OR_RETURN(response->id,
                              ToString(Find(body, "id", &seen), "id"));
      break;
    }
    case Request::Op::kAsk: {
      const Json* questions = Find(body, "questions", &seen);
      if (questions == nullptr || questions->type != Json::Type::kArray) {
        return ShapeError("missing or non-array \"questions\"");
      }
      for (const Json& question : questions->array) {
        QLEARN_ASSIGN_OR_RETURN(QuestionPayload payload,
                                service::wire::QuestionFromJson(question));
        response->questions.push_back(std::move(payload));
      }
      break;
    }
    case Request::Op::kTell:
      break;  // empty body
    case Request::Op::kOracle: {
      QLEARN_ASSIGN_OR_RETURN(response->labels,
                              LabelsFromJson(Find(body, "labels", &seen),
                                             "labels"));
      break;
    }
    case Request::Op::kStatus: {
      QLEARN_ASSIGN_OR_RETURN(response->session.id,
                              ToString(Find(body, "id", &seen), "id"));
      QLEARN_ASSIGN_OR_RETURN(
          response->session.scenario,
          ToString(Find(body, "scenario", &seen), "scenario"));
      const Json* stats = Find(body, "stats", &seen);
      if (stats == nullptr) return ShapeError("missing \"stats\"");
      QLEARN_ASSIGN_OR_RETURN(response->session.stats,
                              service::wire::StatsFromJson(*stats));
      QLEARN_ASSIGN_OR_RETURN(const uint64_t pending,
                              ToUInt(Find(body, "pending", &seen), "pending"));
      response->session.pending = static_cast<size_t>(pending);
      QLEARN_ASSIGN_OR_RETURN(response->session.budget_exhausted,
                              ToBool(Find(body, "budget_exhausted", &seen),
                                     "budget_exhausted"));
      QLEARN_ASSIGN_OR_RETURN(
          response->session.hypothesis,
          ToString(Find(body, "hypothesis", &seen), "hypothesis"));
      break;
    }
    case Request::Op::kClose: {
      const Json* hypothesis = Find(body, "hypothesis", &seen);
      if (hypothesis == nullptr) return ShapeError("missing \"hypothesis\"");
      QLEARN_ASSIGN_OR_RETURN(response->hypothesis,
                              service::wire::HypothesisFromJson(*hypothesis));
      const Json* stats = Find(body, "stats", &seen);
      if (stats == nullptr) return ShapeError("missing \"stats\"");
      QLEARN_ASSIGN_OR_RETURN(response->stats,
                              service::wire::StatsFromJson(*stats));
      break;
    }
    case Request::Op::kCounters: {
      service::ServiceCounters& c = response->counters;
      QLEARN_ASSIGN_OR_RETURN(c.opens,
                              ToUInt(Find(body, "opens", &seen), "opens"));
      QLEARN_ASSIGN_OR_RETURN(c.asks,
                              ToUInt(Find(body, "asks", &seen), "asks"));
      QLEARN_ASSIGN_OR_RETURN(c.tells,
                              ToUInt(Find(body, "tells", &seen), "tells"));
      QLEARN_ASSIGN_OR_RETURN(
          c.oracles, ToUInt(Find(body, "oracles", &seen), "oracles"));
      QLEARN_ASSIGN_OR_RETURN(
          c.statuses, ToUInt(Find(body, "statuses", &seen), "statuses"));
      QLEARN_ASSIGN_OR_RETURN(c.closes,
                              ToUInt(Find(body, "closes", &seen), "closes"));
      QLEARN_ASSIGN_OR_RETURN(c.errors,
                              ToUInt(Find(body, "errors", &seen), "errors"));
      QLEARN_ASSIGN_OR_RETURN(
          c.questions_served,
          ToUInt(Find(body, "questions_served", &seen), "questions_served"));
      QLEARN_ASSIGN_OR_RETURN(
          c.labels_accepted,
          ToUInt(Find(body, "labels_accepted", &seen), "labels_accepted"));
      QLEARN_ASSIGN_OR_RETURN(
          c.hibernates, ToUInt(Find(body, "hibernates", &seen), "hibernates"));
      QLEARN_ASSIGN_OR_RETURN(
          c.rehydrates, ToUInt(Find(body, "rehydrates", &seen), "rehydrates"));
      QLEARN_ASSIGN_OR_RETURN(
          c.hibernate_errors,
          ToUInt(Find(body, "hibernate_errors", &seen), "hibernate_errors"));
      QLEARN_ASSIGN_OR_RETURN(c.exports,
                              ToUInt(Find(body, "exports", &seen), "exports"));
      QLEARN_ASSIGN_OR_RETURN(c.imports,
                              ToUInt(Find(body, "imports", &seen), "imports"));
      QLEARN_ASSIGN_OR_RETURN(
          response->open_sessions,
          ToUInt(Find(body, "open_sessions", &seen), "open_sessions"));
      QLEARN_ASSIGN_OR_RETURN(
          response->resident_sessions,
          ToUInt(Find(body, "resident_sessions", &seen), "resident_sessions"));
      QLEARN_ASSIGN_OR_RETURN(
          response->parked_sessions,
          ToUInt(Find(body, "parked_sessions", &seen), "parked_sessions"));
      const Json* latency = Find(body, "latency_us", &seen);
      if (latency == nullptr || latency->type != Json::Type::kObject) {
        return ShapeError("missing or non-object \"latency_us\"");
      }
      std::vector<bool> latency_seen(latency->object.size(), false);
      QLEARN_RETURN_IF_ERROR(LatencyFromJson(
          Find(*latency, "open", &latency_seen), "open", &c.open_latency_us));
      QLEARN_RETURN_IF_ERROR(LatencyFromJson(
          Find(*latency, "ask", &latency_seen), "ask", &c.ask_latency_us));
      QLEARN_RETURN_IF_ERROR(LatencyFromJson(
          Find(*latency, "tell", &latency_seen), "tell", &c.tell_latency_us));
      QLEARN_RETURN_IF_ERROR(
          LatencyFromJson(Find(*latency, "oracle", &latency_seen), "oracle",
                          &c.oracle_latency_us));
      QLEARN_RETURN_IF_ERROR(
          LatencyFromJson(Find(*latency, "status", &latency_seen), "status",
                          &c.status_latency_us));
      QLEARN_RETURN_IF_ERROR(LatencyFromJson(
          Find(*latency, "close", &latency_seen), "close",
          &c.close_latency_us));
      QLEARN_RETURN_IF_ERROR(
          CheckAllKeysKnown(*latency, latency_seen, "\"latency_us\""));
      break;
    }
    case Request::Op::kSessions: {
      const Json* ids = Find(body, "ids", &seen);
      if (ids == nullptr || ids->type != Json::Type::kArray) {
        return ShapeError("missing or non-array \"ids\"");
      }
      for (const Json& id : ids->array) {
        if (id.type != Json::Type::kString) {
          return ShapeError("non-string entry in \"ids\"");
        }
        response->session_ids.push_back(id.string_value);
      }
      break;
    }
    case Request::Op::kExport: {
      QLEARN_ASSIGN_OR_RETURN(
          response->scenario,
          ToString(Find(body, "scenario", &seen), "scenario"));
      QLEARN_ASSIGN_OR_RETURN(const std::string hex,
                              ToString(Find(body, "image", &seen), "image"));
      QLEARN_ASSIGN_OR_RETURN(response->image, HexDecode(hex, "image"));
      break;
    }
    case Request::Op::kImport:
      break;  // empty body
  }
  return CheckAllKeysKnown(body, seen, std::string("\"") + OpName(op) +
                                           "\" ok body");
}

}  // namespace

std::string Serialize(const Request& request) {
  std::string out = "{\"op\":\"";
  out += OpName(request.op);
  out += '"';
  switch (request.op) {
    case Request::Op::kOpen:
      out += ",\"scenario\":";
      AppendEscaped(request.scenario, &out);
      out += ",\"seed\":" + std::to_string(request.seed);
      out += ",\"max_questions\":" + std::to_string(request.max_questions);
      out += ",\"max_pending\":" + std::to_string(request.max_pending);
      out += ",\"max_wall_micros\":" + std::to_string(request.max_wall_micros);
      if (!request.id.empty()) {
        out += ",\"id\":";
        AppendEscaped(request.id, &out);
      }
      break;
    case Request::Op::kAsk:
      out += ",\"id\":";
      AppendEscaped(request.id, &out);
      out += ",\"k\":" + std::to_string(request.k);
      break;
    case Request::Op::kTell:
      out += ",\"id\":";
      AppendEscaped(request.id, &out);
      out += ",\"labels\":";
      AppendLabels(request.labels, &out);
      break;
    case Request::Op::kOracle:
    case Request::Op::kStatus:
    case Request::Op::kClose:
    case Request::Op::kExport:
      out += ",\"id\":";
      AppendEscaped(request.id, &out);
      break;
    case Request::Op::kImport:
      out += ",\"id\":";
      AppendEscaped(request.id, &out);
      out += ",\"scenario\":";
      AppendEscaped(request.scenario, &out);
      out += ",\"image\":";
      AppendHexQuoted(request.image, &out);
      break;
    case Request::Op::kCounters:
    case Request::Op::kSessions:
      break;
  }
  out.push_back('}');
  return out;
}

common::Result<Request> ParseRequest(const std::string& text) {
  QLEARN_ASSIGN_OR_RETURN(const Json value, service::json::Parse(text));
  if (value.type != Json::Type::kObject) {
    return ShapeError("request must be an object");
  }
  std::vector<bool> seen(value.object.size(), false);
  QLEARN_ASSIGN_OR_RETURN(const std::string op,
                          ToString(Find(value, "op", &seen), "op"));
  Request request;
  if (op == "open") {
    request.op = Request::Op::kOpen;
    QLEARN_ASSIGN_OR_RETURN(
        request.scenario, ToString(Find(value, "scenario", &seen), "scenario"));
    QLEARN_RETURN_IF_ERROR(OptionalUInt(value, "seed", &seen, &request.seed));
    QLEARN_RETURN_IF_ERROR(
        OptionalUInt(value, "max_questions", &seen, &request.max_questions));
    QLEARN_RETURN_IF_ERROR(
        OptionalUInt(value, "max_pending", &seen, &request.max_pending));
    QLEARN_RETURN_IF_ERROR(OptionalUInt(value, "max_wall_micros", &seen,
                                        &request.max_wall_micros));
    const Json* id = Find(value, "id", &seen);
    if (id != nullptr) {
      QLEARN_ASSIGN_OR_RETURN(request.id, ToString(id, "id"));
    }
  } else if (op == "ask") {
    request.op = Request::Op::kAsk;
    QLEARN_ASSIGN_OR_RETURN(request.id,
                            ToString(Find(value, "id", &seen), "id"));
    QLEARN_ASSIGN_OR_RETURN(request.k, ToUInt(Find(value, "k", &seen), "k"));
  } else if (op == "tell") {
    request.op = Request::Op::kTell;
    QLEARN_ASSIGN_OR_RETURN(request.id,
                            ToString(Find(value, "id", &seen), "id"));
    QLEARN_ASSIGN_OR_RETURN(
        request.labels, LabelsFromJson(Find(value, "labels", &seen),
                                       "labels"));
  } else if (op == "oracle" || op == "status" || op == "close" ||
             op == "export") {
    request.op = op == "oracle"   ? Request::Op::kOracle
                 : op == "status" ? Request::Op::kStatus
                 : op == "close"  ? Request::Op::kClose
                                  : Request::Op::kExport;
    QLEARN_ASSIGN_OR_RETURN(request.id,
                            ToString(Find(value, "id", &seen), "id"));
  } else if (op == "import") {
    request.op = Request::Op::kImport;
    QLEARN_ASSIGN_OR_RETURN(request.id,
                            ToString(Find(value, "id", &seen), "id"));
    QLEARN_ASSIGN_OR_RETURN(
        request.scenario, ToString(Find(value, "scenario", &seen), "scenario"));
    QLEARN_ASSIGN_OR_RETURN(const std::string hex,
                            ToString(Find(value, "image", &seen), "image"));
    QLEARN_ASSIGN_OR_RETURN(request.image, HexDecode(hex, "image"));
  } else if (op == "counters") {
    request.op = Request::Op::kCounters;
  } else if (op == "sessions") {
    request.op = Request::Op::kSessions;
  } else {
    return ShapeError("unknown op \"" + op + "\"");
  }
  QLEARN_RETURN_IF_ERROR(
      CheckAllKeysKnown(value, seen, "\"" + op + "\" request"));
  return request;
}

std::string SerializeError(const common::Status& status) {
  std::string out;
  AppendErrorFrame(status, &out);
  return out;
}

common::Result<Response> ParseResponse(Request::Op op,
                                       const std::string& text) {
  QLEARN_ASSIGN_OR_RETURN(const Json value, service::json::Parse(text));
  if (value.type != Json::Type::kObject || value.object.size() != 1) {
    return ShapeError("response must be an object with one key");
  }
  const auto& [tag, body] = value.object[0];
  Response response;
  if (tag == "error") {
    if (body.type != Json::Type::kObject) {
      return ShapeError("\"error\" body must be an object");
    }
    std::vector<bool> seen(body.object.size(), false);
    QLEARN_ASSIGN_OR_RETURN(const std::string code_name,
                            ToString(Find(body, "code", &seen), "code"));
    QLEARN_ASSIGN_OR_RETURN(const std::string message,
                            ToString(Find(body, "message", &seen), "message"));
    QLEARN_RETURN_IF_ERROR(CheckAllKeysKnown(body, seen, "error body"));
    common::StatusCode code;
    if (!common::StatusCodeFromName(code_name, &code) ||
        code == common::StatusCode::kOk) {
      return ShapeError("unknown error code \"" + code_name + "\"");
    }
    response.status = common::Status(code, message);
    return response;
  }
  if (tag != "ok") {
    return ShapeError("expected \"ok\" or \"error\", got \"" + tag + "\"");
  }
  QLEARN_RETURN_IF_ERROR(ParseOkBody(op, body, &response));
  return response;
}

std::string HandleFrame(service::SessionService* service,
                        const std::string& request_json) {
  std::string out;
  auto request_or = ParseRequest(request_json);
  if (!request_or.ok()) {
    AppendErrorFrame(request_or.status(), &out);
    return out;
  }
  const Request& request = request_or.value();
  switch (request.op) {
    case Request::Op::kOpen: {
      service::OpenOptions options;
      options.seed = request.seed;
      options.budget.max_questions = request.max_questions;
      options.budget.max_pending =
          static_cast<size_t>(request.max_pending);
      options.budget.max_wall_seconds =
          static_cast<double>(request.max_wall_micros) / 1e6;
      options.id = request.id;
      auto id = service->Open(request.scenario, options);
      if (!id.ok()) {
        AppendErrorFrame(id.status(), &out);
      } else {
        AppendOkOpen(id.value(), &out);
      }
      return out;
    }
    case Request::Op::kAsk: {
      auto questions = service->Ask(request.id,
                                    static_cast<size_t>(request.k));
      if (!questions.ok()) {
        AppendErrorFrame(questions.status(), &out);
      } else {
        AppendOkAsk(questions.value(), &out);
      }
      return out;
    }
    case Request::Op::kTell: {
      const common::Status status = service->Tell(request.id, request.labels);
      if (!status.ok()) {
        AppendErrorFrame(status, &out);
      } else {
        AppendOkTell(&out);
      }
      return out;
    }
    case Request::Op::kOracle: {
      auto labels = service->OracleLabels(request.id);
      if (!labels.ok()) {
        AppendErrorFrame(labels.status(), &out);
      } else {
        AppendOkOracle(labels.value(), &out);
      }
      return out;
    }
    case Request::Op::kStatus: {
      auto status = service->Status(request.id);
      if (!status.ok()) {
        AppendErrorFrame(status.status(), &out);
      } else {
        AppendOkStatus(status.value(), &out);
      }
      return out;
    }
    case Request::Op::kClose: {
      auto closed = service->Close(request.id);
      if (!closed.ok()) {
        AppendErrorFrame(closed.status(), &out);
      } else {
        AppendOkClose(closed.value(), &out);
      }
      return out;
    }
    case Request::Op::kCounters:
      AppendOkCounters(service->Counters(), service->OpenCount(),
                       service->ResidentCount(), service->ParkedCount(),
                       &out);
      return out;
    case Request::Op::kSessions:
      AppendOkSessions(service->ListOpen(), &out);
      return out;
    case Request::Op::kExport: {
      auto exported = service->ExportSession(request.id);
      if (!exported.ok()) {
        AppendErrorFrame(exported.status(), &out);
      } else {
        AppendOkExport(exported.value(), &out);
      }
      return out;
    }
    case Request::Op::kImport: {
      const common::Status status =
          service->ImportSession(request.id, request.scenario, request.image);
      if (!status.ok()) {
        AppendErrorFrame(status, &out);
      } else {
        AppendOkTell(&out);  // {"ok":{}}
      }
      return out;
    }
  }
  AppendErrorFrame(common::Status::Internal("unhandled op in HandleFrame"),
                   &out);
  return out;
}

common::Result<RequestView> ParseRequestView(std::string_view text,
                                             service::json::Arena* arena) {
  using service::json::CheckAllKeysKnown;
  using service::json::Find;
  using service::json::ToStringView;
  using service::json::ToUInt;
  using View = service::json::View;

  QLEARN_ASSIGN_OR_RETURN(const View* value,
                          service::json::ParseInto(text, arena));
  if (value->type != Json::Type::kObject) {
    return ShapeError("request must be an object");
  }
  uint64_t seen = 0;
  QLEARN_ASSIGN_OR_RETURN(const std::string_view op,
                          ToStringView(Find(*value, "op", &seen), "op"));
  // Mirrors ParseRequest clause for clause — same accepted shapes, same
  // error messages (the arena-vs-heap parity property test holds both
  // parsers to that).
  RequestView request;
  if (op == "open") {
    request.op = Request::Op::kOpen;
    QLEARN_ASSIGN_OR_RETURN(
        request.scenario,
        ToStringView(Find(*value, "scenario", &seen), "scenario"));
    const auto optional_uint = [&](std::string_view key,
                                   uint64_t* out) -> Status {
      const View* field = Find(*value, key, &seen);
      if (field == nullptr) return Status::OK();
      QLEARN_ASSIGN_OR_RETURN(*out, ToUInt(field, key));
      return Status::OK();
    };
    QLEARN_RETURN_IF_ERROR(optional_uint("seed", &request.seed));
    QLEARN_RETURN_IF_ERROR(
        optional_uint("max_questions", &request.max_questions));
    QLEARN_RETURN_IF_ERROR(optional_uint("max_pending", &request.max_pending));
    QLEARN_RETURN_IF_ERROR(
        optional_uint("max_wall_micros", &request.max_wall_micros));
    const View* id = Find(*value, "id", &seen);
    if (id != nullptr) {
      QLEARN_ASSIGN_OR_RETURN(request.id, ToStringView(id, "id"));
    }
  } else if (op == "ask") {
    request.op = Request::Op::kAsk;
    QLEARN_ASSIGN_OR_RETURN(request.id,
                            ToStringView(Find(*value, "id", &seen), "id"));
    QLEARN_ASSIGN_OR_RETURN(request.k, ToUInt(Find(*value, "k", &seen), "k"));
  } else if (op == "tell") {
    request.op = Request::Op::kTell;
    QLEARN_ASSIGN_OR_RETURN(request.id,
                            ToStringView(Find(*value, "id", &seen), "id"));
    const View* labels = Find(*value, "labels", &seen);
    if (labels == nullptr || labels->type != Json::Type::kArray) {
      return ShapeError("missing or non-array \"labels\"");
    }
    bool* decoded = static_cast<bool*>(
        arena->Allocate(labels->element_count * sizeof(bool), alignof(bool)));
    for (uint32_t i = 0; i < labels->element_count; ++i) {
      if (labels->elements[i].type != Json::Type::kBool) {
        return ShapeError("non-boolean entry in \"labels\"");
      }
      decoded[i] = labels->elements[i].bool_value;
    }
    request.labels = decoded;
    request.label_count = labels->element_count;
  } else if (op == "oracle" || op == "status" || op == "close" ||
             op == "export") {
    request.op = op == "oracle"   ? Request::Op::kOracle
                 : op == "status" ? Request::Op::kStatus
                 : op == "close"  ? Request::Op::kClose
                                  : Request::Op::kExport;
    QLEARN_ASSIGN_OR_RETURN(request.id,
                            ToStringView(Find(*value, "id", &seen), "id"));
  } else if (op == "import") {
    request.op = Request::Op::kImport;
    QLEARN_ASSIGN_OR_RETURN(request.id,
                            ToStringView(Find(*value, "id", &seen), "id"));
    QLEARN_ASSIGN_OR_RETURN(
        request.scenario,
        ToStringView(Find(*value, "scenario", &seen), "scenario"));
    QLEARN_ASSIGN_OR_RETURN(
        const std::string_view hex,
        ToStringView(Find(*value, "image", &seen), "image"));
    QLEARN_ASSIGN_OR_RETURN(request.image,
                            HexDecodeIntoArena(hex, "image", arena));
  } else if (op == "counters") {
    request.op = Request::Op::kCounters;
  } else if (op == "sessions") {
    request.op = Request::Op::kSessions;
  } else {
    return ShapeError("unknown op \"" + std::string(op) + "\"");
  }
  QLEARN_RETURN_IF_ERROR(CheckAllKeysKnown(
      *value, seen, "\"" + std::string(op) + "\" request"));
  return request;
}

void HandleFrameInto(service::SessionService* service,
                     std::string_view request_json,
                     service::json::Arena* arena, std::string* out) {
  auto request_or = ParseRequestView(request_json, arena);
  if (!request_or.ok()) {
    AppendErrorFrame(request_or.status(), out);
    return;
  }
  const RequestView& request = request_or.value();
  switch (request.op) {
    case Request::Op::kOpen: {
      service::OpenOptions options;
      options.seed = request.seed;
      options.budget.max_questions = request.max_questions;
      options.budget.max_pending = static_cast<size_t>(request.max_pending);
      options.budget.max_wall_seconds =
          static_cast<double>(request.max_wall_micros) / 1e6;
      options.id = std::string(request.id);
      auto id = service->Open(std::string(request.scenario), options);
      if (!id.ok()) {
        AppendErrorFrame(id.status(), out);
      } else {
        AppendOkOpen(id.value(), out);
      }
      return;
    }
    case Request::Op::kAsk: {
      auto questions =
          service->Ask(request.id, static_cast<size_t>(request.k));
      if (!questions.ok()) {
        AppendErrorFrame(questions.status(), out);
      } else {
        AppendOkAsk(questions.value(), out);
      }
      return;
    }
    case Request::Op::kTell: {
      const common::Status status =
          service->Tell(request.id, request.labels, request.label_count);
      if (!status.ok()) {
        AppendErrorFrame(status, out);
      } else {
        AppendOkTell(out);
      }
      return;
    }
    case Request::Op::kOracle: {
      auto labels = service->OracleLabels(request.id);
      if (!labels.ok()) {
        AppendErrorFrame(labels.status(), out);
      } else {
        AppendOkOracle(labels.value(), out);
      }
      return;
    }
    case Request::Op::kStatus: {
      auto status = service->Status(request.id);
      if (!status.ok()) {
        AppendErrorFrame(status.status(), out);
      } else {
        AppendOkStatus(status.value(), out);
      }
      return;
    }
    case Request::Op::kClose: {
      auto closed = service->Close(request.id);
      if (!closed.ok()) {
        AppendErrorFrame(closed.status(), out);
      } else {
        AppendOkClose(closed.value(), out);
      }
      return;
    }
    case Request::Op::kCounters:
      AppendOkCounters(service->Counters(), service->OpenCount(),
                       service->ResidentCount(), service->ParkedCount(), out);
      return;
    case Request::Op::kSessions:
      AppendOkSessions(service->ListOpen(), out);
      return;
    case Request::Op::kExport: {
      auto exported = service->ExportSession(request.id);
      if (!exported.ok()) {
        AppendErrorFrame(exported.status(), out);
      } else {
        AppendOkExport(exported.value(), out);
      }
      return;
    }
    case Request::Op::kImport: {
      const common::Status status = service->ImportSession(
          request.id, std::string(request.scenario), request.image);
      if (!status.ok()) {
        AppendErrorFrame(status, out);
      } else {
        AppendOkTell(out);  // {"ok":{}}
      }
      return;
    }
  }
  AppendErrorFrame(common::Status::Internal("unhandled op in HandleFrame"),
                   out);
}

common::Result<RequestPeek> PeekRequest(std::string_view frame,
                                        service::json::Arena* arena) {
  using service::json::ToStringView;
  using View = service::json::View;
  QLEARN_ASSIGN_OR_RETURN(const View* value,
                          service::json::ParseInto(frame, arena));
  if (value->type != Json::Type::kObject) {
    return ShapeError("request must be an object");
  }
  uint64_t seen = 0;
  RequestPeek peek;
  peek.root = value;
  QLEARN_ASSIGN_OR_RETURN(peek.op,
                          ToStringView(Find(*value, "op", &seen), "op"));
  const View* id = Find(*value, "id", &seen);
  if (id != nullptr) {
    QLEARN_ASSIGN_OR_RETURN(peek.id, ToStringView(id, "id"));
    peek.has_id = true;
  }
  return peek;
}

void AppendOpenWithId(const service::json::View& root, std::string_view id,
                      std::string* out) {
  out->push_back('{');
  for (uint32_t i = 0; i < root.member_count; ++i) {
    AppendEscaped(root.members[i].key, out);
    out->push_back(':');
    service::json::AppendView(root.members[i].value, out);
    out->push_back(',');
  }
  *out += "\"id\":";
  AppendEscaped(id, out);
  out->push_back('}');
}

common::Result<std::string> MergeCountersFrames(
    const std::vector<std::string>& frames) {
  if (frames.empty()) {
    return ShapeError("counters merge needs at least one frame");
  }
  service::ServiceCounters total;
  uint64_t open_sessions = 0;
  uint64_t resident_sessions = 0;
  uint64_t parked_sessions = 0;
  const auto add_latency = [](const service::LatencySnapshot& in,
                              service::LatencySnapshot* out) {
    for (size_t i = 0; i < service::LatencySnapshot::kBuckets; ++i) {
      out->buckets[i] += in.buckets[i];
    }
  };
  for (const std::string& frame : frames) {
    QLEARN_ASSIGN_OR_RETURN(const Response response,
                            ParseResponse(Request::Op::kCounters, frame));
    if (!response.status.ok()) return frame;  // error frame wins, verbatim
    const service::ServiceCounters& c = response.counters;
    total.opens += c.opens;
    total.asks += c.asks;
    total.tells += c.tells;
    total.oracles += c.oracles;
    total.statuses += c.statuses;
    total.closes += c.closes;
    total.errors += c.errors;
    total.questions_served += c.questions_served;
    total.labels_accepted += c.labels_accepted;
    total.hibernates += c.hibernates;
    total.rehydrates += c.rehydrates;
    total.hibernate_errors += c.hibernate_errors;
    total.exports += c.exports;
    total.imports += c.imports;
    add_latency(c.open_latency_us, &total.open_latency_us);
    add_latency(c.ask_latency_us, &total.ask_latency_us);
    add_latency(c.tell_latency_us, &total.tell_latency_us);
    add_latency(c.oracle_latency_us, &total.oracle_latency_us);
    add_latency(c.status_latency_us, &total.status_latency_us);
    add_latency(c.close_latency_us, &total.close_latency_us);
    open_sessions += response.open_sessions;
    resident_sessions += response.resident_sessions;
    parked_sessions += response.parked_sessions;
  }
  std::string out;
  AppendOkCounters(total, open_sessions, resident_sessions, parked_sessions,
                   &out);
  return out;
}

}  // namespace net
}  // namespace qlearn
