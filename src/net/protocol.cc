#include "net/protocol.h"

#include <utility>

#include "service/json.h"

namespace qlearn {
namespace net {

namespace {

using common::Result;
using common::Status;
using service::SessionBudget;
using service::wire::QuestionPayload;
using Json = service::json::Value;
using service::json::AppendEscaped;
using service::json::CheckAllKeysKnown;
using service::json::Find;
using service::json::ToBool;
using service::json::ToString;
using service::json::ToUInt;

const char* OpName(Request::Op op) {
  switch (op) {
    case Request::Op::kOpen:
      return "open";
    case Request::Op::kAsk:
      return "ask";
    case Request::Op::kTell:
      return "tell";
    case Request::Op::kOracle:
      return "oracle";
    case Request::Op::kStatus:
      return "status";
    case Request::Op::kClose:
      return "close";
    case Request::Op::kCounters:
      return "counters";
  }
  return "unknown";
}

Status ShapeError(const std::string& message) {
  return Status::ParseError("protocol: " + message);
}

void AppendLabels(const std::vector<bool>& labels, std::string* out) {
  out->push_back('[');
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out->push_back(',');
    *out += labels[i] ? "true" : "false";
  }
  out->push_back(']');
}

Result<std::vector<bool>> LabelsFromJson(const Json* value,
                                         const std::string& what) {
  if (value == nullptr || value->type != Json::Type::kArray) {
    return ShapeError("missing or non-array \"" + what + "\"");
  }
  std::vector<bool> labels;
  labels.reserve(value->array.size());
  for (const Json& label : value->array) {
    if (label.type != Json::Type::kBool) {
      return ShapeError("non-boolean entry in \"" + what + "\"");
    }
    labels.push_back(label.bool_value);
  }
  return labels;
}

/// Reads an optional unsigned field into `*out` (leaves the default when
/// the key is absent).
Status OptionalUInt(const Json& object, const std::string& key,
                    std::vector<bool>* seen, uint64_t* out) {
  const Json* value = Find(object, key, seen);
  if (value == nullptr) return Status::OK();
  QLEARN_ASSIGN_OR_RETURN(*out, ToUInt(value, key));
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Ok-frame bodies, one writer per op. All reuse the canonical wire
// serializations for embedded payloads.

std::string OkFrame(const std::string& body) {
  return "{\"ok\":" + body + "}";
}

std::string OpenBody(const std::string& id) {
  std::string out = "{\"id\":";
  AppendEscaped(id, &out);
  out.push_back('}');
  return out;
}

std::string AskBody(const std::vector<QuestionPayload>& questions) {
  std::string out = "{\"questions\":[";
  for (size_t i = 0; i < questions.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += service::wire::Serialize(questions[i]);
  }
  out += "]}";
  return out;
}

std::string OracleBody(const std::vector<bool>& labels) {
  std::string out = "{\"labels\":";
  AppendLabels(labels, &out);
  out.push_back('}');
  return out;
}

std::string StatusBody(const service::SessionStatus& status) {
  std::string out = "{\"id\":";
  AppendEscaped(status.id, &out);
  out += ",\"scenario\":";
  AppendEscaped(status.scenario, &out);
  out += ",\"stats\":" + service::wire::Serialize(status.stats);
  out += ",\"pending\":" + std::to_string(status.pending);
  out += ",\"budget_exhausted\":";
  out += status.budget_exhausted ? "true" : "false";
  out += ",\"hypothesis\":";
  AppendEscaped(status.hypothesis, &out);
  out.push_back('}');
  return out;
}

std::string CloseBody(const service::CloseResult& result) {
  std::string out = "{\"hypothesis\":" +
                    service::wire::Serialize(result.hypothesis);
  out += ",\"stats\":" + service::wire::Serialize(result.stats);
  out.push_back('}');
  return out;
}

std::string CountersBody(const service::ServiceCounters& counters,
                         uint64_t open_sessions, uint64_t resident_sessions,
                         uint64_t parked_sessions) {
  std::string out = "{\"opens\":" + std::to_string(counters.opens);
  out += ",\"asks\":" + std::to_string(counters.asks);
  out += ",\"tells\":" + std::to_string(counters.tells);
  out += ",\"oracles\":" + std::to_string(counters.oracles);
  out += ",\"statuses\":" + std::to_string(counters.statuses);
  out += ",\"closes\":" + std::to_string(counters.closes);
  out += ",\"errors\":" + std::to_string(counters.errors);
  out += ",\"questions_served\":" +
         std::to_string(counters.questions_served);
  out += ",\"labels_accepted\":" + std::to_string(counters.labels_accepted);
  out += ",\"hibernates\":" + std::to_string(counters.hibernates);
  out += ",\"rehydrates\":" + std::to_string(counters.rehydrates);
  out += ",\"hibernate_errors\":" +
         std::to_string(counters.hibernate_errors);
  out += ",\"open_sessions\":" + std::to_string(open_sessions);
  out += ",\"resident_sessions\":" + std::to_string(resident_sessions);
  out += ",\"parked_sessions\":" + std::to_string(parked_sessions);
  out.push_back('}');
  return out;
}

// ---------------------------------------------------------------------------
// Ok-frame body parsing, one reader per op (strict, like the wire parsers).

Status ParseOkBody(Request::Op op, const Json& body, Response* response) {
  if (body.type != Json::Type::kObject) {
    return ShapeError("\"ok\" body must be an object");
  }
  std::vector<bool> seen(body.object.size(), false);
  switch (op) {
    case Request::Op::kOpen: {
      QLEARN_ASSIGN_OR_RETURN(response->id,
                              ToString(Find(body, "id", &seen), "id"));
      break;
    }
    case Request::Op::kAsk: {
      const Json* questions = Find(body, "questions", &seen);
      if (questions == nullptr || questions->type != Json::Type::kArray) {
        return ShapeError("missing or non-array \"questions\"");
      }
      for (const Json& question : questions->array) {
        QLEARN_ASSIGN_OR_RETURN(QuestionPayload payload,
                                service::wire::QuestionFromJson(question));
        response->questions.push_back(std::move(payload));
      }
      break;
    }
    case Request::Op::kTell:
      break;  // empty body
    case Request::Op::kOracle: {
      QLEARN_ASSIGN_OR_RETURN(response->labels,
                              LabelsFromJson(Find(body, "labels", &seen),
                                             "labels"));
      break;
    }
    case Request::Op::kStatus: {
      QLEARN_ASSIGN_OR_RETURN(response->session.id,
                              ToString(Find(body, "id", &seen), "id"));
      QLEARN_ASSIGN_OR_RETURN(
          response->session.scenario,
          ToString(Find(body, "scenario", &seen), "scenario"));
      const Json* stats = Find(body, "stats", &seen);
      if (stats == nullptr) return ShapeError("missing \"stats\"");
      QLEARN_ASSIGN_OR_RETURN(response->session.stats,
                              service::wire::StatsFromJson(*stats));
      QLEARN_ASSIGN_OR_RETURN(const uint64_t pending,
                              ToUInt(Find(body, "pending", &seen), "pending"));
      response->session.pending = static_cast<size_t>(pending);
      QLEARN_ASSIGN_OR_RETURN(response->session.budget_exhausted,
                              ToBool(Find(body, "budget_exhausted", &seen),
                                     "budget_exhausted"));
      QLEARN_ASSIGN_OR_RETURN(
          response->session.hypothesis,
          ToString(Find(body, "hypothesis", &seen), "hypothesis"));
      break;
    }
    case Request::Op::kClose: {
      const Json* hypothesis = Find(body, "hypothesis", &seen);
      if (hypothesis == nullptr) return ShapeError("missing \"hypothesis\"");
      QLEARN_ASSIGN_OR_RETURN(response->hypothesis,
                              service::wire::HypothesisFromJson(*hypothesis));
      const Json* stats = Find(body, "stats", &seen);
      if (stats == nullptr) return ShapeError("missing \"stats\"");
      QLEARN_ASSIGN_OR_RETURN(response->stats,
                              service::wire::StatsFromJson(*stats));
      break;
    }
    case Request::Op::kCounters: {
      service::ServiceCounters& c = response->counters;
      QLEARN_ASSIGN_OR_RETURN(c.opens,
                              ToUInt(Find(body, "opens", &seen), "opens"));
      QLEARN_ASSIGN_OR_RETURN(c.asks,
                              ToUInt(Find(body, "asks", &seen), "asks"));
      QLEARN_ASSIGN_OR_RETURN(c.tells,
                              ToUInt(Find(body, "tells", &seen), "tells"));
      QLEARN_ASSIGN_OR_RETURN(
          c.oracles, ToUInt(Find(body, "oracles", &seen), "oracles"));
      QLEARN_ASSIGN_OR_RETURN(
          c.statuses, ToUInt(Find(body, "statuses", &seen), "statuses"));
      QLEARN_ASSIGN_OR_RETURN(c.closes,
                              ToUInt(Find(body, "closes", &seen), "closes"));
      QLEARN_ASSIGN_OR_RETURN(c.errors,
                              ToUInt(Find(body, "errors", &seen), "errors"));
      QLEARN_ASSIGN_OR_RETURN(
          c.questions_served,
          ToUInt(Find(body, "questions_served", &seen), "questions_served"));
      QLEARN_ASSIGN_OR_RETURN(
          c.labels_accepted,
          ToUInt(Find(body, "labels_accepted", &seen), "labels_accepted"));
      QLEARN_ASSIGN_OR_RETURN(
          c.hibernates, ToUInt(Find(body, "hibernates", &seen), "hibernates"));
      QLEARN_ASSIGN_OR_RETURN(
          c.rehydrates, ToUInt(Find(body, "rehydrates", &seen), "rehydrates"));
      QLEARN_ASSIGN_OR_RETURN(
          c.hibernate_errors,
          ToUInt(Find(body, "hibernate_errors", &seen), "hibernate_errors"));
      QLEARN_ASSIGN_OR_RETURN(
          response->open_sessions,
          ToUInt(Find(body, "open_sessions", &seen), "open_sessions"));
      QLEARN_ASSIGN_OR_RETURN(
          response->resident_sessions,
          ToUInt(Find(body, "resident_sessions", &seen), "resident_sessions"));
      QLEARN_ASSIGN_OR_RETURN(
          response->parked_sessions,
          ToUInt(Find(body, "parked_sessions", &seen), "parked_sessions"));
      break;
    }
  }
  return CheckAllKeysKnown(body, seen, std::string("\"") + OpName(op) +
                                           "\" ok body");
}

}  // namespace

std::string Serialize(const Request& request) {
  std::string out = "{\"op\":\"";
  out += OpName(request.op);
  out += '"';
  switch (request.op) {
    case Request::Op::kOpen:
      out += ",\"scenario\":";
      AppendEscaped(request.scenario, &out);
      out += ",\"seed\":" + std::to_string(request.seed);
      out += ",\"max_questions\":" + std::to_string(request.max_questions);
      out += ",\"max_pending\":" + std::to_string(request.max_pending);
      out += ",\"max_wall_micros\":" + std::to_string(request.max_wall_micros);
      break;
    case Request::Op::kAsk:
      out += ",\"id\":";
      AppendEscaped(request.id, &out);
      out += ",\"k\":" + std::to_string(request.k);
      break;
    case Request::Op::kTell:
      out += ",\"id\":";
      AppendEscaped(request.id, &out);
      out += ",\"labels\":";
      AppendLabels(request.labels, &out);
      break;
    case Request::Op::kOracle:
    case Request::Op::kStatus:
    case Request::Op::kClose:
      out += ",\"id\":";
      AppendEscaped(request.id, &out);
      break;
    case Request::Op::kCounters:
      break;
  }
  out.push_back('}');
  return out;
}

common::Result<Request> ParseRequest(const std::string& text) {
  QLEARN_ASSIGN_OR_RETURN(const Json value, service::json::Parse(text));
  if (value.type != Json::Type::kObject) {
    return ShapeError("request must be an object");
  }
  std::vector<bool> seen(value.object.size(), false);
  QLEARN_ASSIGN_OR_RETURN(const std::string op,
                          ToString(Find(value, "op", &seen), "op"));
  Request request;
  if (op == "open") {
    request.op = Request::Op::kOpen;
    QLEARN_ASSIGN_OR_RETURN(
        request.scenario, ToString(Find(value, "scenario", &seen), "scenario"));
    QLEARN_RETURN_IF_ERROR(OptionalUInt(value, "seed", &seen, &request.seed));
    QLEARN_RETURN_IF_ERROR(
        OptionalUInt(value, "max_questions", &seen, &request.max_questions));
    QLEARN_RETURN_IF_ERROR(
        OptionalUInt(value, "max_pending", &seen, &request.max_pending));
    QLEARN_RETURN_IF_ERROR(OptionalUInt(value, "max_wall_micros", &seen,
                                        &request.max_wall_micros));
  } else if (op == "ask") {
    request.op = Request::Op::kAsk;
    QLEARN_ASSIGN_OR_RETURN(request.id,
                            ToString(Find(value, "id", &seen), "id"));
    QLEARN_ASSIGN_OR_RETURN(request.k, ToUInt(Find(value, "k", &seen), "k"));
  } else if (op == "tell") {
    request.op = Request::Op::kTell;
    QLEARN_ASSIGN_OR_RETURN(request.id,
                            ToString(Find(value, "id", &seen), "id"));
    QLEARN_ASSIGN_OR_RETURN(
        request.labels, LabelsFromJson(Find(value, "labels", &seen),
                                       "labels"));
  } else if (op == "oracle" || op == "status" || op == "close") {
    request.op = op == "oracle" ? Request::Op::kOracle
                 : op == "status" ? Request::Op::kStatus
                                  : Request::Op::kClose;
    QLEARN_ASSIGN_OR_RETURN(request.id,
                            ToString(Find(value, "id", &seen), "id"));
  } else if (op == "counters") {
    request.op = Request::Op::kCounters;
  } else {
    return ShapeError("unknown op \"" + op + "\"");
  }
  QLEARN_RETURN_IF_ERROR(
      CheckAllKeysKnown(value, seen, "\"" + op + "\" request"));
  return request;
}

std::string SerializeError(const common::Status& status) {
  std::string out = "{\"error\":{\"code\":\"";
  out += common::StatusCodeName(status.code());
  out += "\",\"message\":";
  AppendEscaped(status.message(), &out);
  out += "}}";
  return out;
}

common::Result<Response> ParseResponse(Request::Op op,
                                       const std::string& text) {
  QLEARN_ASSIGN_OR_RETURN(const Json value, service::json::Parse(text));
  if (value.type != Json::Type::kObject || value.object.size() != 1) {
    return ShapeError("response must be an object with one key");
  }
  const auto& [tag, body] = value.object[0];
  Response response;
  if (tag == "error") {
    if (body.type != Json::Type::kObject) {
      return ShapeError("\"error\" body must be an object");
    }
    std::vector<bool> seen(body.object.size(), false);
    QLEARN_ASSIGN_OR_RETURN(const std::string code_name,
                            ToString(Find(body, "code", &seen), "code"));
    QLEARN_ASSIGN_OR_RETURN(const std::string message,
                            ToString(Find(body, "message", &seen), "message"));
    QLEARN_RETURN_IF_ERROR(CheckAllKeysKnown(body, seen, "error body"));
    common::StatusCode code;
    if (!common::StatusCodeFromName(code_name, &code) ||
        code == common::StatusCode::kOk) {
      return ShapeError("unknown error code \"" + code_name + "\"");
    }
    response.status = common::Status(code, message);
    return response;
  }
  if (tag != "ok") {
    return ShapeError("expected \"ok\" or \"error\", got \"" + tag + "\"");
  }
  QLEARN_RETURN_IF_ERROR(ParseOkBody(op, body, &response));
  return response;
}

std::string HandleFrame(service::SessionService* service,
                        const std::string& request_json) {
  auto request_or = ParseRequest(request_json);
  if (!request_or.ok()) return SerializeError(request_or.status());
  const Request& request = request_or.value();
  switch (request.op) {
    case Request::Op::kOpen: {
      service::OpenOptions options;
      options.seed = request.seed;
      options.budget.max_questions = request.max_questions;
      options.budget.max_pending =
          static_cast<size_t>(request.max_pending);
      options.budget.max_wall_seconds =
          static_cast<double>(request.max_wall_micros) / 1e6;
      auto id = service->Open(request.scenario, options);
      if (!id.ok()) return SerializeError(id.status());
      return OkFrame(OpenBody(id.value()));
    }
    case Request::Op::kAsk: {
      auto questions = service->Ask(request.id,
                                    static_cast<size_t>(request.k));
      if (!questions.ok()) return SerializeError(questions.status());
      return OkFrame(AskBody(questions.value()));
    }
    case Request::Op::kTell: {
      const common::Status status = service->Tell(request.id, request.labels);
      if (!status.ok()) return SerializeError(status);
      return OkFrame("{}");
    }
    case Request::Op::kOracle: {
      auto labels = service->OracleLabels(request.id);
      if (!labels.ok()) return SerializeError(labels.status());
      return OkFrame(OracleBody(labels.value()));
    }
    case Request::Op::kStatus: {
      auto status = service->Status(request.id);
      if (!status.ok()) return SerializeError(status.status());
      return OkFrame(StatusBody(status.value()));
    }
    case Request::Op::kClose: {
      auto closed = service->Close(request.id);
      if (!closed.ok()) return SerializeError(closed.status());
      return OkFrame(CloseBody(closed.value()));
    }
    case Request::Op::kCounters:
      return OkFrame(CountersBody(service->Counters(), service->OpenCount(),
                                  service->ResidentCount(),
                                  service->ParkedCount()));
  }
  return SerializeError(
      common::Status::Internal("unhandled op in HandleFrame"));
}

}  // namespace net
}  // namespace qlearn
