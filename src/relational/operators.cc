#include "relational/operators.h"

#include <algorithm>

namespace qlearn {
namespace relational {

using common::Result;
using common::Status;

bool PairsSatisfied(const Tuple& r, const Tuple& s,
                    const std::vector<AttributePair>& on) {
  for (const AttributePair& p : on) {
    if (!r[p.left].EqualsSql(s[p.right])) return false;
  }
  return true;
}

std::vector<AttributePair> AgreeSet(
    const Tuple& r, const Tuple& s,
    const std::vector<AttributePair>& universe) {
  std::vector<AttributePair> out;
  for (const AttributePair& p : universe) {
    if (r[p.left].EqualsSql(s[p.right])) out.push_back(p);
  }
  return out;
}

std::vector<AttributePair> CompatiblePairs(const RelationSchema& left,
                                           const RelationSchema& right) {
  std::vector<AttributePair> out;
  for (size_t i = 0; i < left.arity(); ++i) {
    for (size_t j = 0; j < right.arity(); ++j) {
      if (left.attributes()[i].type == right.attributes()[j].type) {
        out.push_back(AttributePair{i, j});
      }
    }
  }
  return out;
}

std::vector<AttributePair> SharedAttributePairs(const RelationSchema& left,
                                                const RelationSchema& right) {
  std::vector<AttributePair> out;
  for (size_t i = 0; i < left.arity(); ++i) {
    const auto j = right.AttributeIndex(left.attributes()[i].name);
    if (j.has_value() &&
        left.attributes()[i].type == right.attributes()[*j].type) {
      out.push_back(AttributePair{i, *j});
    }
  }
  return out;
}

namespace {

Status ValidatePairs(const Relation& left, const Relation& right,
                     const std::vector<AttributePair>& on) {
  if (on.empty()) {
    return Status::InvalidArgument("join predicate must be non-empty");
  }
  for (const AttributePair& p : on) {
    if (p.left >= left.schema().arity() || p.right >= right.schema().arity()) {
      return Status::OutOfRange("attribute pair out of range");
    }
    if (left.schema().attributes()[p.left].type !=
        right.schema().attributes()[p.right].type) {
      return Status::InvalidArgument(
          "type mismatch between " +
          left.schema().attributes()[p.left].name + " and " +
          right.schema().attributes()[p.right].name);
    }
  }
  return Status::OK();
}

/// Hash-join driver: invokes `emit(l, r)` for every matching row pair.
void HashJoin(const Relation& left, const Relation& right,
              const std::vector<AttributePair>& on,
              const std::function<void(size_t, size_t)>& emit) {
  // Build on the smaller side, probe with the larger; index on the first
  // pair, verify the rest tuple-wise.
  const AttributePair first = on[0];
  const bool build_right = right.size() <= left.size();
  const Relation& build = build_right ? right : left;
  const size_t build_col = build_right ? first.right : first.left;
  const Relation& probe = build_right ? left : right;
  const size_t probe_col = build_right ? first.left : first.right;

  const auto& index = build.IndexOn(build_col);
  for (size_t p = 0; p < probe.size(); ++p) {
    const Value& key = probe.row(p)[probe_col];
    if (key.is_null()) continue;
    const auto range = index.equal_range(key.Hash());
    for (auto it = range.first; it != range.second; ++it) {
      const size_t b = it->second;
      const size_t l = build_right ? p : b;
      const size_t r = build_right ? b : p;
      if (PairsSatisfied(left.row(l), right.row(r), on)) emit(l, r);
    }
  }
}

}  // namespace

Result<Relation> EquiJoin(const Relation& left, const Relation& right,
                          const std::vector<AttributePair>& on) {
  QLEARN_RETURN_IF_ERROR(ValidatePairs(left, right, on));
  std::vector<Attribute> attrs = left.schema().attributes();
  for (const Attribute& a : right.schema().attributes()) {
    attrs.push_back(
        Attribute{right.schema().name() + "." + a.name, a.type});
  }
  Relation out(RelationSchema(
      left.schema().name() + "_join_" + right.schema().name(),
      std::move(attrs)));
  HashJoin(left, right, on, [&](size_t l, size_t r) {
    Tuple row = left.row(l);
    row.insert(row.end(), right.row(r).begin(), right.row(r).end());
    out.InsertUnchecked(std::move(row));
  });
  return out;
}

Result<Relation> NaturalJoin(const Relation& left, const Relation& right) {
  const std::vector<AttributePair> shared =
      SharedAttributePairs(left.schema(), right.schema());
  if (shared.empty()) {
    return Status::InvalidArgument("no shared attributes between " +
                                   left.schema().name() + " and " +
                                   right.schema().name());
  }
  // Output schema: left attributes + right attributes not shared.
  std::vector<bool> right_shared(right.schema().arity(), false);
  for (const AttributePair& p : shared) right_shared[p.right] = true;
  std::vector<Attribute> attrs = left.schema().attributes();
  for (size_t j = 0; j < right.schema().arity(); ++j) {
    if (!right_shared[j]) attrs.push_back(right.schema().attributes()[j]);
  }
  Relation out(RelationSchema(
      left.schema().name() + "_natjoin_" + right.schema().name(),
      std::move(attrs)));
  HashJoin(left, right, shared, [&](size_t l, size_t r) {
    Tuple row = left.row(l);
    for (size_t j = 0; j < right.schema().arity(); ++j) {
      if (!right_shared[j]) row.push_back(right.row(r)[j]);
    }
    out.InsertUnchecked(std::move(row));
  });
  return out;
}

Result<Relation> Semijoin(const Relation& left, const Relation& right,
                          const std::vector<AttributePair>& on) {
  QLEARN_RETURN_IF_ERROR(ValidatePairs(left, right, on));
  Relation out(RelationSchema(left.schema().name() + "_semijoin",
                              left.schema().attributes()));
  std::vector<bool> emitted(left.size(), false);
  HashJoin(left, right, on, [&](size_t l, size_t r) {
    (void)r;
    emitted[l] = true;
  });
  for (size_t i = 0; i < left.size(); ++i) {
    if (emitted[i]) out.InsertUnchecked(left.row(i));
  }
  return out;
}

Result<Relation> Project(const Relation& input,
                         const std::vector<size_t>& columns) {
  std::vector<Attribute> attrs;
  for (size_t c : columns) {
    if (c >= input.schema().arity()) {
      return Status::OutOfRange("projection column out of range");
    }
    attrs.push_back(input.schema().attributes()[c]);
  }
  Relation out(RelationSchema(input.schema().name() + "_proj",
                              std::move(attrs)));
  for (const Tuple& row : input.rows()) {
    Tuple projected;
    projected.reserve(columns.size());
    for (size_t c : columns) projected.push_back(row[c]);
    out.InsertUnchecked(std::move(projected));
  }
  return out;
}

Relation SelectWhere(const Relation& input,
                     const std::function<bool(const Tuple&)>& predicate) {
  Relation out(RelationSchema(input.schema().name() + "_sel",
                              input.schema().attributes()));
  for (const Tuple& row : input.rows()) {
    if (predicate(row)) out.InsertUnchecked(row);
  }
  return out;
}

}  // namespace relational
}  // namespace qlearn
