#include "relational/generator.h"

#include <algorithm>
#include <string>

#include "common/rng.h"

namespace qlearn {
namespace relational {

namespace {

RelationSchema IntSchema(const std::string& name, const std::string& prefix,
                         int arity) {
  std::vector<Attribute> attrs;
  for (int i = 0; i < arity; ++i) {
    std::string attr = prefix;
    attr += std::to_string(i);
    attrs.push_back(Attribute{attr, ValueType::kInt});
  }
  return RelationSchema(name, std::move(attrs));
}

}  // namespace

JoinInstance GenerateJoinInstance(const JoinInstanceOptions& options,
                                  int goal_pairs) {
  common::Rng rng(options.seed);
  JoinInstance instance;
  instance.left = Relation(IntSchema("R", "a", options.left_arity));
  instance.right = Relation(IntSchema("S", "b", options.right_arity));

  auto random_row = [&](int arity) {
    Tuple row;
    row.reserve(static_cast<size_t>(arity));
    for (int i = 0; i < arity; ++i) {
      const int64_t v = static_cast<int64_t>(
          rng.Uniform(static_cast<uint64_t>(options.domain_size)));
      row.emplace_back(v);
    }
    return row;
  };

  for (int i = 0; i < options.left_rows; ++i) {
    instance.left.InsertUnchecked(random_row(options.left_arity));
  }
  for (int i = 0; i < options.right_rows; ++i) {
    instance.right.InsertUnchecked(random_row(options.right_arity));
  }

  // Hidden goal: a random subset of compatible pairs.
  std::vector<AttributePair> universe =
      CompatiblePairs(instance.left.schema(), instance.right.schema());
  rng.Shuffle(&universe);
  const int k = std::max(
      1, std::min<int>(goal_pairs, static_cast<int>(universe.size())));
  instance.goal.assign(universe.begin(), universe.begin() + k);
  std::sort(instance.goal.begin(), instance.goal.end());

  // Plant matches: copy goal-attribute values from random left rows into a
  // fraction of right rows so the goal predicate has positive pairs.
  Relation planted(instance.right.schema());
  for (size_t j = 0; j < instance.right.size(); ++j) {
    Tuple row = instance.right.row(j);
    if (rng.Bernoulli(options.planted_match_fraction) &&
        !instance.left.empty()) {
      const Tuple& donor =
          instance.left.row(rng.Index(instance.left.size()));
      for (const AttributePair& p : instance.goal) {
        row[p.right] = donor[p.left];
      }
    }
    planted.InsertUnchecked(std::move(row));
  }
  instance.right = std::move(planted);
  return instance;
}

Database TinyCompanyDatabase() {
  Database db;

  Relation departments(RelationSchema(
      "departments", {Attribute{"dept_id", ValueType::kInt},
                      Attribute{"dept_name", ValueType::kString},
                      Attribute{"city", ValueType::kString}}));
  const struct {
    int64_t id;
    const char* name;
    const char* city;
  } kDepartments[] = {
      {1, "engineering", "Lille"},
      {2, "research", "Paris"},
      {3, "sales", "Lyon"},
  };
  for (const auto& d : kDepartments) {
    departments.InsertUnchecked(
        {Value(d.id), Value(std::string(d.name)), Value(std::string(d.city))});
  }

  Relation employees(RelationSchema(
      "employees", {Attribute{"emp_id", ValueType::kInt},
                    Attribute{"emp_name", ValueType::kString},
                    Attribute{"dept_id", ValueType::kInt},
                    Attribute{"salary", ValueType::kInt}}));
  const struct {
    int64_t id;
    const char* name;
    int64_t dept;
    int64_t salary;
  } kEmployees[] = {
      {100, "ada", 1, 95000},   {101, "grace", 1, 98000},
      {102, "alan", 2, 91000},  {103, "edsger", 2, 93000},
      {104, "barbara", 3, 88000}, {105, "donald", 1, 99000},
  };
  for (const auto& e : kEmployees) {
    employees.InsertUnchecked({Value(e.id), Value(std::string(e.name)),
                               Value(e.dept), Value(e.salary)});
  }

  Relation projects(RelationSchema(
      "projects", {Attribute{"proj_id", ValueType::kInt},
                   Attribute{"proj_name", ValueType::kString},
                   Attribute{"dept_id", ValueType::kInt}}));
  const struct {
    int64_t id;
    const char* name;
    int64_t dept;
  } kProjects[] = {
      {500, "query-learning", 2},
      {501, "storage-engine", 1},
      {502, "benchmarks", 1},
  };
  for (const auto& p : kProjects) {
    projects.InsertUnchecked(
        {Value(p.id), Value(std::string(p.name)), Value(p.dept)});
  }

  (void)db.AddRelation(std::move(departments));
  (void)db.AddRelation(std::move(employees));
  (void)db.AddRelation(std::move(projects));
  return db;
}

std::vector<Relation> TinyStoreChainRelations() {
  Relation customers(RelationSchema("customers",
                                    {Attribute{"cid", ValueType::kInt},
                                     Attribute{"city", ValueType::kInt}}));
  customers.InsertUnchecked({Value(int64_t{1}), Value(int64_t{10})});
  customers.InsertUnchecked({Value(int64_t{2}), Value(int64_t{20})});
  customers.InsertUnchecked({Value(int64_t{3}), Value(int64_t{10})});

  Relation orders(RelationSchema("orders",
                                 {Attribute{"cid", ValueType::kInt},
                                  Attribute{"pid", ValueType::kInt}}));
  orders.InsertUnchecked({Value(int64_t{1}), Value(int64_t{7})});
  orders.InsertUnchecked({Value(int64_t{2}), Value(int64_t{8})});
  orders.InsertUnchecked({Value(int64_t{3}), Value(int64_t{7})});
  orders.InsertUnchecked({Value(int64_t{9}), Value(int64_t{9})});

  Relation products(RelationSchema("products",
                                   {Attribute{"pid", ValueType::kInt},
                                    Attribute{"cat", ValueType::kInt}}));
  products.InsertUnchecked({Value(int64_t{7}), Value(int64_t{100})});
  products.InsertUnchecked({Value(int64_t{8}), Value(int64_t{200})});
  products.InsertUnchecked({Value(int64_t{9}), Value(int64_t{100})});

  std::vector<Relation> out;
  out.reserve(3);
  out.push_back(std::move(customers));
  out.push_back(std::move(orders));
  out.push_back(std::move(products));
  return out;
}

ChainInstance GenerateChainInstance(const ChainInstanceOptions& options) {
  ChainInstance out;
  common::Rng rng(options.seed);
  out.relations.reserve(static_cast<size_t>(options.num_relations));
  for (int i = 0; i < options.num_relations; ++i) {
    RelationSchema schema("r" + std::to_string(i),
                          {{"key", ValueType::kInt},
                           {"fk", ValueType::kInt},
                           {"noise", ValueType::kInt}});
    Relation rel(schema);
    for (int r = 0; r < options.rows; ++r) {
      rel.InsertUnchecked(
          {Value(static_cast<int64_t>(r)),
           Value(static_cast<int64_t>(
               rng.Uniform(static_cast<uint64_t>(options.rows)))),
           Value(static_cast<int64_t>(rng.Uniform(3)))});
    }
    out.relations.push_back(std::move(rel));
  }
  for (const Relation& r : out.relations) out.pointers.push_back(&r);
  return out;
}

}  // namespace relational
}  // namespace qlearn
