// A catalog of named relations.
#ifndef QLEARN_RELATIONAL_DATABASE_H_
#define QLEARN_RELATIONAL_DATABASE_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/relation.h"

namespace qlearn {
namespace relational {

/// Owns a set of relations addressed by name.
class Database {
 public:
  /// Adds `relation`; fails if the name is taken.
  common::Status AddRelation(Relation relation);

  /// Looks up by name (nullptr when absent).
  const Relation* Find(const std::string& name) const;
  Relation* FindMutable(const std::string& name);

  /// Sorted relation names.
  std::vector<std::string> RelationNames() const;

  size_t size() const { return relations_.size(); }

 private:
  std::map<std::string, Relation> relations_;
};

}  // namespace relational
}  // namespace qlearn

#endif  // QLEARN_RELATIONAL_DATABASE_H_
