#include "relational/relation.h"

namespace qlearn {
namespace relational {

using common::Status;

std::optional<size_t> RelationSchema::AttributeIndex(
    const std::string& name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return std::nullopt;
}

std::string RelationSchema::ToString() const {
  std::string out = name_ + "(";
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (i > 0) out += ", ";
    out += attributes_[i].name;
    out += ":";
    out += ValueTypeName(attributes_[i].type);
  }
  out += ")";
  return out;
}

Status Relation::Insert(Tuple row) {
  if (row.size() != schema_.arity()) {
    return Status::InvalidArgument(
        "arity mismatch inserting into " + schema_.name() + ": got " +
        std::to_string(row.size()) + ", want " +
        std::to_string(schema_.arity()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (!row[i].is_null() && row[i].type() != schema_.attributes()[i].type) {
      return Status::InvalidArgument(
          "type mismatch in " + schema_.name() + "." +
          schema_.attributes()[i].name + ": got " +
          ValueTypeName(row[i].type()) + ", want " +
          ValueTypeName(schema_.attributes()[i].type));
    }
  }
  indexes_.clear();  // invalidated by the write
  rows_.push_back(std::move(row));
  return Status::OK();
}

const std::unordered_multimap<size_t, size_t>& Relation::IndexOn(
    size_t col) const {
  auto it = indexes_.find(col);
  if (it != indexes_.end()) return it->second;
  auto& index = indexes_[col];
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (!rows_[i][col].is_null()) {
      index.emplace(rows_[i][col].Hash(), i);
    }
  }
  return index;
}

std::string Relation::ToString() const {
  std::string out = schema_.ToString() + " [" + std::to_string(size()) +
                    " rows]\n";
  for (const Tuple& row : rows_) {
    out += "  (";
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ", ";
      out += row[i].ToString();
    }
    out += ")\n";
  }
  return out;
}

}  // namespace relational
}  // namespace qlearn
