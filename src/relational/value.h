// Typed values of the relational model: NULL, 64-bit integers, doubles, and
// strings. Equality follows SQL-flavored semantics: NULL equals nothing
// (including NULL), which the join learners rely on.
#ifndef QLEARN_RELATIONAL_VALUE_H_
#define QLEARN_RELATIONAL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace qlearn {
namespace relational {

/// Type tag of a Value / attribute.
enum class ValueType : uint8_t { kNull, kInt, kDouble, kString };

/// "null", "int", "double" or "string".
const char* ValueTypeName(ValueType type);

/// A dynamically-typed cell value.
class Value {
 public:
  Value() : data_(std::monostate{}) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  static Value Null() { return Value(); }

  ValueType type() const {
    switch (data_.index()) {
      case 0:
        return ValueType::kNull;
      case 1:
        return ValueType::kInt;
      case 2:
        return ValueType::kDouble;
      default:
        return ValueType::kString;
    }
  }

  bool is_null() const { return type() == ValueType::kNull; }
  int64_t AsInt() const { return std::get<int64_t>(data_); }
  double AsDouble() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }

  /// SQL-style equality: false whenever either side is NULL.
  bool EqualsSql(const Value& other) const {
    if (is_null() || other.is_null()) return false;
    return data_ == other.data_;
  }

  /// Structural equality (NULL == NULL); used by containers and tests.
  bool operator==(const Value& other) const { return data_ == other.data_; }
  bool operator<(const Value& other) const { return data_ < other.data_; }

  /// Hash for join tables; NULLs hash equal but never join (EqualsSql).
  size_t Hash() const;

  /// Rendering: NULL, 42, 3.5, 'text'.
  std::string ToString() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> data_;
};

}  // namespace relational
}  // namespace qlearn

#endif  // QLEARN_RELATIONAL_VALUE_H_
