#include "relational/value.h"

#include <functional>

#include "common/strings.h"

namespace qlearn {
namespace relational {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9ddfea08eb382d69ULL;
    case ValueType::kInt:
      return std::hash<int64_t>{}(AsInt());
    case ValueType::kDouble:
      return std::hash<double>{}(AsDouble());
    case ValueType::kString:
      return std::hash<std::string>{}(AsString());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return std::to_string(AsInt());
    case ValueType::kDouble:
      return common::FormatDouble(AsDouble(), 3);
    case ValueType::kString:
      return "'" + AsString() + "'";
  }
  return "?";
}

}  // namespace relational
}  // namespace qlearn
