#include "relational/database.h"

namespace qlearn {
namespace relational {

common::Status Database::AddRelation(Relation relation) {
  const std::string name = relation.schema().name();
  if (relations_.count(name)) {
    return common::Status::InvalidArgument("relation '" + name +
                                           "' already exists");
  }
  relations_.emplace(name, std::move(relation));
  return common::Status::OK();
}

const Relation* Database::Find(const std::string& name) const {
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : &it->second;
}

Relation* Database::FindMutable(const std::string& name) {
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : &it->second;
}

std::vector<std::string> Database::RelationNames() const {
  std::vector<std::string> out;
  out.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) {
    (void)rel;
    out.push_back(name);
  }
  return out;
}

}  // namespace relational
}  // namespace qlearn
