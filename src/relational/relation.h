// Named relations: a schema (attribute names and types) plus a row store,
// with optional per-attribute hash indexes used by the join operators.
#ifndef QLEARN_RELATIONAL_RELATION_H_
#define QLEARN_RELATIONAL_RELATION_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "relational/value.h"

namespace qlearn {
namespace relational {

/// One attribute of a relation schema.
struct Attribute {
  std::string name;
  ValueType type;
};

/// The schema (name + attributes) of a relation.
class RelationSchema {
 public:
  RelationSchema() = default;
  RelationSchema(std::string name, std::vector<Attribute> attributes)
      : name_(std::move(name)), attributes_(std::move(attributes)) {}

  const std::string& name() const { return name_; }
  const std::vector<Attribute>& attributes() const { return attributes_; }
  size_t arity() const { return attributes_.size(); }

  /// Index of the attribute called `name`, if any.
  std::optional<size_t> AttributeIndex(const std::string& name) const;

  /// "name(attr1:type1, ...)".
  std::string ToString() const;

 private:
  std::string name_;
  std::vector<Attribute> attributes_;
};

/// A tuple: one Value per schema attribute.
using Tuple = std::vector<Value>;

/// A materialized relation instance.
class Relation {
 public:
  Relation() = default;
  explicit Relation(RelationSchema schema) : schema_(std::move(schema)) {}

  const RelationSchema& schema() const { return schema_; }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }
  const Tuple& row(size_t i) const { return rows_[i]; }
  const std::vector<Tuple>& rows() const { return rows_; }

  /// Appends a row after checking arity and types (NULL fits any type).
  common::Status Insert(Tuple row);

  /// Appends without checking (generator fast path; the caller guarantees
  /// schema conformance).
  void InsertUnchecked(Tuple row) { rows_.push_back(std::move(row)); }

  /// Builds (or returns a cached) hash index on attribute `col`:
  /// value-hash -> row indexes. NULLs are not indexed.
  const std::unordered_multimap<size_t, size_t>& IndexOn(size_t col) const;

  /// Multi-line rendering with a header (for examples and debugging).
  std::string ToString() const;

 private:
  RelationSchema schema_;
  std::vector<Tuple> rows_;
  mutable std::unordered_map<size_t, std::unordered_multimap<size_t, size_t>>
      indexes_;
};

}  // namespace relational
}  // namespace qlearn

#endif  // QLEARN_RELATIONAL_RELATION_H_
