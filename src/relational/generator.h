// Synthetic relational instances for the join-learning experiments (E5, E6)
// and a small hand-written database for the examples.
#ifndef QLEARN_RELATIONAL_GENERATOR_H_
#define QLEARN_RELATIONAL_GENERATOR_H_

#include <cstdint>

#include "relational/database.h"
#include "relational/operators.h"
#include "relational/relation.h"

namespace qlearn {
namespace relational {

/// Parameters of the two-relation workload generator. Values are integers
/// from [0, domain_size); small domains create many accidental agreements,
/// which is what makes learning non-trivial.
struct JoinInstanceOptions {
  uint64_t seed = 1;
  int left_rows = 50;
  int right_rows = 50;
  int left_arity = 4;
  int right_arity = 4;
  int domain_size = 8;
  /// Fraction of right rows rewritten to match a random left row on the
  /// goal pairs (guarantees positives exist for the hidden goal).
  double planted_match_fraction = 0.3;
};

/// A generated instance: relations R(a0..), S(b0..) and the hidden goal
/// join predicate over CompatiblePairs(R, S).
struct JoinInstance {
  Relation left;
  Relation right;
  std::vector<AttributePair> goal;
};

/// Generates an instance in which `goal_pairs` randomly chosen compatible
/// attribute pairs form the hidden goal predicate.
JoinInstance GenerateJoinInstance(const JoinInstanceOptions& options,
                                  int goal_pairs);

/// A small employees/departments/projects database used by the examples and
/// the cross-model exchange scenarios (Figure 1, scenario 1).
Database TinyCompanyDatabase();

/// The customers/orders/products foreign-key trio shared by the "chain"
/// demo scenario and the chain-learner tests. FK paths under the natural
/// (name-equal) goal: rows (0,0,0), (1,1,1), (2,2,0); order (9,9) dangles.
std::vector<Relation> TinyStoreChainRelations();

/// Parameters of the chain workload generator (E12): `num_relations`
/// relations r0..r_{k-1}, each with FK-style columns r_i(key, fk, noise)
/// where fk is meant to join the next relation's key.
struct ChainInstanceOptions {
  uint64_t seed = 1;
  int num_relations = 3;
  int rows = 8;
};

/// A generated chain instance. `pointers` aliases `relations` in order (the
/// shape JoinChain::Create takes); both stay valid across moves.
struct ChainInstance {
  std::vector<Relation> relations;
  std::vector<const Relation*> pointers;
};

ChainInstance GenerateChainInstance(const ChainInstanceOptions& options);

}  // namespace relational
}  // namespace qlearn

#endif  // QLEARN_RELATIONAL_GENERATOR_H_
