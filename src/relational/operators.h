// Relational operators: equi-join (hash join), natural join, semijoin,
// projection and selection. These are both the execution substrate of the
// learned queries and the baselines of the Section-3 experiments.
#ifndef QLEARN_RELATIONAL_OPERATORS_H_
#define QLEARN_RELATIONAL_OPERATORS_H_

#include <functional>
#include <utility>
#include <vector>

#include "common/status.h"
#include "relational/relation.h"

namespace qlearn {
namespace relational {

/// An equality predicate between attribute `left` of the left relation and
/// attribute `right` of the right relation.
struct AttributePair {
  size_t left;
  size_t right;

  bool operator==(const AttributePair& o) const {
    return left == o.left && right == o.right;
  }
  bool operator<(const AttributePair& o) const {
    return left != o.left ? left < o.left : right < o.right;
  }
};

/// True iff rows `r`, `s` agree (SQL equality) on every pair in `on`.
bool PairsSatisfied(const Tuple& r, const Tuple& s,
                    const std::vector<AttributePair>& on);

/// The set of type-compatible attribute pairs on which `r`,`s` agree.
std::vector<AttributePair> AgreeSet(const Tuple& r, const Tuple& s,
                                    const std::vector<AttributePair>& universe);

/// All type-compatible attribute pairs between two schemas.
std::vector<AttributePair> CompatiblePairs(const RelationSchema& left,
                                           const RelationSchema& right);

/// Pairs of attributes sharing the same name and type (natural-join pairs).
std::vector<AttributePair> SharedAttributePairs(const RelationSchema& left,
                                                const RelationSchema& right);

/// Equi-join: all concatenated rows satisfying every pair in `on`.
/// Fails when `on` is empty or references out-of-range/ill-typed attributes.
common::Result<Relation> EquiJoin(const Relation& left, const Relation& right,
                                  const std::vector<AttributePair>& on);

/// Natural join: equi-join on all shared attribute names; right-side copies
/// of the shared attributes are projected away. Fails when no attribute is
/// shared.
common::Result<Relation> NaturalJoin(const Relation& left,
                                     const Relation& right);

/// Semijoin left ⋉ right: rows of `left` with at least one `on`-match.
common::Result<Relation> Semijoin(const Relation& left, const Relation& right,
                                  const std::vector<AttributePair>& on);

/// Projection onto the given attribute indexes (in order, duplicates kept).
common::Result<Relation> Project(const Relation& input,
                                 const std::vector<size_t>& columns);

/// Selection by arbitrary predicate.
Relation SelectWhere(const Relation& input,
                     const std::function<bool(const Tuple&)>& predicate);

}  // namespace relational
}  // namespace qlearn

#endif  // QLEARN_RELATIONAL_OPERATORS_H_
