#include "graph/graph.h"

#include <set>

namespace qlearn {
namespace graph {

VertexId Graph::AddVertex(std::string name) {
  const VertexId id = static_cast<VertexId>(names_.size());
  names_.push_back(std::move(name));
  out_.emplace_back();
  return id;
}

EdgeId Graph::AddEdge(VertexId src, VertexId dst, common::SymbolId label,
                      double weight) {
  const EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{src, dst, label, weight});
  out_[src].push_back(id);
  return id;
}

void Graph::AddBidirectional(VertexId a, VertexId b, common::SymbolId label,
                             double weight) {
  AddEdge(a, b, label, weight);
  AddEdge(b, a, label, weight);
}

std::vector<common::SymbolId> Graph::EdgeAlphabet() const {
  std::set<common::SymbolId> labels;
  for (const Edge& e : edges_) labels.insert(e.label);
  return std::vector<common::SymbolId>(labels.begin(), labels.end());
}

std::vector<common::SymbolId> PathWord(const Graph& graph, const Path& path) {
  std::vector<common::SymbolId> word;
  word.reserve(path.edges.size());
  for (EdgeId e : path.edges) word.push_back(graph.edge(e).label);
  return word;
}

double PathWeight(const Graph& graph, const Path& path) {
  double total = 0;
  for (EdgeId e : path.edges) total += graph.edge(e).weight;
  return total;
}

VertexId PathEnd(const Graph& graph, const Path& path) {
  return path.edges.empty() ? path.start : graph.edge(path.edges.back()).dst;
}

std::string PathToString(const Graph& graph, const Path& path,
                         const common::Interner& interner) {
  std::string out = graph.VertexName(path.start);
  for (EdgeId e : path.edges) {
    out += " -" + interner.Name(graph.edge(e).label) + "-> ";
    out += graph.VertexName(graph.edge(e).dst);
  }
  return out;
}

}  // namespace graph
}  // namespace qlearn
