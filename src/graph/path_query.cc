#include "graph/path_query.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <queue>

namespace qlearn {
namespace graph {

using automata::StateId;

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

PathQueryEvaluator::PathQueryEvaluator(const PathQuery& query,
                                       const Graph& graph)
    : graph_(graph),
      nfa_(automata::Nfa::FromRegex(*query.regex)),
      max_weight_(query.max_weight) {}

std::vector<std::vector<double>> PathQueryEvaluator::Explore(
    VertexId src, std::vector<std::vector<EdgeId>>* pred_edge,
    std::vector<std::vector<ProductState>>* pred_state) const {
  const size_t nv = graph_.NumVertices();
  const size_t ns = nfa_.NumStates();
  std::vector<std::vector<double>> best(nv, std::vector<double>(ns, kInf));
  if (pred_edge != nullptr) {
    pred_edge->assign(nv, std::vector<EdgeId>(ns, static_cast<EdgeId>(-1)));
    pred_state->assign(
        nv, std::vector<ProductState>(ns, ProductState{kInvalidVertex, 0}));
  }

  using QueueEntry = std::pair<double, std::pair<VertexId, StateId>>;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue;
  best[src][nfa_.start()] = 0;
  queue.push({0, {src, nfa_.start()}});
  while (!queue.empty()) {
    const auto [dist, vs] = queue.top();
    queue.pop();
    const auto [v, s] = vs;
    if (dist > best[v][s]) continue;
    if (max_weight_.has_value() && dist > *max_weight_) continue;
    for (EdgeId eid : graph_.OutEdges(v)) {
      const Edge& e = graph_.edge(eid);
      for (const auto& [label, target] : nfa_.Transitions(s)) {
        if (label != e.label) continue;
        const double next = dist + e.weight;
        if (next < best[e.dst][target]) {
          best[e.dst][target] = next;
          if (pred_edge != nullptr) {
            (*pred_edge)[e.dst][target] = eid;
            (*pred_state)[e.dst][target] = ProductState{v, s};
          }
          queue.push({next, {e.dst, target}});
        }
      }
    }
  }
  return best;
}

std::vector<VertexId> PathQueryEvaluator::EvalFrom(VertexId src) const {
  const auto best = Explore(src, nullptr, nullptr);
  std::vector<VertexId> out;
  for (VertexId v = 0; v < graph_.NumVertices(); ++v) {
    for (StateId s = 0; s < nfa_.NumStates(); ++s) {
      if (!nfa_.IsAccepting(s) || best[v][s] == kInf) continue;
      if (max_weight_.has_value() && best[v][s] > *max_weight_) continue;
      out.push_back(v);
      break;
    }
  }
  return out;
}

bool PathQueryEvaluator::Matches(VertexId src, VertexId dst) const {
  const auto best = Explore(src, nullptr, nullptr);
  for (StateId s = 0; s < nfa_.NumStates(); ++s) {
    if (!nfa_.IsAccepting(s) || best[dst][s] == kInf) continue;
    if (max_weight_.has_value() && best[dst][s] > *max_weight_) continue;
    return true;
  }
  return false;
}

std::vector<std::pair<VertexId, VertexId>> PathQueryEvaluator::EvalAllPairs()
    const {
  std::vector<std::pair<VertexId, VertexId>> out;
  for (VertexId src = 0; src < graph_.NumVertices(); ++src) {
    for (VertexId dst : EvalFrom(src)) out.emplace_back(src, dst);
  }
  return out;
}

std::optional<Path> PathQueryEvaluator::Witness(VertexId src,
                                                VertexId dst) const {
  std::vector<std::vector<EdgeId>> pred_edge;
  std::vector<std::vector<ProductState>> pred_state;
  const auto best = Explore(src, &pred_edge, &pred_state);
  StateId accept = nfa_.NumStates();
  double best_weight = kInf;
  for (StateId s = 0; s < nfa_.NumStates(); ++s) {
    if (!nfa_.IsAccepting(s) || best[dst][s] == kInf) continue;
    if (max_weight_.has_value() && best[dst][s] > *max_weight_) continue;
    if (best[dst][s] < best_weight) {
      best_weight = best[dst][s];
      accept = s;
    }
  }
  if (accept == nfa_.NumStates()) return std::nullopt;

  Path path;
  path.start = src;
  VertexId v = dst;
  StateId s = accept;
  while (!(v == src && s == nfa_.start())) {
    const EdgeId e = pred_edge[v][s];
    if (e == static_cast<EdgeId>(-1)) break;  // src==dst accepting epsilon
    path.edges.push_back(e);
    const ProductState ps = pred_state[v][s];
    v = ps.vertex;
    s = ps.state;
  }
  std::reverse(path.edges.begin(), path.edges.end());
  return path;
}

bool PathQueryEvaluator::MatchesPath(const Path& path) const {
  if (max_weight_.has_value() && PathWeight(graph_, path) > *max_weight_) {
    return false;
  }
  return nfa_.Accepts(PathWord(graph_, path));
}

std::vector<Path> EnumeratePaths(const Graph& graph, size_t max_edges,
                                 size_t limit) {
  std::vector<Path> out;
  std::vector<bool> visited(graph.NumVertices(), false);
  Path current;
  std::vector<EdgeId> stack_edges;

  std::function<void(VertexId)> dfs = [&](VertexId v) {
    if (out.size() >= limit) return;
    if (!current.edges.empty()) out.push_back(current);
    if (current.edges.size() >= max_edges) return;
    for (EdgeId eid : graph.OutEdges(v)) {
      const Edge& e = graph.edge(eid);
      if (visited[e.dst]) continue;
      visited[e.dst] = true;
      current.edges.push_back(eid);
      dfs(e.dst);
      current.edges.pop_back();
      visited[e.dst] = false;
      if (out.size() >= limit) return;
    }
  };

  for (VertexId v = 0; v < graph.NumVertices() && out.size() < limit; ++v) {
    current.start = v;
    current.edges.clear();
    std::fill(visited.begin(), visited.end(), false);
    visited[v] = true;
    dfs(v);
  }
  return out;
}

}  // namespace graph
}  // namespace qlearn
