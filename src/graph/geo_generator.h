// Geographic road-network generator: the paper's motivating graph use case
// (cities as vertices; edges carrying road type and distance). Grid-shaped
// local roads plus sparse long-distance highways and a few ferries.
#ifndef QLEARN_GRAPH_GEO_GENERATOR_H_
#define QLEARN_GRAPH_GEO_GENERATOR_H_

#include <cstdint>

#include "common/interner.h"
#include "graph/graph.h"

namespace qlearn {
namespace graph {

struct GeoOptions {
  uint64_t seed = 7;
  /// Cities form a grid_width x grid_height grid.
  int grid_width = 6;
  int grid_height = 5;
  /// Fraction of grid links that are highways instead of local roads.
  double highway_fraction = 0.25;
  /// Number of extra long-distance highway shortcuts.
  int num_shortcuts = 4;
  /// Number of ferry links (distinct label, heavy weight).
  int num_ferries = 2;
};

/// Generates a road network; edge labels "local", "highway", "ferry" are
/// interned into `interner`. All roads are bidirectional.
Graph GenerateGeoGraph(const GeoOptions& options, common::Interner* interner);

}  // namespace graph
}  // namespace qlearn

#endif  // QLEARN_GRAPH_GEO_GENERATOR_H_
