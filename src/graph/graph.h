// Directed labeled multigraphs: the RDF-flavored substrate of Section 3's
// graph-query learning. Nodes carry a name (e.g. a city), edges carry an
// interned label (e.g. the road type) and a numeric weight (e.g. distance).
#ifndef QLEARN_GRAPH_GRAPH_H_
#define QLEARN_GRAPH_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/interner.h"

namespace qlearn {
namespace graph {

/// Node index within a Graph.
using VertexId = uint32_t;

/// Edge index within a Graph.
using EdgeId = uint32_t;

inline constexpr VertexId kInvalidVertex = static_cast<VertexId>(-1);

/// One directed edge.
struct Edge {
  VertexId src;
  VertexId dst;
  common::SymbolId label;
  double weight;
};

/// A directed labeled multigraph with adjacency lists.
class Graph {
 public:
  /// Adds a vertex with a display name; returns its id.
  VertexId AddVertex(std::string name);

  /// Adds a directed edge; returns its id.
  EdgeId AddEdge(VertexId src, VertexId dst, common::SymbolId label,
                 double weight = 1.0);

  /// Convenience: adds edges in both directions (roads are two-way).
  void AddBidirectional(VertexId a, VertexId b, common::SymbolId label,
                        double weight = 1.0);

  size_t NumVertices() const { return names_.size(); }
  size_t NumEdges() const { return edges_.size(); }

  const std::string& VertexName(VertexId v) const { return names_[v]; }
  const Edge& edge(EdgeId e) const { return edges_[e]; }

  /// Outgoing edge ids of `v`.
  const std::vector<EdgeId>& OutEdges(VertexId v) const { return out_[v]; }

  /// Distinct edge labels used, sorted.
  std::vector<common::SymbolId> EdgeAlphabet() const;

 private:
  std::vector<std::string> names_;
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> out_;
};

/// A concrete path: consecutive edges (edge i's dst == edge i+1's src).
struct Path {
  VertexId start = kInvalidVertex;
  std::vector<EdgeId> edges;

  bool empty() const { return edges.empty(); }
};

/// The label word of a path.
std::vector<common::SymbolId> PathWord(const Graph& graph, const Path& path);

/// Total weight of a path.
double PathWeight(const Graph& graph, const Path& path);

/// End vertex of a path (start for empty paths).
VertexId PathEnd(const Graph& graph, const Path& path);

/// Renders "A -l1-> B -l2-> C".
std::string PathToString(const Graph& graph, const Path& path,
                         const common::Interner& interner);

}  // namespace graph
}  // namespace qlearn

#endif  // QLEARN_GRAPH_GRAPH_H_
