// Path queries over labeled graphs: a regular expression over edge labels
// plus an optional total-weight bound — exactly the restrictions of the
// paper's geographical use case (road type, total distance). Evaluation runs
// a BFS/Dijkstra over the product of the graph with the query's Glushkov
// automaton.
#ifndef QLEARN_GRAPH_PATH_QUERY_H_
#define QLEARN_GRAPH_PATH_QUERY_H_

#include <optional>
#include <utility>
#include <vector>

#include "automata/nfa.h"
#include "automata/regex.h"
#include "graph/graph.h"

namespace qlearn {
namespace graph {

/// A regular path query with an optional weight bound.
struct PathQuery {
  automata::RegexPtr regex;
  /// When set, a pair matches only via a path of total weight <= bound.
  std::optional<double> max_weight;
};

/// Evaluates path queries on one graph. Construct once per (query, graph).
class PathQueryEvaluator {
 public:
  PathQueryEvaluator(const PathQuery& query, const Graph& graph);

  /// Vertices reachable from `src` via a matching path.
  std::vector<VertexId> EvalFrom(VertexId src) const;

  /// True iff some matching path connects `src` to `dst`.
  bool Matches(VertexId src, VertexId dst) const;

  /// All matching (src, dst) pairs (sorted).
  std::vector<std::pair<VertexId, VertexId>> EvalAllPairs() const;

  /// A minimum-weight matching path from src to dst, if any.
  std::optional<Path> Witness(VertexId src, VertexId dst) const;

  /// True iff the label word of `path` is in the regex language and the
  /// path respects the weight bound.
  bool MatchesPath(const Path& path) const;

 private:
  struct ProductState {
    VertexId vertex;
    automata::StateId state;
  };
  /// Runs Dijkstra on the product from (src, start); returns per-(vertex,
  /// state) best weights, and predecessor edges when `pred` is non-null.
  std::vector<std::vector<double>> Explore(
      VertexId src, std::vector<std::vector<EdgeId>>* pred_edge,
      std::vector<std::vector<ProductState>>* pred_state) const;

  const Graph& graph_;
  automata::Nfa nfa_;
  std::optional<double> max_weight_;
};

/// Enumerates simple-ish candidate paths from each vertex: all paths of at
/// most `max_edges` edges without repeated vertices, up to `limit` total.
/// Used to build the interactive sessions' question pools.
std::vector<Path> EnumeratePaths(const Graph& graph, size_t max_edges,
                                 size_t limit);

}  // namespace graph
}  // namespace qlearn

#endif  // QLEARN_GRAPH_PATH_QUERY_H_
