#include "graph/geo_generator.h"

#include <string>

#include "common/rng.h"

namespace qlearn {
namespace graph {

Graph GenerateGeoGraph(const GeoOptions& options,
                       common::Interner* interner) {
  common::Rng rng(options.seed);
  Graph g;
  const common::SymbolId local = interner->Intern("local");
  const common::SymbolId highway = interner->Intern("highway");
  const common::SymbolId ferry = interner->Intern("ferry");

  const int w = options.grid_width;
  const int h = options.grid_height;
  std::vector<VertexId> grid(static_cast<size_t>(w) * h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      std::string name = "city_";
      name += std::to_string(x);
      name += "_";
      name += std::to_string(y);
      grid[static_cast<size_t>(y) * w + x] = g.AddVertex(std::move(name));
    }
  }
  auto at = [&](int x, int y) { return grid[static_cast<size_t>(y) * w + x]; };

  // Grid links: mostly local roads, some highways.
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      if (x + 1 < w) {
        const bool hw = rng.Bernoulli(options.highway_fraction);
        g.AddBidirectional(at(x, y), at(x + 1, y), hw ? highway : local,
                           hw ? 8 + rng.UniformDouble() * 4
                              : 3 + rng.UniformDouble() * 3);
      }
      if (y + 1 < h) {
        const bool hw = rng.Bernoulli(options.highway_fraction);
        g.AddBidirectional(at(x, y), at(x, y + 1), hw ? highway : local,
                           hw ? 8 + rng.UniformDouble() * 4
                              : 3 + rng.UniformDouble() * 3);
      }
    }
  }

  // Long-distance highway shortcuts between random distinct cities.
  for (int i = 0; i < options.num_shortcuts; ++i) {
    const VertexId a = grid[rng.Index(grid.size())];
    const VertexId b = grid[rng.Index(grid.size())];
    if (a == b) continue;
    g.AddBidirectional(a, b, highway, 15 + rng.UniformDouble() * 10);
  }

  // Ferries.
  for (int i = 0; i < options.num_ferries; ++i) {
    const VertexId a = grid[rng.Index(grid.size())];
    const VertexId b = grid[rng.Index(grid.size())];
    if (a == b) continue;
    g.AddBidirectional(a, b, ferry, 20 + rng.UniformDouble() * 10);
  }
  return g;
}

}  // namespace graph
}  // namespace qlearn
