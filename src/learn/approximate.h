// Approximate (PAC-style) twig learning for the intractable positive+negative
// setting: when no consistent query is found cheaply, return the hypothesis
// minimizing empirical error — the relaxation the paper proposes ("the
// learned query may select some negative examples and omit some positive
// ones").
#ifndef QLEARN_LEARN_APPROXIMATE_H_
#define QLEARN_LEARN_APPROXIMATE_H_

#include <vector>

#include "common/status.h"
#include "learn/consistency.h"
#include "learn/twig_learner.h"

namespace qlearn {
namespace learn {

struct ApproximateOptions {
  /// Candidate cap handed to the generalization enumeration.
  size_t max_candidates = 128;
  /// Rounds of greedy outlier removal (each may drop one positive).
  size_t max_outlier_rounds = 4;
  TwigLearnerOptions learner;
};

struct ApproximateResult {
  twig::TwigQuery query;
  /// Training-set errors of the returned query.
  size_t false_positives = 0;  ///< negatives it selects
  size_t false_negatives = 0;  ///< positives it misses
};

/// Returns the candidate query minimizing (false positives + false
/// negatives) over the examples; errors are zero iff a consistent candidate
/// was found within the budget.
common::Result<ApproximateResult> LearnTwigApproximate(
    const std::vector<TreeExample>& positives,
    const std::vector<TreeExample>& negatives,
    const ApproximateOptions& options = {});

}  // namespace learn
}  // namespace qlearn

#endif  // QLEARN_LEARN_APPROXIMATE_H_
