// Interactive twig learning: the paper's protocol where the learner chooses
// nodes and asks the user (an oracle here) to label them, propagating
// labels of uninformative nodes so they are never asked:
//  * nodes selected by the current hypothesis are forced positive (any
//    consistent generalization still selects them);
//  * nodes whose addition would force the hypothesis to select a known
//    negative are forced negative.
// The goal is to minimize the number of questions (experiment E1/E4 kin;
// the relational analogue is experiment E6).
//
// The protocol itself runs in the unified session layer: TwigEngine
// implements the session Engine concept and plugs into
// session::LearningSession for incremental ask/answer driving;
// RunInteractiveTwigSession is the legacy one-shot wrapper over it.
#ifndef QLEARN_LEARN_INTERACTIVE_H_
#define QLEARN_LEARN_INTERACTIVE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "learn/twig_learner.h"
#include "session/candidate_store.h"
#include "session/frontier.h"
#include "session/propagation.h"
#include "session/session.h"
#include "session/snapshot.h"
#include "twig/twig_eval.h"
#include "twig/twig_query.h"
#include "xml/xml_tree.h"

namespace qlearn {
namespace learn {

/// Answers membership questions; implemented by hidden-goal-query oracles in
/// tests and benchmarks, and by an actual user in an application.
class TwigOracle {
 public:
  virtual ~TwigOracle() = default;
  /// True iff the hidden target selects `node` of `doc`.
  virtual bool IsPositive(const xml::XmlTree& doc, xml::NodeId node) = 0;
};

/// Oracle backed by a known goal query.
class GoalTwigOracle : public TwigOracle {
 public:
  explicit GoalTwigOracle(twig::TwigQuery goal) : goal_(std::move(goal)) {}
  bool IsPositive(const xml::XmlTree& doc, xml::NodeId node) override {
    return twig::Selects(goal_, doc, node);
  }

 private:
  twig::TwigQuery goal_;
};

/// Question-selection strategies.
enum class TwigStrategy {
  kRandom,        ///< uniformly random informative node
  kGreedyImpact,  ///< node whose positive answer would settle the most nodes
};

/// Knob ownership contract (same split on all four engines' options
/// structs): `strategy` and `learner` are consumed by the engine itself;
/// `seed` and `max_questions` are consumed only by the
/// RunInteractiveTwigSession wrapper, which forwards them into
/// session::SessionOptions — an engine driven directly through
/// LearningSession ignores them (the session owns the RNG stream and the
/// question budget).
struct InteractiveTwigOptions {
  TwigStrategy strategy = TwigStrategy::kGreedyImpact;
  uint64_t seed = session::SessionDefaults::kLegacyTwigSeed;
  /// Hard cap on oracle questions (safety valve).
  size_t max_questions = session::SessionDefaults::kLegacyTwigMaxQuestions;
  TwigLearnerOptions learner;
};

struct InteractiveTwigResult {
  twig::TwigQuery query;
  size_t questions = 0;
  size_t forced_positive = 0;  ///< labels inferred, not asked
  size_t forced_negative = 0;
  /// Oracle answers that contradicted a forced label (0 when the target is
  /// in the anchored class).
  size_t conflicts = 0;
};

/// Session engine for interactive twig learning over one document (see the
/// Engine concept in session/session.h). Questions are document nodes. The
/// caller must seed the engine with one known-positive node; use
/// session::LearningSession<TwigEngine> to drive it.
class TwigEngine {
 public:
  using Item = xml::NodeId;
  using HypothesisT = twig::TwigQuery;

  /// Wire-payload hooks: the tag and the stable model-specific coordinates
  /// of a question item. The type-erased scenario layer forwards these so a
  /// service can serialize questions without knowing the engine type (see
  /// service/wire.h).
  static constexpr const char* kPayloadKind = "twig";
  static std::vector<uint64_t> ItemIds(const Item& node) {
    return {static_cast<uint64_t>(node)};
  }

  /// `doc` must outlive the engine; `seed` is a node the user already
  /// marked positive (the engine does not re-ask it).
  TwigEngine(const xml::XmlTree* doc, xml::NodeId seed,
             const InteractiveTwigOptions& options = {});

  std::optional<Item> SelectQuestion(common::Rng* rng);
  void MarkAsked(const Item& item);
  void Observe(const Item& item, bool positive, session::SessionStats* stats);
  /// Per-answer propagation deltas (engine concept, session/session.h): a
  /// negative answer queues the node as a new witness conviction; a
  /// positive answer marks the hypothesis changed iff Observe actually
  /// generalized it (a conflicting positive leaves it untouched).
  void OnPositive(const Item& item);
  void OnNegative(const Item& item);
  /// Flushes queued deltas. Steady state (no hypothesis change since the
  /// last flush): each new negative settles exactly the active candidates
  /// whose memoized selected-set row contains it — one word-parallel sweep
  /// of active ∧ plane(negative) over the candidate store's transposed
  /// witness planes, O(words), not O(open × negatives). A hypothesis change
  /// (and the baseline call) runs the full pass; the witness planes are
  /// rebuilt lazily (64×64 bit-block transpose of the active rows) when the
  /// next negative delta demands them.
  void Propagate(session::SessionStats* stats);
  bool Aborted() const { return false; }  // twig sessions tolerate conflicts
  HypothesisT Current() const { return hypothesis_; }
  /// Audits forced positives against the known negatives (conflicts mean
  /// the target was outside the anchored class) and minimizes.
  HypothesisT Finish(session::SessionStats* stats);

  // Introspection for conformance tests and UIs.
  bool WasAsked(xml::NodeId node) const { return frontier_.WasAsked(node); }
  bool HasForcedLabel(xml::NodeId node) const {
    return frontier_.HasForcedLabel(node);
  }

  /// Test/bench hook: every flush replays the historical full-universe
  /// rescan instead of the delta pass. Behavior (questions, forced sets,
  /// stats) is identical by construction — the parity property test
  /// asserts it — only the per-answer cost differs.
  void set_reference_propagation(bool on) { reference_propagation_ = on; }
  /// Test/bench hook: makes the next flush run the full hypothesis-change
  /// pass (steady-state positive-answer cost without mutating the session).
  void ForceFullRepropagation() { prop_.RecordHypothesisChange(); }
  /// Test/bench hook: drops the witness planes so the next negative delta
  /// pays the full rebuild cost — row materialization plus the bit-block
  /// transpose (measured by BM_Classify).
  void InvalidateWitnessIndexForBench() { prop_.InvalidateWitnesses(); }
  /// Hibernation: appends a versioned engine image (strategy, hypothesis
  /// tree, accumulated negatives, frontier states, candidate-store
  /// bit-vectors) to `writer`. Call only between answered turns (queued
  /// deltas flushed). Follows the join/chain "QLJE"/"QLCE" pattern.
  void SerializeSnapshot(session::SnapshotWriter* writer) const;
  /// Restores an image produced by SerializeSnapshot into an engine built
  /// over the same document/options. Mismatched geometry or strategy is
  /// rejected with InvalidArgument.
  common::Status RestoreSnapshot(session::SnapshotReader* reader);

  // Test introspection of the witness planes (lazy rebuild semantics).
  // "Buckets" are the document nodes with at least one live witness bit —
  // the plane-sweep analogue of the historical bucket count.
  bool WitnessIndexValidForTest() const { return prop_.WitnessesValid(); }
  size_t WitnessBucketsForTest() const;
  /// Test introspection of the structure-of-arrays candidate store.
  const session::CandidateStore& StoreForTest() const { return store_; }

 private:
  using FrontierT = session::Frontier<xml::NodeId, long>;

  /// Delta queue only (the witness-bucket half of PropagationIndex is
  /// superseded by the store's transposed planes; the validity flag still
  /// tracks whether those planes match the current hypothesis). Deltas are
  /// the negative nodes themselves.
  using PropagationT =
      session::PropagationIndex<xml::NodeId, xml::NodeId>;

  /// Hypothesis with doc-node `v` joined in, or nullopt if no anchored
  /// generalization exists.
  std::optional<twig::TwigQuery> Extended(xml::NodeId v) const;
  /// Materializes candidate v's selected-set row in the store (the sorted
  /// node set Extended(v) selects, as a bitset) if it is stale; returns
  /// true when the row is present (an anchored generalization exists).
  /// Both the greedy-impact score and the forced-negative propagation
  /// predicate read the row instead of re-running GeneralizePair +
  /// evaluation per call.
  bool EnsureRow(xml::NodeId v);

  /// The historical full-universe rescan, verbatim (reference mode).
  void ReferencePropagate(session::SessionStats* stats);
  /// Baseline / hypothesis-change pass: historical forced-positive sweep,
  /// plus the forced-negative sweep that skips selected-set
  /// materialization while no negative exists yet.
  void FullPropagate(session::SessionStats* stats);
  /// Steady-state flush: one active ∧ plane(neg) sweep per queued negative.
  void ApplyNegativeDeltas(session::SessionStats* stats);
  /// Rebuilds the witness planes: materializes every active candidate's
  /// selected-set row, then bit-transposes the rows into the planes
  /// (deferred until a negative delta actually demands it).
  void RebuildWitnessPlanes();
#ifndef NDEBUG
  /// Replays the historical per-candidate predicates and asserts the flush
  /// reached their fixpoint (identical forced sets and stats totals).
  void AssertPropagationFixpoint();
#endif

  const xml::XmlTree* doc_;
  // strategy + learner knobs; see the knob-ownership contract on
  // InteractiveTwigOptions (seed/max_questions are wrapper-only).
  InteractiveTwigOptions options_;
  twig::TwigQuery hypothesis_;
  FrontierT frontier_;  // one candidate per doc node, index == NodeId
  /// SoA store: selected-set rows (one per candidate, row == NodeId — rows
  /// pin the dense axis, no compaction) and their transpose, the witness
  /// planes (plane u = candidates whose selected-set holds node u).
  session::CandidateStore store_;
  std::vector<xml::NodeId> negatives_;
  /// The negatives as a doc-node bitset (row_words-sized), the word-wise
  /// mirror of negatives_ the row-intersection tests sweep against.
  std::vector<uint64_t> neg_words_;
  PropagationT prop_;
  /// Sweep scratch (dense words) reused across flushes.
  std::vector<uint64_t> scratch_;
  /// Did the last positive Observe actually generalize the hypothesis?
  bool hypothesis_advanced_ = false;
  bool reference_propagation_ = false;
};

/// Runs the interactive protocol on `doc`, starting from one positive seed
/// node (caller-provided, e.g. the first node the user annotated). Thin
/// wrapper over session::LearningSession<TwigEngine>; question counts are
/// identical to driving the engine one question at a time.
common::Result<InteractiveTwigResult> RunInteractiveTwigSession(
    const xml::XmlTree& doc, xml::NodeId seed, TwigOracle* oracle,
    const InteractiveTwigOptions& options = {});

}  // namespace learn
}  // namespace qlearn

#endif  // QLEARN_LEARN_INTERACTIVE_H_
