// Interactive twig learning: the paper's protocol where the learner chooses
// nodes and asks the user (an oracle here) to label them, propagating
// labels of uninformative nodes so they are never asked:
//  * nodes selected by the current hypothesis are forced positive (any
//    consistent generalization still selects them);
//  * nodes whose addition would force the hypothesis to select a known
//    negative are forced negative.
// The goal is to minimize the number of questions (experiment E1/E4 kin;
// the relational analogue is experiment E6).
#ifndef QLEARN_LEARN_INTERACTIVE_H_
#define QLEARN_LEARN_INTERACTIVE_H_

#include <cstdint>

#include "common/rng.h"
#include "common/status.h"
#include "learn/twig_learner.h"
#include "twig/twig_eval.h"
#include "twig/twig_query.h"
#include "xml/xml_tree.h"

namespace qlearn {
namespace learn {

/// Answers membership questions; implemented by hidden-goal-query oracles in
/// tests and benchmarks, and by an actual user in an application.
class TwigOracle {
 public:
  virtual ~TwigOracle() = default;
  /// True iff the hidden target selects `node` of `doc`.
  virtual bool IsPositive(const xml::XmlTree& doc, xml::NodeId node) = 0;
};

/// Oracle backed by a known goal query.
class GoalTwigOracle : public TwigOracle {
 public:
  explicit GoalTwigOracle(twig::TwigQuery goal) : goal_(std::move(goal)) {}
  bool IsPositive(const xml::XmlTree& doc, xml::NodeId node) override {
    return twig::Selects(goal_, doc, node);
  }

 private:
  twig::TwigQuery goal_;
};

/// Question-selection strategies.
enum class TwigStrategy {
  kRandom,        ///< uniformly random informative node
  kGreedyImpact,  ///< node whose positive answer would settle the most nodes
};

struct InteractiveTwigOptions {
  TwigStrategy strategy = TwigStrategy::kGreedyImpact;
  uint64_t seed = 7;
  /// Hard cap on oracle questions (safety valve).
  size_t max_questions = 100000;
  TwigLearnerOptions learner;
};

struct InteractiveTwigResult {
  twig::TwigQuery query;
  size_t questions = 0;
  size_t forced_positive = 0;  ///< labels inferred, not asked
  size_t forced_negative = 0;
  /// Oracle answers that contradicted a forced label (0 when the target is
  /// in the anchored class).
  size_t conflicts = 0;
};

/// Runs the interactive protocol on `doc`, starting from one positive seed
/// node (caller-provided, e.g. the first node the user annotated).
common::Result<InteractiveTwigResult> RunInteractiveTwigSession(
    const xml::XmlTree& doc, xml::NodeId seed, TwigOracle* oracle,
    const InteractiveTwigOptions& options = {});

}  // namespace learn
}  // namespace qlearn

#endif  // QLEARN_LEARN_INTERACTIVE_H_
