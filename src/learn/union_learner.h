// Unions of twig queries — the richer language the paper proposes to escape
// the NP-completeness of single-twig consistency ("unions of twig queries
// for which testing consistency is trivial but learnability remains an open
// question", §2).
//
// Consistency really is easy here: the most-specific query of a positive
// example (the whole document with the example node selected) selects a node
// n iff EVERY twig selecting the example selects n. Hence a positive/negative
// example set is union-consistent iff no negative is covered by the
// most-specific query of some positive — a PTIME check with the standard
// evaluator. For learnability we ship a greedy bottom-up merger: start from
// one most-specific disjunct per positive and merge disjuncts while the
// generalization stays negative-free.
#ifndef QLEARN_LEARN_UNION_LEARNER_H_
#define QLEARN_LEARN_UNION_LEARNER_H_

#include <optional>
#include <string>
#include <vector>

#include "common/interner.h"
#include "common/status.h"
#include "learn/twig_learner.h"
#include "twig/twig_query.h"
#include "xml/xml_tree.h"

namespace qlearn {
namespace learn {

/// A finite union (disjunction) of twig queries. Selection semantics is the
/// union of the disjuncts' answer sets.
class TwigUnion {
 public:
  TwigUnion() = default;
  explicit TwigUnion(std::vector<twig::TwigQuery> disjuncts)
      : disjuncts_(std::move(disjuncts)) {}

  const std::vector<twig::TwigQuery>& disjuncts() const { return disjuncts_; }
  void AddDisjunct(twig::TwigQuery q) { disjuncts_.push_back(std::move(q)); }
  size_t NumDisjuncts() const { return disjuncts_.size(); }

  /// Sum of the disjuncts' sizes (the paper's query-size measure, extended).
  size_t TotalSize() const;

  /// True iff some disjunct selects `node` of `doc`.
  bool Selects(const xml::XmlTree& doc, xml::NodeId node) const;

  /// All nodes of `doc` selected by some disjunct (sorted, deduplicated).
  std::vector<xml::NodeId> Evaluate(const xml::XmlTree& doc) const;

  /// " | "-joined rendering of the disjuncts.
  std::string ToString(const common::Interner& interner) const;

 private:
  std::vector<twig::TwigQuery> disjuncts_;
};

/// Outcome of the trivial union-consistency test.
struct UnionConsistencyReport {
  bool consistent = false;
  /// When inconsistent: indexes of a positive and a negative example such
  /// that every twig selecting the positive also selects the negative.
  size_t blocking_positive = 0;
  size_t blocking_negative = 0;
};

/// PTIME consistency for unions of twigs: checks that no negative example is
/// selected by the most-specific query of a positive example. Negatives must
/// not duplicate positives. Examples may live in different documents.
UnionConsistencyReport CheckUnionConsistency(
    const std::vector<TreeExample>& positives,
    const std::vector<TreeExample>& negatives);

struct UnionLearnerOptions {
  /// Upper bound on the number of disjuncts in the result; the merger keeps
  /// merging most-compatible pairs until it fits (or reports failure when
  /// negatives block every merge).
  size_t max_disjuncts = 4;
  /// Stop merging early once no merge shrinks the union (even if the
  /// disjunct budget is not yet exhausted).
  bool stop_when_no_gain = true;
  TwigLearnerOptions learner;
};

struct UnionLearnResult {
  TwigUnion query;
  /// Number of pairwise merges performed.
  size_t merges = 0;
  /// Number of candidate merges rejected because the generalization covered
  /// a negative example.
  size_t merges_blocked = 0;
};

/// Learns a union of anchored twigs selecting every positive and no negative.
/// Fails with FailedPrecondition when the examples are union-inconsistent,
/// and with ResourceExhausted when negatives block every merge while more
/// than `max_disjuncts` clusters remain.
common::Result<UnionLearnResult> LearnTwigUnion(
    const std::vector<TreeExample>& positives,
    const std::vector<TreeExample>& negatives,
    const UnionLearnerOptions& options = {});

}  // namespace learn
}  // namespace qlearn

#endif  // QLEARN_LEARN_UNION_LEARNER_H_
