// Consistency checking for positive AND negative tree examples: does some
// anchored twig query select all positives and no negative? The paper notes
// this is NP-complete in general and tractable for bounded example sets; the
// checker below enumerates the antichain of most-specific generalizations
// (exponential in the worst case, with an explicit exploration cap) and
// reports three-valued verdicts. Experiment E4 measures both regimes.
#ifndef QLEARN_LEARN_CONSISTENCY_H_
#define QLEARN_LEARN_CONSISTENCY_H_

#include <optional>
#include <vector>

#include "learn/twig_learner.h"
#include "twig/twig_query.h"

namespace qlearn {
namespace learn {

/// Verdict of a consistency check.
enum class Consistency {
  kConsistent,    ///< A witness query was found.
  kInconsistent,  ///< The candidate space was exhausted without a witness.
  kUnknown,       ///< The exploration cap was hit first.
};

struct ConsistencyOptions {
  /// Cap on most-specific-generalization candidates explored.
  size_t max_candidates = 4096;
  /// Cap on alignment-enumeration DFS steps (0 = 64 * max_candidates).
  /// Chains of repeated labels have exponentially many alignments that all
  /// collapse to a handful of patterns; without a step budget the search
  /// can wander that space far beyond the candidate cap.
  size_t max_dfs_steps = 0;
  /// Try the canonical learner first: its most-specific generalization
  /// selects every positive, so if it also avoids all negatives the
  /// examples are consistent — a PTIME certificate covering the paper's
  /// bounded-example tractable regime. Disable to force pure enumeration.
  bool canonical_fast_path = true;
  TwigLearnerOptions learner;
};

struct ConsistencyReport {
  Consistency verdict = Consistency::kInconsistent;
  /// A consistent query when verdict == kConsistent.
  std::optional<twig::TwigQuery> witness;
  /// Number of candidate generalizations examined.
  size_t candidates_explored = 0;
};

/// Enumerates most-specific anchored generalizations of `q1` and `q2` (one
/// per maximal selection-path alignment), most specific first, up to `cap`.
std::vector<twig::TwigQuery> EnumerateGeneralizations(
    const twig::TwigQuery& q1, const twig::TwigQuery& q2,
    const TwigLearnerOptions& options, size_t cap);

/// Budgeted variant: stops after `max_steps` DFS steps (0 = 64 * cap) and
/// sets `*capped` (if non-null) when the budget truncated the enumeration.
std::vector<twig::TwigQuery> EnumerateGeneralizations(
    const twig::TwigQuery& q1, const twig::TwigQuery& q2,
    const TwigLearnerOptions& options, size_t cap, size_t max_steps,
    bool* capped);

/// Checks whether some anchored twig selects every positive and no negative.
ConsistencyReport CheckTwigConsistency(
    const std::vector<TreeExample>& positives,
    const std::vector<TreeExample>& negatives,
    const ConsistencyOptions& options = {});

}  // namespace learn
}  // namespace qlearn

#endif  // QLEARN_LEARN_CONSISTENCY_H_
