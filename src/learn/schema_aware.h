// Schema-aware twig learning: the optimization proposed in the paper's
// Section 2 — after learning, drop every filter that is implied by the
// document schema (decided in PTIME via dependency-graph embedding), since
// such filters are satisfied by all valid documents and only enlarge the
// query. Experiment E3 measures the size reduction.
#ifndef QLEARN_LEARN_SCHEMA_AWARE_H_
#define QLEARN_LEARN_SCHEMA_AWARE_H_

#include "common/status.h"
#include "learn/twig_learner.h"
#include "schema/ms.h"
#include "twig/twig_query.h"

namespace qlearn {
namespace learn {

/// Outcome of schema-aware learning: the plain learner's output and the
/// schema-pruned query, with their sizes (paper metric: % size decrease).
struct SchemaAwareResult {
  twig::TwigQuery before;
  twig::TwigQuery after;
  size_t size_before = 0;
  size_t size_after = 0;
};

/// Removes every filter subtree of `query` that is implied by `schema` at
/// its (concrete-labeled) anchor node. The result selects the same nodes on
/// every document valid under `schema`.
twig::TwigQuery PruneImpliedFilters(const twig::TwigQuery& query,
                                    const schema::Ms& schema);

/// LearnTwig followed by PruneImpliedFilters, reporting both sizes.
common::Result<SchemaAwareResult> LearnTwigWithSchema(
    const std::vector<TreeExample>& examples, const schema::Ms& schema,
    const TwigLearnerOptions& options = {});

}  // namespace learn
}  // namespace qlearn

#endif  // QLEARN_LEARN_SCHEMA_AWARE_H_
