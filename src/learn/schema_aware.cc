#include "learn/schema_aware.h"

#include <vector>

#include "schema/depgraph.h"

namespace qlearn {
namespace learn {

using twig::QNodeId;
using twig::TwigQuery;

TwigQuery PruneImpliedFilters(const TwigQuery& query,
                              const schema::Ms& schema) {
  TwigQuery current = query;
  bool changed = true;
  while (changed) {
    changed = false;
    // Nodes protected from removal: the selection/marked nodes and their
    // ancestors (the query's skeleton).
    std::vector<bool> keep(current.NumNodes(), false);
    auto protect = [&](QNodeId n) {
      for (QNodeId cur = n; cur != twig::kInvalidQNode;
           cur = current.parent(cur)) {
        keep[cur] = true;
        if (cur == 0) break;
      }
    };
    if (current.selection() != twig::kInvalidQNode) {
      protect(current.selection());
    }
    for (QNodeId m : current.marked()) protect(m);

    for (QNodeId x = 1; x < current.NumNodes() && !changed; ++x) {
      if (keep[x]) continue;
      const QNodeId anchor = current.parent(x);
      if (anchor == 0) continue;  // top-level steps are never filters
      const common::SymbolId context = current.label(anchor);
      if (context == twig::kWildcard) continue;  // no concrete context
      if (schema::FilterImplied(schema, context, current, x)) {
        current = current.RemoveSubtree(x);
        changed = true;
      }
    }
  }
  return current;
}

common::Result<SchemaAwareResult> LearnTwigWithSchema(
    const std::vector<TreeExample>& examples, const schema::Ms& schema,
    const TwigLearnerOptions& options) {
  auto learned = LearnTwig(examples, options);
  if (!learned.ok()) return learned.status();
  SchemaAwareResult result;
  result.before = std::move(learned).value();
  result.after = PruneImpliedFilters(result.before, schema);
  result.size_before = result.before.Size();
  result.size_after = result.after.Size();
  return result;
}

}  // namespace learn
}  // namespace qlearn
