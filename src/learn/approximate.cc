#include "learn/approximate.h"

#include <algorithm>

#include "twig/twig_containment.h"
#include "twig/twig_eval.h"

namespace qlearn {
namespace learn {

using common::Result;
using common::Status;
using twig::TwigQuery;

namespace {

struct Scored {
  TwigQuery query;
  size_t false_positives;
  size_t false_negatives;
  size_t errors() const { return false_positives + false_negatives; }
};

Scored Score(TwigQuery q, const std::vector<TreeExample>& positives,
             const std::vector<TreeExample>& negatives) {
  Scored s{std::move(q), 0, 0};
  for (const TreeExample& pos : positives) {
    if (!twig::Selects(s.query, *pos.doc, pos.node)) ++s.false_negatives;
  }
  for (const TreeExample& neg : negatives) {
    if (twig::Selects(s.query, *neg.doc, neg.node)) ++s.false_positives;
  }
  return s;
}

}  // namespace

Result<ApproximateResult> LearnTwigApproximate(
    const std::vector<TreeExample>& positives,
    const std::vector<TreeExample>& negatives,
    const ApproximateOptions& options) {
  if (positives.empty()) {
    return Status::InvalidArgument(
        "approximate learning needs at least one positive example");
  }

  // Candidate pool: canonical generalizations of greedily-chosen subsets of
  // the positives (the full set first; then with outliers removed).
  std::vector<std::vector<TreeExample>> subsets{positives};
  std::optional<Scored> best;

  for (size_t round = 0; round <= options.max_outlier_rounds; ++round) {
    if (round >= subsets.size()) break;
    const std::vector<TreeExample>& subset = subsets[round];
    auto learned = LearnTwig(subset, options.learner);
    if (learned.ok()) {
      Scored scored =
          Score(std::move(learned).value(), positives, negatives);
      if (!best.has_value() || scored.errors() < best->errors() ||
          (scored.errors() == best->errors() &&
           scored.query.Size() < best->query.Size())) {
        best = scored;
      }
      if (best->errors() == 0) break;
    }
    // Propose the next subset: drop the positive whose removal most reduces
    // the error of the canonical hypothesis.
    if (subset.size() <= 1) continue;
    size_t best_errors = static_cast<size_t>(-1);
    std::vector<TreeExample> best_subset;
    for (size_t skip = 0; skip < subset.size(); ++skip) {
      std::vector<TreeExample> reduced;
      for (size_t i = 0; i < subset.size(); ++i) {
        if (i != skip) reduced.push_back(subset[i]);
      }
      auto h = LearnTwig(reduced, options.learner);
      if (!h.ok()) continue;
      const Scored s = Score(std::move(h).value(), positives, negatives);
      if (s.errors() < best_errors) {
        best_errors = s.errors();
        best_subset = std::move(reduced);
      }
    }
    if (!best_subset.empty()) subsets.push_back(std::move(best_subset));
  }

  if (!best.has_value()) {
    return Status::NotFound(
        "no anchored hypothesis exists for any probed subset");
  }
  ApproximateResult result;
  result.query = std::move(best->query);
  result.false_positives = best->false_positives;
  result.false_negatives = best->false_negatives;
  return result;
}

}  // namespace learn
}  // namespace qlearn
