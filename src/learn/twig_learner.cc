#include "learn/twig_learner.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <set>

#include "twig/twig_containment.h"

namespace qlearn {
namespace learn {

using common::Result;
using common::Status;
using common::SymbolId;
using twig::Axis;
using twig::QNodeId;
using twig::TwigQuery;

namespace {

/// One selection-path step of a source query.
struct PathStep {
  Axis axis;        // incoming edge
  SymbolId label;
  QNodeId node;     // originating query node
};

std::vector<PathStep> SelectionPath(const TwigQuery& q) {
  std::vector<PathStep> path;
  for (QNodeId cur = q.selection(); cur != 0 && cur != twig::kInvalidQNode;
       cur = q.parent(cur)) {
    path.push_back(PathStep{q.axis(cur), q.label(cur), cur});
  }
  std::reverse(path.begin(), path.end());
  return path;
}

/// A filter pattern under construction (axis of the root = edge from its
/// anchor step). `size` and `hash` are filled when the tree is finalized so
/// dedup and sorting are O(1) per comparison.
struct FilterTree {
  Axis axis;
  SymbolId label;
  std::vector<FilterTree> kids;
  size_t size = 1;
  uint64_t hash = 0;

  size_t Size() const { return size; }

  /// Computes `size` and an order-insensitive structural `hash` bottom-up
  /// (children must already be finalized).
  void Finalize() {
    size = 1;
    uint64_t h = 0x9e3779b97f4a7c15ULL ^ (static_cast<uint64_t>(label) << 2) ^
                 static_cast<uint64_t>(axis);
    uint64_t kid_mix = 0;
    for (const FilterTree& k : kids) {
      size += k.size;
      // Commutative combine: child order must not affect the hash.
      kid_mix += k.hash * 0x100000001b3ULL + 0x517cc1b727220a95ULL;
    }
    h ^= kid_mix + (kid_mix << 7);
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    hash = h;
  }
};

/// Memo table for FilterLgg over (q1-node, q2-node) pairs. Each reachable
/// pair is generalized exactly once, which keeps the product of two
/// document-sized queries polynomial.
class FilterLggMemo {
 public:
  FilterLggMemo(const TwigQuery& q1, const TwigQuery& q2,
                const TwigLearnerOptions& options)
      : q1_(q1), q2_(q2), options_(options) {}

  /// Most-specific common generalization of the branches rooted at x and y;
  /// returns nullptr when no anchored generalization exists.
  const FilterTree* Lgg(QNodeId x, QNodeId y) {
    const uint64_t key =
        static_cast<uint64_t>(x) * q2_.NumNodes() + static_cast<uint64_t>(y);
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second ? &*it->second : nullptr;

    std::optional<FilterTree> result = Compute(x, y);
    auto [pos, inserted] = memo_.emplace(key, std::move(result));
    (void)inserted;
    return pos->second ? &*pos->second : nullptr;
  }

 private:
  std::optional<FilterTree> Compute(QNodeId x, QNodeId y) {
    const Axis axis =
        (q1_.axis(x) == Axis::kChild && q2_.axis(y) == Axis::kChild)
            ? Axis::kChild
            : Axis::kDescendant;
    FilterTree out;
    bool wildcard = false;
    if (q1_.label(x) != twig::kWildcard && q1_.label(x) == q2_.label(y)) {
      out.label = q1_.label(x);
    } else if (options_.use_wildcards && axis == Axis::kChild) {
      out.label = twig::kWildcard;
      wildcard = true;
    } else {
      return std::nullopt;  // labels disagree; a wildcard would break anchors
    }
    out.axis = axis;

    std::set<uint64_t> seen;
    for (QNodeId xc : q1_.children(x)) {
      for (QNodeId yc : q2_.children(y)) {
        // Below a wildcard only child-child pairs keep the pattern anchored.
        if (wildcard && (q1_.axis(xc) != Axis::kChild ||
                         q2_.axis(yc) != Axis::kChild)) {
          continue;
        }
        const FilterTree* kid = Lgg(xc, yc);
        if (kid != nullptr && seen.insert(kid->hash).second) {
          out.kids.push_back(*kid);
        }
      }
    }
    // Keep the most specific (largest) filters first, capped both in count
    // and in total subtree size so patterns stay polynomial.
    std::stable_sort(out.kids.begin(), out.kids.end(),
                     [](const FilterTree& a, const FilterTree& b) {
                       return a.Size() > b.Size();
                     });
    std::vector<FilterTree> kept;
    size_t total = 1;
    for (FilterTree& kid : out.kids) {
      if (kept.size() >= options_.max_filters_per_node) break;
      if (total + kid.size > options_.max_filter_size) continue;
      total += kid.size;
      kept.push_back(std::move(kid));
    }
    out.kids = std::move(kept);
    out.Finalize();
    return out;
  }

  const TwigQuery& q1_;
  const TwigQuery& q2_;
  const TwigLearnerOptions& options_;
  std::map<uint64_t, std::optional<FilterTree>> memo_;
};

/// Labels of proper descendants of `n` in `q`.
std::set<SymbolId> DescendantLabels(const TwigQuery& q, QNodeId n) {
  std::set<SymbolId> out;
  std::vector<QNodeId> stack(q.children(n).begin(), q.children(n).end());
  while (!stack.empty()) {
    const QNodeId cur = stack.back();
    stack.pop_back();
    if (q.label(cur) != twig::kWildcard) out.insert(q.label(cur));
    stack.insert(stack.end(), q.children(cur).begin(), q.children(cur).end());
  }
  return out;
}

void AttachFilter(TwigQuery* q, QNodeId parent, const FilterTree& f) {
  const QNodeId node = q->AddNode(parent, f.axis, f.label);
  for (const FilterTree& kid : f.kids) AttachFilter(q, node, kid);
}

/// DP cell for the selection-path alignment.
struct Cell {
  bool valid = false;
  // Score: (#steps, #concrete labels, #child axes), lexicographic.
  std::array<int, 3> score{0, 0, 0};
  int prev_i = -1;
  int prev_j = -1;
  bool prev_wild = false;
  Axis in_axis = Axis::kDescendant;  // axis entering this aligned step
};

}  // namespace

TwigQuery ExampleToQuery(const TreeExample& example) {
  TwigQuery q;
  const xml::XmlTree& doc = *example.doc;
  std::vector<QNodeId> map(doc.NumNodes(), twig::kInvalidQNode);
  for (xml::NodeId n : doc.PreOrder()) {
    const QNodeId parent =
        n == doc.root() ? 0 : map[doc.parent(n)];
    map[n] = q.AddNode(parent, Axis::kChild, doc.label(n));
  }
  q.set_selection(map[example.node]);
  return q;
}

Result<TwigQuery> GeneralizePair(const TwigQuery& q1, const TwigQuery& q2,
                                 const TwigLearnerOptions& options) {
  if (q1.selection() == twig::kInvalidQNode ||
      q2.selection() == twig::kInvalidQNode) {
    return Status::InvalidArgument("GeneralizePair needs selection nodes");
  }
  const std::vector<PathStep> a = SelectionPath(q1);
  const std::vector<PathStep> b = SelectionPath(q2);
  const int m = static_cast<int>(a.size());
  const int n = static_cast<int>(b.size());

  // dp[i][j][w]: best alignment of prefixes with (i,j) aligned as the current
  // pattern step, which is a wildcard iff w.
  std::vector<std::vector<std::array<Cell, 2>>> dp(
      m, std::vector<std::array<Cell, 2>>(n));

  auto label_options = [&](int i, int j) {
    std::vector<bool> wilds;
    if (a[i].label != twig::kWildcard && a[i].label == b[j].label) {
      wilds.push_back(false);
    }
    if (options.use_wildcards) wilds.push_back(true);
    return wilds;
  };

  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      for (bool wild : label_options(i, j)) {
        Cell best;
        // Option 1: (i,j) is the first pattern step.
        {
          const bool consecutive = i == 0 && j == 0;
          const Axis axis = (consecutive && a[0].axis == Axis::kChild &&
                             b[0].axis == Axis::kChild)
                                ? Axis::kChild
                                : Axis::kDescendant;
          if (!(wild && axis != Axis::kChild)) {
            Cell cand;
            cand.valid = true;
            cand.score = {1, wild ? 0 : 1, axis == Axis::kChild ? 1 : 0};
            cand.in_axis = axis;
            if (!best.valid || cand.score > best.score) best = cand;
          }
        }
        // Option 2: extend a previous aligned pair (pi, pj).
        for (int pi = 0; pi < i; ++pi) {
          for (int pj = 0; pj < j; ++pj) {
            for (int pw = 0; pw < 2; ++pw) {
              const Cell& prev = dp[pi][pj][pw];
              if (!prev.valid) continue;
              const bool consecutive = pi == i - 1 && pj == j - 1;
              const Axis axis = (consecutive && a[i].axis == Axis::kChild &&
                                 b[j].axis == Axis::kChild)
                                    ? Axis::kChild
                                    : Axis::kDescendant;
              // Anchoring: wildcard endpoints demand child axes.
              if ((wild || pw) && axis != Axis::kChild) continue;
              Cell cand;
              cand.valid = true;
              cand.score = {prev.score[0] + 1,
                            prev.score[1] + (wild ? 0 : 1),
                            prev.score[2] + (axis == Axis::kChild ? 1 : 0)};
              cand.prev_i = pi;
              cand.prev_j = pj;
              cand.prev_wild = pw != 0;
              cand.in_axis = axis;
              if (!best.valid || cand.score > best.score) best = cand;
            }
          }
        }
        dp[i][j][wild ? 1 : 0] = best;
      }
    }
  }

  // The alignment must end at the two selection nodes.
  const Cell* end = nullptr;
  bool end_wild = false;
  for (int w = 0; w < 2; ++w) {
    const Cell& c = dp[m - 1][n - 1][w];
    if (!c.valid) continue;
    if (end == nullptr || c.score > end->score) {
      end = &c;
      end_wild = w != 0;
    }
  }
  if (end == nullptr) {
    return Status::NotFound(
        "no anchored generalization of the selection paths exists");
  }

  // Reconstruct the best alignment in root-to-selection order and assemble.
  std::vector<AlignmentStep> steps;
  {
    int ci = m - 1;
    int cj = n - 1;
    bool cw = end_wild;
    while (ci >= 0) {
      const Cell& cell = dp[ci][cj][cw ? 1 : 0];
      steps.push_back(AlignmentStep{ci, cj, cw});
      if (cell.prev_i < 0) break;
      const int ni = cell.prev_i;
      const int nj = cell.prev_j;
      cw = cell.prev_wild;
      ci = ni;
      cj = nj;
    }
    std::reverse(steps.begin(), steps.end());
  }
  return BuildAlignedPattern(q1, q2, steps, options);
}

Result<TwigQuery> BuildAlignedPattern(const TwigQuery& q1,
                                      const TwigQuery& q2,
                                      const std::vector<AlignmentStep>& steps,
                                      const TwigLearnerOptions& options) {
  const std::vector<PathStep> a = SelectionPath(q1);
  const std::vector<PathStep> b = SelectionPath(q2);
  const int m = static_cast<int>(a.size());
  const int n = static_cast<int>(b.size());
  if (steps.empty() || steps.back().i != m - 1 || steps.back().j != n - 1) {
    return Status::InvalidArgument("alignment must end at both selections");
  }

  // Derive axes and validate label compatibility and anchoring.
  std::vector<Axis> axes(steps.size());
  for (size_t t = 0; t < steps.size(); ++t) {
    const AlignmentStep& s = steps[t];
    if (s.i < 0 || s.i >= m || s.j < 0 || s.j >= n) {
      return Status::InvalidArgument("alignment step out of range");
    }
    if (t > 0 &&
        (steps[t - 1].i >= s.i || steps[t - 1].j >= s.j)) {
      return Status::InvalidArgument("alignment must be strictly increasing");
    }
    if (!s.wildcard) {
      if (a[s.i].label == twig::kWildcard || a[s.i].label != b[s.j].label) {
        return Status::InvalidArgument("labels disagree on concrete step");
      }
    } else if (!options.use_wildcards) {
      return Status::InvalidArgument("wildcards disabled");
    }
    const bool consecutive =
        t == 0 ? (s.i == 0 && s.j == 0)
               : (s.i == steps[t - 1].i + 1 && s.j == steps[t - 1].j + 1);
    axes[t] = (consecutive && a[s.i].axis == Axis::kChild &&
               b[s.j].axis == Axis::kChild)
                  ? Axis::kChild
                  : Axis::kDescendant;
  }
  for (size_t t = 0; t < steps.size(); ++t) {
    if (!steps[t].wildcard) continue;
    if (axes[t] != Axis::kChild) {
      return Status::InvalidArgument("wildcard entered via descendant axis");
    }
    if (t + 1 < steps.size() && axes[t + 1] != Axis::kChild) {
      return Status::InvalidArgument("wildcard exited via descendant axis");
    }
  }

  // Assemble the pattern: main path plus per-step filters. One memo table
  // serves every step (pairs repeat across steps and inside subtrees).
  FilterLggMemo memo(q1, q2, options);
  TwigQuery out;
  QNodeId cur = 0;
  for (size_t t = 0; t < steps.size(); ++t) {
    const AlignmentStep& s = steps[t];
    const SymbolId label = s.wildcard ? twig::kWildcard : a[s.i].label;
    cur = out.AddNode(cur, axes[t], label);
    const QNodeId u = a[s.i].node;
    const QNodeId v = b[s.j].node;
    const QNodeId u_next =
        t + 1 < steps.size() ? a[steps[t + 1].i].node : twig::kInvalidQNode;
    const QNodeId v_next =
        t + 1 < steps.size() ? b[steps[t + 1].j].node : twig::kInvalidQNode;
    // The q1/q2 children that continue toward the selection are excluded
    // from filter generation (they are the main path).
    auto on_path = [](const TwigQuery& q, QNodeId child, QNodeId next) {
      if (next == twig::kInvalidQNode) return false;
      for (QNodeId c = next; c != 0 && c != twig::kInvalidQNode;
           c = q.parent(c)) {
        if (c == child) return true;
      }
      return false;
    };

    std::vector<FilterTree> filters;
    std::set<uint64_t> seen;
    for (QNodeId xc : q1.children(u)) {
      if (on_path(q1, xc, u_next)) continue;
      for (QNodeId yc : q2.children(v)) {
        if (on_path(q2, yc, v_next)) continue;
        if (s.wildcard && (q1.axis(xc) != Axis::kChild ||
                           q2.axis(yc) != Axis::kChild)) {
          continue;
        }
        const FilterTree* f = memo.Lgg(xc, yc);
        if (f != nullptr && seen.insert(f->hash).second) {
          filters.push_back(*f);
        }
      }
    }
    // Descendant filters: labels occurring strictly below both aligned nodes
    // (outside a wildcard step, which cannot carry descendant edges).
    if (options.descendant_filters && !s.wildcard) {
      std::set<SymbolId> da = DescendantLabels(q1, u);
      std::set<SymbolId> db = DescendantLabels(q2, v);
      for (SymbolId l : da) {
        if (!db.count(l)) continue;
        FilterTree f;
        f.axis = Axis::kDescendant;
        f.label = l;
        f.Finalize();
        if (seen.insert(f.hash).second) filters.push_back(std::move(f));
      }
    }
    std::stable_sort(filters.begin(), filters.end(),
                     [](const FilterTree& x, const FilterTree& y) {
                       return x.Size() > y.Size();
                     });
    std::vector<FilterTree> kept;
    size_t total = 1;
    for (FilterTree& f : filters) {
      if (kept.size() >= options.max_filters_per_node) break;
      if (total + f.size > options.max_filter_size) continue;
      total += f.size;
      kept.push_back(std::move(f));
    }
    for (const FilterTree& f : kept) AttachFilter(&out, cur, f);
  }
  out.set_selection(cur);
  return out;
}

Result<TwigQuery> LearnTwig(const std::vector<TreeExample>& examples,
                            const TwigLearnerOptions& options) {
  if (examples.empty()) {
    return Status::InvalidArgument("LearnTwig needs at least one example");
  }
  TwigQuery hypothesis = ExampleToQuery(examples[0]);
  for (size_t i = 1; i < examples.size(); ++i) {
    auto next = GeneralizePair(hypothesis, ExampleToQuery(examples[i]),
                               options);
    if (!next.ok()) return next.status();
    hypothesis = std::move(next).value();
  }
  if (options.minimize) hypothesis = twig::Minimize(hypothesis);
  return hypothesis;
}

}  // namespace learn
}  // namespace qlearn
