#include "learn/union_learner.h"

#include <algorithm>
#include <set>

#include "twig/twig_eval.h"

namespace qlearn {
namespace learn {

using common::Result;
using common::Status;

size_t TwigUnion::TotalSize() const {
  size_t total = 0;
  for (const twig::TwigQuery& q : disjuncts_) total += q.Size();
  return total;
}

bool TwigUnion::Selects(const xml::XmlTree& doc, xml::NodeId node) const {
  for (const twig::TwigQuery& q : disjuncts_) {
    if (twig::Selects(q, doc, node)) return true;
  }
  return false;
}

std::vector<xml::NodeId> TwigUnion::Evaluate(const xml::XmlTree& doc) const {
  std::set<xml::NodeId> nodes;
  for (const twig::TwigQuery& q : disjuncts_) {
    for (xml::NodeId n : twig::Evaluate(q, doc)) nodes.insert(n);
  }
  return std::vector<xml::NodeId>(nodes.begin(), nodes.end());
}

std::string TwigUnion::ToString(const common::Interner& interner) const {
  std::string out;
  for (size_t i = 0; i < disjuncts_.size(); ++i) {
    if (i > 0) out += " | ";
    out += disjuncts_[i].ToString(interner);
  }
  return out;
}

UnionConsistencyReport CheckUnionConsistency(
    const std::vector<TreeExample>& positives,
    const std::vector<TreeExample>& negatives) {
  UnionConsistencyReport report;
  for (size_t p = 0; p < positives.size(); ++p) {
    // The most-specific query of the positive: its answers are exactly the
    // nodes selected by EVERY twig consistent with this positive, so hitting
    // a negative here dooms any union, and missing all negatives means the
    // union of most-specific queries is itself a consistent witness.
    const twig::TwigQuery most_specific = ExampleToQuery(positives[p]);
    for (size_t n = 0; n < negatives.size(); ++n) {
      if (twig::Selects(most_specific, *negatives[n].doc,
                        negatives[n].node)) {
        report.consistent = false;
        report.blocking_positive = p;
        report.blocking_negative = n;
        return report;
      }
    }
  }
  report.consistent = true;
  return report;
}

namespace {

/// True iff `q` selects no negative example.
bool NegativeFree(const twig::TwigQuery& q,
                  const std::vector<TreeExample>& negatives) {
  for (const TreeExample& n : negatives) {
    if (twig::Selects(q, *n.doc, n.node)) return false;
  }
  return true;
}

/// A cluster of positive examples and the twig generalizing them.
struct Cluster {
  std::vector<size_t> members;  // indexes into positives
  twig::TwigQuery query;
};

}  // namespace

Result<UnionLearnResult> LearnTwigUnion(
    const std::vector<TreeExample>& positives,
    const std::vector<TreeExample>& negatives,
    const UnionLearnerOptions& options) {
  if (positives.empty()) {
    return Status::InvalidArgument("LearnTwigUnion needs positive examples");
  }
  const UnionConsistencyReport consistency =
      CheckUnionConsistency(positives, negatives);
  if (!consistency.consistent) {
    return Status::FailedPrecondition(
        "examples are union-inconsistent: every twig selecting positive #" +
        std::to_string(consistency.blocking_positive) +
        " also selects negative #" +
        std::to_string(consistency.blocking_negative));
  }

  // Seed: one disjunct per positive. LearnTwig({e}) minimizes the
  // most-specific query, which keeps disjuncts small from the start.
  std::vector<Cluster> clusters;
  clusters.reserve(positives.size());
  for (size_t i = 0; i < positives.size(); ++i) {
    QLEARN_ASSIGN_OR_RETURN(twig::TwigQuery q,
                            LearnTwig({positives[i]}, options.learner));
    if (!NegativeFree(q, negatives)) {
      // Fall back to the unminimized most-specific query: minimization can
      // only generalize, so the raw query is negative-free by the
      // consistency check above.
      q = ExampleToQuery(positives[i]);
    }
    clusters.push_back(Cluster{{i}, std::move(q)});
  }

  UnionLearnResult result;
  // Greedy agglomeration: merge the pair whose generalization stays
  // negative-free and shrinks the union the most.
  bool can_merge = true;
  while (can_merge && clusters.size() > 1) {
    can_merge = false;
    size_t best_a = 0;
    size_t best_b = 0;
    twig::TwigQuery best_query;
    long best_gain = 0;
    bool found = false;
    for (size_t a = 0; a < clusters.size(); ++a) {
      for (size_t b = a + 1; b < clusters.size(); ++b) {
        std::vector<TreeExample> merged_examples;
        for (size_t i : clusters[a].members) {
          merged_examples.push_back(positives[i]);
        }
        for (size_t i : clusters[b].members) {
          merged_examples.push_back(positives[i]);
        }
        auto merged = LearnTwig(merged_examples, options.learner);
        if (!merged.ok()) continue;
        if (!NegativeFree(merged.value(), negatives)) {
          ++result.merges_blocked;
          continue;
        }
        const long gain =
            static_cast<long>(clusters[a].query.Size()) +
            static_cast<long>(clusters[b].query.Size()) -
            static_cast<long>(merged.value().Size());
        const bool must_merge = clusters.size() >
                                options.max_disjuncts;  // over budget
        if (!found || gain > best_gain) {
          best_a = a;
          best_b = b;
          best_query = merged.value();
          best_gain = gain;
          found = true;
        }
        if (!must_merge && options.stop_when_no_gain && gain <= 0) {
          continue;  // recorded as candidate only if over budget
        }
      }
    }
    if (!found) break;
    const bool over_budget = clusters.size() > options.max_disjuncts;
    if (!over_budget && options.stop_when_no_gain && best_gain <= 0) break;

    Cluster merged_cluster;
    merged_cluster.members = clusters[best_a].members;
    merged_cluster.members.insert(merged_cluster.members.end(),
                                  clusters[best_b].members.begin(),
                                  clusters[best_b].members.end());
    merged_cluster.query = std::move(best_query);
    clusters.erase(clusters.begin() + static_cast<long>(best_b));
    clusters.erase(clusters.begin() + static_cast<long>(best_a));
    clusters.push_back(std::move(merged_cluster));
    ++result.merges;
    can_merge = true;
  }

  if (clusters.size() > options.max_disjuncts) {
    return Status::ResourceExhausted(
        "negatives block every merge below the disjunct budget (" +
        std::to_string(clusters.size()) + " > " +
        std::to_string(options.max_disjuncts) + ")");
  }

  for (Cluster& c : clusters) {
    result.query.AddDisjunct(std::move(c.query));
  }
  return result;
}

}  // namespace learn
}  // namespace qlearn
