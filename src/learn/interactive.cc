#include "learn/interactive.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "twig/twig_containment.h"

namespace qlearn {
namespace learn {

using common::Result;
using common::Status;
using session::CandidateState;
using twig::TwigQuery;
using xml::NodeId;

TwigEngine::TwigEngine(const xml::XmlTree* doc, NodeId seed,
                       const InteractiveTwigOptions& options)
    : doc_(doc),
      options_(options),
      hypothesis_(ExampleToQuery(TreeExample{doc, seed})) {
  frontier_.Reserve(doc->NumNodes());
  for (NodeId v = 0; v < doc->NumNodes(); ++v) {
    frontier_.Add(v);
  }
  // The seed is a pre-labeled positive: closed, but never "asked".
  frontier_.MarkLabeled(seed, /*positive=*/true);
}

std::optional<TwigQuery> TwigEngine::Extended(NodeId v) const {
  auto g = GeneralizePair(hypothesis_, ExampleToQuery(TreeExample{doc_, v}),
                          options_.learner);
  if (!g.ok()) return std::nullopt;
  return std::move(g).value();
}

const std::optional<TwigEngine::SelectedSet>& TwigEngine::SelectedBy(NodeId v) {
  return frontier_.MemoOf(v, [this](size_t k) -> std::optional<SelectedSet> {
    auto h2 = Extended(static_cast<NodeId>(k));
    if (!h2.has_value()) return std::nullopt;
    twig::TwigEvaluator eval2(*h2, *doc_);
    SelectedSet selected;  // ascending, so propagation can binary-search
    for (NodeId u = 0; u < doc_->NumNodes(); ++u) {
      if (eval2.Selects(u)) selected.push_back(u);
    }
    return selected;
  });
}

std::optional<NodeId> TwigEngine::SelectQuestion(common::Rng* rng) {
  std::optional<size_t> pick;
  if (options_.strategy == TwigStrategy::kRandom) {
    pick = frontier_.Select(session::UniformRandomStrategy{}, rng);
  } else {
    // Greedy impact: the candidate whose positive answer would settle the
    // most currently-open nodes. The selected-sets are memoized per
    // hypothesis; only the intersection with the open set is recounted.
    pick = frontier_.Select(
        session::Greedy<long>(
            0,
            [this](size_t v) -> std::optional<long> {
              const std::optional<SelectedSet>& selected =
                  SelectedBy(static_cast<NodeId>(v));
              if (!selected.has_value()) return std::nullopt;
              long impact = 0;
              for (NodeId u : *selected) {
                if (frontier_.IsOpen(u)) ++impact;
              }
              return impact;
            }),
        rng);
  }
  if (!pick.has_value()) return std::nullopt;
  return static_cast<NodeId>(*pick);
}

void TwigEngine::MarkAsked(const NodeId& item) { frontier_.MarkAsked(item); }

void TwigEngine::Observe(const NodeId& item, bool positive,
                         session::SessionStats* stats) {
  frontier_.MarkLabeled(item, positive);
  hypothesis_advanced_ = false;
  if (positive) {
    auto h2 = Extended(item);
    if (!h2.has_value()) {
      ++stats->conflicts;  // target outside the anchored class
    } else {
      hypothesis_ = std::move(*h2);
      // Every selected-set was computed against the old hypothesis.
      frontier_.InvalidateAll();
      hypothesis_advanced_ = true;
    }
  } else {
    negatives_.push_back(item);
    // Negative answers leave the hypothesis — and thus every memoized
    // selected-set — untouched: nothing to invalidate.
  }
}

void TwigEngine::OnPositive(const NodeId& /*item*/) {
  // A conflicting positive leaves the hypothesis untouched; only a real
  // generalization changes the propagation predicates.
  if (hypothesis_advanced_) prop_.RecordHypothesisChange();
}

void TwigEngine::OnNegative(const NodeId& item) { prop_.RecordNegative(item); }

void TwigEngine::Propagate(session::SessionStats* stats) {
  if (reference_propagation_) {
    ReferencePropagate(stats);
    prop_.MarkFullPassDone();
    prop_.InvalidateWitnesses();
  } else if (prop_.NeedsFullPass()) {
    FullPropagate(stats);
    prop_.MarkFullPassDone();
    // The node buckets were built for the old hypothesis; the next
    // negative delta rebuilds them from the fresh selected-set memos.
    prop_.InvalidateWitnesses();
  } else {
    ApplyNegativeDeltas(stats);
  }
#ifndef NDEBUG
  AssertPropagationFixpoint();
#endif
}

void TwigEngine::ReferencePropagate(session::SessionStats* stats) {
  twig::TwigEvaluator eval(hypothesis_, *doc_);
  for (NodeId v = 0; v < doc_->NumNodes(); ++v) {
    // Unlabeled nodes (including discarded in-flight questions) and earlier
    // forced negatives are eligible: a grown hypothesis can reach nodes a
    // smaller one had ruled out.
    const CandidateState state = frontier_.state(v);
    if (state != CandidateState::kUnknown &&
        state != CandidateState::kAsked &&
        state != CandidateState::kForcedNegative) {
      continue;
    }
    if (eval.Selects(v)) {
      // Every consistent generalization of the hypothesis selects v.
      frontier_.MarkForced(v, /*positive=*/true);
      ++stats->forced_positive;
    }
  }
  // Forced negatives: joining v would force selecting a known negative.
  for (NodeId v = 0; v < doc_->NumNodes(); ++v) {
    const CandidateState state = frontier_.state(v);
    if (state != CandidateState::kUnknown &&
        state != CandidateState::kAsked) {
      continue;
    }
    const std::optional<SelectedSet>& selected = SelectedBy(v);
    if (!selected.has_value()) {
      frontier_.MarkForced(v, /*positive=*/false);
      ++stats->forced_negative;
      continue;
    }
    for (NodeId neg : negatives_) {
      if (std::binary_search(selected->begin(), selected->end(), neg)) {
        frontier_.MarkForced(v, /*positive=*/false);
        ++stats->forced_negative;
        break;
      }
    }
  }
}

void TwigEngine::FullPropagate(session::SessionStats* stats) {
  // Forced positives: one evaluator sweep under the (possibly just-grown)
  // hypothesis — same eligibility as the historical pass, including the
  // forced-negative → forced-positive upgrade.
  twig::TwigEvaluator eval(hypothesis_, *doc_);
  for (NodeId v = 0; v < doc_->NumNodes(); ++v) {
    const CandidateState state = frontier_.state(v);
    if (state != CandidateState::kUnknown &&
        state != CandidateState::kAsked &&
        state != CandidateState::kForcedNegative) {
      continue;
    }
    if (eval.Selects(v)) {
      frontier_.MarkForced(v, /*positive=*/true);
      ++stats->forced_positive;
    }
  }
  if (negatives_.empty()) {
    // With no negative yet, the only convictable candidates are the
    // out-of-class ones (no anchored generalization exists). That is
    // decidable from GeneralizePair alone — no need to materialize the
    // full selected-set of every open candidate just to detect it; greedy
    // scoring computes the sets it needs later, random strategies never do.
    for (NodeId v = 0; v < doc_->NumNodes(); ++v) {
      const CandidateState state = frontier_.state(v);
      if (state != CandidateState::kUnknown &&
          state != CandidateState::kAsked) {
        continue;
      }
      if (!Extended(v).has_value()) {
        frontier_.MarkForced(v, /*positive=*/false);
        ++stats->forced_negative;
      }
    }
    return;
  }
  // Forced negatives against the accumulated negative set: the hypothesis
  // changed, so every selected-set is recomputed (memoized for scoring).
  for (NodeId v = 0; v < doc_->NumNodes(); ++v) {
    const CandidateState state = frontier_.state(v);
    if (state != CandidateState::kUnknown &&
        state != CandidateState::kAsked) {
      continue;
    }
    const std::optional<SelectedSet>& selected = SelectedBy(v);
    if (!selected.has_value()) {
      frontier_.MarkForced(v, /*positive=*/false);
      ++stats->forced_negative;
      continue;
    }
    for (NodeId neg : negatives_) {
      if (std::binary_search(selected->begin(), selected->end(), neg)) {
        frontier_.MarkForced(v, /*positive=*/false);
        ++stats->forced_negative;
        break;
      }
    }
  }
}

void TwigEngine::ApplyNegativeDeltas(session::SessionStats* stats) {
  std::vector<NodeId> deltas = prop_.TakeDeltas();
  if (deltas.empty()) return;
  // The hypothesis is unchanged, so no new forced positives exist and the
  // memoized selected-sets are still valid: each new negative settles
  // exactly its witness bucket.
  if (!prop_.WitnessesValid()) RebuildWitnessIndex();
  for (NodeId neg : deltas) {
    prop_.ConsumeBucket(neg, [&](std::vector<size_t>& members) {
      // Twig candidates witness many nodes, so entries settled by earlier
      // convictions (or by answers) linger in other buckets: evict them,
      // then force the survivors.
      PropagationT::Evict(&members, [&](size_t v) {
        const CandidateState state = frontier_.state(v);
        return state == CandidateState::kUnknown ||
               state == CandidateState::kAsked;
      });
      for (size_t v : members) {
        frontier_.MarkForced(v, /*positive=*/false);
        ++stats->forced_negative;
      }
    });
  }
}

void TwigEngine::RebuildWitnessIndex() {
  prop_.BeginWitnessRebuild();
  for (NodeId v = 0; v < doc_->NumNodes(); ++v) {
    const CandidateState state = frontier_.state(v);
    if (state != CandidateState::kUnknown &&
        state != CandidateState::kAsked) {
      continue;
    }
    const std::optional<SelectedSet>& selected = SelectedBy(v);
    // The preceding full pass settled every out-of-class candidate; a live
    // one always generalizes.
    assert(selected.has_value());
    if (!selected.has_value()) continue;
    for (NodeId u : *selected) prop_.AddWitness(u, v);
  }
}

#ifndef NDEBUG
void TwigEngine::AssertPropagationFixpoint() {
  // The historical full-rescan predicates must find nothing left to force:
  // the flush reached the same fixpoint (hence identical forced sets and
  // stats totals) as the full pass it replaced.
  twig::TwigEvaluator eval(hypothesis_, *doc_);
  for (NodeId v = 0; v < doc_->NumNodes(); ++v) {
    const CandidateState state = frontier_.state(v);
    if (state == CandidateState::kUnknown || state == CandidateState::kAsked ||
        state == CandidateState::kForcedNegative) {
      assert(!eval.Selects(v) && "delta flush missed a forced positive");
    }
    if (state != CandidateState::kUnknown &&
        state != CandidateState::kAsked) {
      continue;
    }
    const std::optional<SelectedSet>& selected = SelectedBy(v);
    assert(selected.has_value() &&
           "delta flush missed an out-of-class forced negative");
    if (!selected.has_value()) continue;
    for (NodeId neg : negatives_) {
      assert(!std::binary_search(selected->begin(), selected->end(), neg) &&
             "delta flush missed a forced negative");
    }
  }
}
#endif

TwigQuery TwigEngine::Finish(session::SessionStats* stats) {
  // Audit forced positives against the oracle-visible truth: conflicts mean
  // the target was outside the hypothesis class.
  twig::TwigEvaluator eval(hypothesis_, *doc_);
  for (NodeId neg : negatives_) {
    if (eval.Selects(neg)) ++stats->conflicts;
  }
  return twig::Minimize(hypothesis_);
}

Result<InteractiveTwigResult> RunInteractiveTwigSession(
    const xml::XmlTree& doc, NodeId seed, TwigOracle* oracle,
    const InteractiveTwigOptions& options) {
  if (!oracle->IsPositive(doc, seed)) {
    return Status::InvalidArgument("seed node must be a positive example");
  }
  session::SessionOptions session_options;
  session_options.seed = options.seed;
  session_options.max_questions = options.max_questions;
  session::LearningSession<TwigEngine> session(TwigEngine(&doc, seed, options),
                                               session_options);

  InteractiveTwigResult result;
  result.query = session.Run(
      [&](NodeId node) { return oracle->IsPositive(doc, node); });
  const session::SessionStats& stats = session.stats();
  result.questions = stats.questions;
  result.forced_positive = stats.forced_positive;
  result.forced_negative = stats.forced_negative;
  result.conflicts = stats.conflicts;
  return result;
}

}  // namespace learn
}  // namespace qlearn
