#include "learn/interactive.h"

#include <algorithm>
#include <utility>

#include "twig/twig_containment.h"

namespace qlearn {
namespace learn {

using common::Result;
using common::Status;
using twig::TwigQuery;
using xml::NodeId;

TwigEngine::TwigEngine(const xml::XmlTree* doc, NodeId seed,
                       const InteractiveTwigOptions& options)
    : doc_(doc),
      options_(options),
      hypothesis_(ExampleToQuery(TreeExample{doc, seed})),
      state_(doc->NumNodes(), NodeState::kUnknown),
      asked_(doc->NumNodes(), false) {
  state_[seed] = NodeState::kPositive;
}

std::optional<TwigQuery> TwigEngine::Extended(NodeId v) const {
  auto g = GeneralizePair(hypothesis_, ExampleToQuery(TreeExample{doc_, v}),
                          options_.learner);
  if (!g.ok()) return std::nullopt;
  return std::move(g).value();
}

std::vector<NodeId> TwigEngine::Candidates() const {
  std::vector<NodeId> candidates;
  for (NodeId v = 0; v < doc_->NumNodes(); ++v) {
    if (state_[v] == NodeState::kUnknown && !asked_[v]) candidates.push_back(v);
  }
  return candidates;
}

std::optional<NodeId> TwigEngine::SelectQuestion(common::Rng* rng) {
  const std::vector<NodeId> candidates = Candidates();
  if (candidates.empty()) return std::nullopt;

  NodeId pick = candidates[0];
  if (options_.strategy == TwigStrategy::kRandom) {
    pick = candidates[rng->Index(candidates.size())];
  } else {
    // Greedy impact: the candidate whose positive answer would settle the
    // most currently-unknown nodes.
    size_t best_impact = 0;
    for (NodeId v : candidates) {
      auto h2 = Extended(v);
      if (!h2.has_value()) continue;
      twig::TwigEvaluator eval2(*h2, *doc_);
      size_t impact = 0;
      for (NodeId u : candidates) {
        if (eval2.Selects(u)) ++impact;
      }
      if (impact > best_impact) {
        best_impact = impact;
        pick = v;
      }
    }
  }
  return pick;
}

void TwigEngine::MarkAsked(const NodeId& item) { asked_[item] = true; }

void TwigEngine::Observe(const NodeId& item, bool positive,
                         session::SessionStats* stats) {
  if (positive) {
    state_[item] = NodeState::kPositive;
    auto h2 = Extended(item);
    if (!h2.has_value()) {
      ++stats->conflicts;  // target outside the anchored class
    } else {
      hypothesis_ = std::move(*h2);
    }
  } else {
    state_[item] = NodeState::kNegative;
    negatives_.push_back(item);
  }
}

void TwigEngine::Propagate(session::SessionStats* stats) {
  twig::TwigEvaluator eval(hypothesis_, *doc_);
  for (NodeId v = 0; v < doc_->NumNodes(); ++v) {
    if (state_[v] != NodeState::kUnknown &&
        state_[v] != NodeState::kForcedNegative) {
      continue;
    }
    if (eval.Selects(v)) {
      // Every consistent generalization of the hypothesis selects v.
      state_[v] = NodeState::kForcedPositive;
      ++stats->forced_positive;
    }
  }
  // Forced negatives: joining v would force selecting a known negative.
  for (NodeId v = 0; v < doc_->NumNodes(); ++v) {
    if (state_[v] != NodeState::kUnknown) continue;
    auto h2 = Extended(v);
    if (!h2.has_value()) {
      state_[v] = NodeState::kForcedNegative;
      ++stats->forced_negative;
      continue;
    }
    twig::TwigEvaluator eval2(*h2, *doc_);
    for (NodeId neg : negatives_) {
      if (eval2.Selects(neg)) {
        state_[v] = NodeState::kForcedNegative;
        ++stats->forced_negative;
        break;
      }
    }
  }
}

TwigQuery TwigEngine::Finish(session::SessionStats* stats) {
  // Audit forced positives against the oracle-visible truth: conflicts mean
  // the target was outside the hypothesis class.
  twig::TwigEvaluator eval(hypothesis_, *doc_);
  for (NodeId neg : negatives_) {
    if (eval.Selects(neg)) ++stats->conflicts;
  }
  return twig::Minimize(hypothesis_);
}

bool TwigEngine::HasForcedLabel(NodeId node) const {
  return state_[node] == NodeState::kForcedPositive ||
         state_[node] == NodeState::kForcedNegative;
}

Result<InteractiveTwigResult> RunInteractiveTwigSession(
    const xml::XmlTree& doc, NodeId seed, TwigOracle* oracle,
    const InteractiveTwigOptions& options) {
  if (!oracle->IsPositive(doc, seed)) {
    return Status::InvalidArgument("seed node must be a positive example");
  }
  session::SessionOptions session_options;
  session_options.seed = options.seed;
  session_options.max_questions = options.max_questions;
  session::LearningSession<TwigEngine> session(TwigEngine(&doc, seed, options),
                                               session_options);

  InteractiveTwigResult result;
  result.query = session.Run(
      [&](NodeId node) { return oracle->IsPositive(doc, node); });
  const session::SessionStats& stats = session.stats();
  result.questions = stats.questions;
  result.forced_positive = stats.forced_positive;
  result.forced_negative = stats.forced_negative;
  result.conflicts = stats.conflicts;
  return result;
}

}  // namespace learn
}  // namespace qlearn
