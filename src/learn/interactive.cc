#include "learn/interactive.h"

#include <algorithm>
#include <utility>

#include "twig/twig_containment.h"

namespace qlearn {
namespace learn {

using common::Result;
using common::Status;
using session::CandidateState;
using twig::TwigQuery;
using xml::NodeId;

TwigEngine::TwigEngine(const xml::XmlTree* doc, NodeId seed,
                       const InteractiveTwigOptions& options)
    : doc_(doc),
      options_(options),
      hypothesis_(ExampleToQuery(TreeExample{doc, seed})) {
  frontier_.Reserve(doc->NumNodes());
  for (NodeId v = 0; v < doc->NumNodes(); ++v) {
    frontier_.Add(v);
  }
  // The seed is a pre-labeled positive: closed, but never "asked".
  frontier_.MarkLabeled(seed, /*positive=*/true);
}

std::optional<TwigQuery> TwigEngine::Extended(NodeId v) const {
  auto g = GeneralizePair(hypothesis_, ExampleToQuery(TreeExample{doc_, v}),
                          options_.learner);
  if (!g.ok()) return std::nullopt;
  return std::move(g).value();
}

const std::optional<TwigEngine::SelectedSet>& TwigEngine::SelectedBy(NodeId v) {
  return frontier_.MemoOf(v, [this](size_t k) -> std::optional<SelectedSet> {
    auto h2 = Extended(static_cast<NodeId>(k));
    if (!h2.has_value()) return std::nullopt;
    twig::TwigEvaluator eval2(*h2, *doc_);
    SelectedSet selected;  // ascending, so propagation can binary-search
    for (NodeId u = 0; u < doc_->NumNodes(); ++u) {
      if (eval2.Selects(u)) selected.push_back(u);
    }
    return selected;
  });
}

std::optional<NodeId> TwigEngine::SelectQuestion(common::Rng* rng) {
  std::optional<size_t> pick;
  if (options_.strategy == TwigStrategy::kRandom) {
    pick = frontier_.Select(session::UniformRandomStrategy{}, rng);
  } else {
    // Greedy impact: the candidate whose positive answer would settle the
    // most currently-open nodes. The selected-sets are memoized per
    // hypothesis; only the intersection with the open set is recounted.
    pick = frontier_.Select(
        session::Greedy<long>(
            0,
            [this](size_t v) -> std::optional<long> {
              const std::optional<SelectedSet>& selected =
                  SelectedBy(static_cast<NodeId>(v));
              if (!selected.has_value()) return std::nullopt;
              long impact = 0;
              for (NodeId u : *selected) {
                if (frontier_.IsOpen(u)) ++impact;
              }
              return impact;
            }),
        rng);
  }
  if (!pick.has_value()) return std::nullopt;
  return static_cast<NodeId>(*pick);
}

void TwigEngine::MarkAsked(const NodeId& item) { frontier_.MarkAsked(item); }

void TwigEngine::Observe(const NodeId& item, bool positive,
                         session::SessionStats* stats) {
  frontier_.MarkLabeled(item, positive);
  if (positive) {
    auto h2 = Extended(item);
    if (!h2.has_value()) {
      ++stats->conflicts;  // target outside the anchored class
    } else {
      hypothesis_ = std::move(*h2);
      // Every selected-set was computed against the old hypothesis.
      frontier_.InvalidateAll();
    }
  } else {
    negatives_.push_back(item);
    // Negative answers leave the hypothesis — and thus every memoized
    // selected-set — untouched: nothing to invalidate.
  }
}

void TwigEngine::Propagate(session::SessionStats* stats) {
  twig::TwigEvaluator eval(hypothesis_, *doc_);
  for (NodeId v = 0; v < doc_->NumNodes(); ++v) {
    // Unlabeled nodes (including discarded in-flight questions) and earlier
    // forced negatives are eligible: a grown hypothesis can reach nodes a
    // smaller one had ruled out.
    const CandidateState state = frontier_.state(v);
    if (state != CandidateState::kUnknown &&
        state != CandidateState::kAsked &&
        state != CandidateState::kForcedNegative) {
      continue;
    }
    if (eval.Selects(v)) {
      // Every consistent generalization of the hypothesis selects v.
      frontier_.MarkForced(v, /*positive=*/true);
      ++stats->forced_positive;
    }
  }
  // Forced negatives: joining v would force selecting a known negative.
  for (NodeId v = 0; v < doc_->NumNodes(); ++v) {
    const CandidateState state = frontier_.state(v);
    if (state != CandidateState::kUnknown &&
        state != CandidateState::kAsked) {
      continue;
    }
    const std::optional<SelectedSet>& selected = SelectedBy(v);
    if (!selected.has_value()) {
      frontier_.MarkForced(v, /*positive=*/false);
      ++stats->forced_negative;
      continue;
    }
    for (NodeId neg : negatives_) {
      if (std::binary_search(selected->begin(), selected->end(), neg)) {
        frontier_.MarkForced(v, /*positive=*/false);
        ++stats->forced_negative;
        break;
      }
    }
  }
}

TwigQuery TwigEngine::Finish(session::SessionStats* stats) {
  // Audit forced positives against the oracle-visible truth: conflicts mean
  // the target was outside the hypothesis class.
  twig::TwigEvaluator eval(hypothesis_, *doc_);
  for (NodeId neg : negatives_) {
    if (eval.Selects(neg)) ++stats->conflicts;
  }
  return twig::Minimize(hypothesis_);
}

Result<InteractiveTwigResult> RunInteractiveTwigSession(
    const xml::XmlTree& doc, NodeId seed, TwigOracle* oracle,
    const InteractiveTwigOptions& options) {
  if (!oracle->IsPositive(doc, seed)) {
    return Status::InvalidArgument("seed node must be a positive example");
  }
  session::SessionOptions session_options;
  session_options.seed = options.seed;
  session_options.max_questions = options.max_questions;
  session::LearningSession<TwigEngine> session(TwigEngine(&doc, seed, options),
                                               session_options);

  InteractiveTwigResult result;
  result.query = session.Run(
      [&](NodeId node) { return oracle->IsPositive(doc, node); });
  const session::SessionStats& stats = session.stats();
  result.questions = stats.questions;
  result.forced_positive = stats.forced_positive;
  result.forced_negative = stats.forced_negative;
  result.conflicts = stats.conflicts;
  return result;
}

}  // namespace learn
}  // namespace qlearn
