#include "learn/interactive.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "twig/twig_containment.h"

namespace qlearn {
namespace learn {

using common::Result;
using common::Status;
using session::CandidateState;
using twig::TwigQuery;
using xml::NodeId;

namespace {

/// "QLTE" little-endian: the twig-engine snapshot blob tag.
constexpr uint32_t kTwigEngineMagic = 0x45544C51u;
constexpr uint32_t kTwigEngineVersion = 1;

}  // namespace

TwigEngine::TwigEngine(const xml::XmlTree* doc, NodeId seed,
                       const InteractiveTwigOptions& options)
    : doc_(doc),
      options_(options),
      hypothesis_(ExampleToQuery(TreeExample{doc, seed})) {
  frontier_.Reserve(doc->NumNodes());
  // One plane and one row column per doc node: rows are the candidates'
  // selected-sets, planes their transpose (the witness index). Rows pin
  // dense slot == candidate id == NodeId.
  store_.Reset(doc->NumNodes(), doc->NumNodes());
  store_.ConfigureRows(doc->NumNodes());
  neg_words_.assign(store_.row_words(), 0);
  for (NodeId v = 0; v < doc->NumNodes(); ++v) {
    frontier_.Add(v);
  }
  // The seed is a pre-labeled positive: closed, but never "asked".
  frontier_.MarkLabeled(seed, /*positive=*/true);
  store_.OnSettled(seed);
}

std::optional<TwigQuery> TwigEngine::Extended(NodeId v) const {
  auto g = GeneralizePair(hypothesis_, ExampleToQuery(TreeExample{doc_, v}),
                          options_.learner);
  if (!g.ok()) return std::nullopt;
  return std::move(g).value();
}

bool TwigEngine::EnsureRow(NodeId v) {
  if (!store_.RowFresh(v)) {
    auto h2 = Extended(v);
    if (!h2.has_value()) {
      store_.MarkRowAbsent(v);
    } else {
      twig::TwigEvaluator eval2(*h2, *doc_);
      uint64_t* row = store_.BeginRow(v);
      for (NodeId u = 0; u < doc_->NumNodes(); ++u) {
        if (eval2.Selects(u)) row[u / 64] |= 1ULL << (u % 64);
      }
    }
  }
  return store_.RowPresent(v);
}

std::optional<NodeId> TwigEngine::SelectQuestion(common::Rng* rng) {
  std::optional<size_t> pick;
  if (options_.strategy == TwigStrategy::kRandom) {
    pick = frontier_.Select(session::UniformRandomStrategy{}, rng);
  } else {
    // Greedy impact: the candidate whose positive answer would settle the
    // most currently-open nodes. The selected-set rows are materialized
    // once per hypothesis; the intersection with the open set is one
    // word-wise popcount against the store's open bit-vector.
    pick = frontier_.Select(
        session::Greedy<long>(
            0,
            [this](size_t v) -> std::optional<long> {
              if (!EnsureRow(static_cast<NodeId>(v))) return std::nullopt;
              return static_cast<long>(
                  store_.PopcountRowAnd(v, store_.open_words()));
            }),
        rng);
  }
  if (!pick.has_value()) return std::nullopt;
  return static_cast<NodeId>(*pick);
}

void TwigEngine::MarkAsked(const NodeId& item) {
  frontier_.MarkAsked(item);
  store_.OnAsked(item);
}

void TwigEngine::Observe(const NodeId& item, bool positive,
                         session::SessionStats* stats) {
  frontier_.MarkLabeled(item, positive);
  store_.OnSettled(item);
  hypothesis_advanced_ = false;
  if (positive) {
    auto h2 = Extended(item);
    if (!h2.has_value()) {
      ++stats->conflicts;  // target outside the anchored class
    } else {
      hypothesis_ = std::move(*h2);
      // Every selected-set row was computed against the old hypothesis.
      frontier_.InvalidateAll();
      store_.InvalidateRows();
      hypothesis_advanced_ = true;
    }
  } else {
    negatives_.push_back(item);
    neg_words_[item / 64] |= 1ULL << (item % 64);
    // Negative answers leave the hypothesis — and thus every memoized
    // selected-set row — untouched: nothing to invalidate.
  }
}

void TwigEngine::OnPositive(const NodeId& /*item*/) {
  // A conflicting positive leaves the hypothesis untouched; only a real
  // generalization changes the propagation predicates.
  if (hypothesis_advanced_) prop_.RecordHypothesisChange();
}

void TwigEngine::OnNegative(const NodeId& item) { prop_.RecordNegative(item); }

void TwigEngine::Propagate(session::SessionStats* stats) {
  if (reference_propagation_) {
    ReferencePropagate(stats);
    prop_.MarkFullPassDone();
    prop_.InvalidateWitnesses();
  } else if (prop_.NeedsFullPass()) {
    FullPropagate(stats);
    prop_.MarkFullPassDone();
    // The witness planes were transposed from the old hypothesis' rows;
    // the next negative delta rebuilds them from the fresh rows.
    prop_.InvalidateWitnesses();
  } else {
    ApplyNegativeDeltas(stats);
  }
#ifndef NDEBUG
  AssertPropagationFixpoint();
#endif
}

void TwigEngine::ReferencePropagate(session::SessionStats* stats) {
  twig::TwigEvaluator eval(hypothesis_, *doc_);
  for (NodeId v = 0; v < doc_->NumNodes(); ++v) {
    // Unlabeled nodes (including discarded in-flight questions) and earlier
    // forced negatives are eligible: a grown hypothesis can reach nodes a
    // smaller one had ruled out.
    const CandidateState state = frontier_.state(v);
    if (state != CandidateState::kUnknown &&
        state != CandidateState::kAsked &&
        state != CandidateState::kForcedNegative) {
      continue;
    }
    if (eval.Selects(v)) {
      // Every consistent generalization of the hypothesis selects v.
      frontier_.MarkForced(v, /*positive=*/true);
      store_.OnSettled(v);
      ++stats->forced_positive;
    }
  }
  // Forced negatives: joining v would force selecting a known negative.
  for (NodeId v = 0; v < doc_->NumNodes(); ++v) {
    const CandidateState state = frontier_.state(v);
    if (state != CandidateState::kUnknown &&
        state != CandidateState::kAsked) {
      continue;
    }
    if (!EnsureRow(v) || store_.RowIntersects(v, neg_words_.data())) {
      frontier_.MarkForced(v, /*positive=*/false);
      store_.OnSettled(v);
      ++stats->forced_negative;
    }
  }
}

void TwigEngine::FullPropagate(session::SessionStats* stats) {
  // Forced positives: one evaluator sweep under the (possibly just-grown)
  // hypothesis — same eligibility as the historical pass, including the
  // forced-negative → forced-positive upgrade.
  twig::TwigEvaluator eval(hypothesis_, *doc_);
  for (NodeId v = 0; v < doc_->NumNodes(); ++v) {
    const CandidateState state = frontier_.state(v);
    if (state != CandidateState::kUnknown &&
        state != CandidateState::kAsked &&
        state != CandidateState::kForcedNegative) {
      continue;
    }
    if (eval.Selects(v)) {
      frontier_.MarkForced(v, /*positive=*/true);
      store_.OnSettled(v);
      ++stats->forced_positive;
    }
  }
  if (negatives_.empty()) {
    // With no negative yet, the only convictable candidates are the
    // out-of-class ones (no anchored generalization exists). That is
    // decidable from GeneralizePair alone — no need to materialize the
    // full selected-set row of every open candidate just to detect it;
    // greedy scoring computes the rows it needs later, random strategies
    // never do.
    for (NodeId v = 0; v < doc_->NumNodes(); ++v) {
      const CandidateState state = frontier_.state(v);
      if (state != CandidateState::kUnknown &&
          state != CandidateState::kAsked) {
        continue;
      }
      if (!Extended(v).has_value()) {
        frontier_.MarkForced(v, /*positive=*/false);
        store_.OnSettled(v);
        ++stats->forced_negative;
      }
    }
    return;
  }
  // Forced negatives against the accumulated negative set: the hypothesis
  // changed, so every selected-set row is rematerialized (and reused by
  // scoring); the per-candidate test is one word-wise intersection with
  // the negative bitset.
  for (NodeId v = 0; v < doc_->NumNodes(); ++v) {
    const CandidateState state = frontier_.state(v);
    if (state != CandidateState::kUnknown &&
        state != CandidateState::kAsked) {
      continue;
    }
    if (!EnsureRow(v) || store_.RowIntersects(v, neg_words_.data())) {
      frontier_.MarkForced(v, /*positive=*/false);
      store_.OnSettled(v);
      ++stats->forced_negative;
    }
  }
}

void TwigEngine::ApplyNegativeDeltas(session::SessionStats* stats) {
  std::vector<NodeId> deltas = prop_.TakeDeltas();
  if (deltas.empty()) return;
  // The hypothesis is unchanged, so no new forced positives exist and the
  // selected-set rows are still valid: each new negative settles exactly
  // the active candidates whose row holds it — active ∧ plane(neg), one
  // word-parallel sweep over the transposed witness planes.
  if (!prop_.WitnessesValid()) RebuildWitnessPlanes();
  for (NodeId neg : deltas) {
    store_.CopyActive(&scratch_);
    store_.AndPlanes(neg, 1, scratch_.data());
    session::ForEachSetBit(scratch_.data(), scratch_.size(), [&](size_t v) {
      // Rows pin dense slot == candidate id.
      frontier_.MarkForced(v, /*positive=*/false);
      store_.OnSettled(v);
      ++stats->forced_negative;
    });
  }
}

void TwigEngine::RebuildWitnessPlanes() {
  for (NodeId v = 0; v < doc_->NumNodes(); ++v) {
    if (!store_.IsActive(v)) continue;
    // The preceding full pass settled every out-of-class candidate; a live
    // one always generalizes.
    const bool present = EnsureRow(v);
    assert(present && "live candidate without an anchored generalization");
    (void)present;
  }
  store_.TransposeActiveRowsToPlanes();
  prop_.BeginWitnessRebuild();  // planes now match the current hypothesis
}

size_t TwigEngine::WitnessBucketsForTest() const {
  // The plane-sweep analogue of the historical bucket count: document
  // nodes witnessed by at least one live candidate. O(n²) probe, test-only.
  size_t live_nodes = 0;
  for (NodeId u = 0; u < doc_->NumNodes(); ++u) {
    bool any = false;
    for (NodeId v = 0; v < doc_->NumNodes() && !any; ++v) {
      any = store_.IsActive(v) && store_.PlaneBitForTest(u, v);
    }
    if (any) ++live_nodes;
  }
  return live_nodes;
}

#ifndef NDEBUG
void TwigEngine::AssertPropagationFixpoint() {
  // The historical full-rescan predicates must find nothing left to force:
  // the flush reached the same fixpoint (hence identical forced sets and
  // stats totals) as the full pass it replaced.
  twig::TwigEvaluator eval(hypothesis_, *doc_);
  for (NodeId v = 0; v < doc_->NumNodes(); ++v) {
    const CandidateState state = frontier_.state(v);
    if (state == CandidateState::kUnknown || state == CandidateState::kAsked ||
        state == CandidateState::kForcedNegative) {
      assert(!eval.Selects(v) && "delta flush missed a forced positive");
    }
    if (state != CandidateState::kUnknown &&
        state != CandidateState::kAsked) {
      continue;
    }
    assert(store_.IsActive(v) && "store active bit out of sync with frontier");
    const bool present = EnsureRow(v);
    assert(present && "delta flush missed an out-of-class forced negative");
    if (!present) continue;
    assert(!store_.RowIntersects(v, neg_words_.data()) &&
           "delta flush missed a forced negative");
  }
}
#endif

void TwigEngine::SerializeSnapshot(session::SnapshotWriter* writer) const {
  writer->WriteU32(kTwigEngineMagic);
  writer->WriteU32(kTwigEngineVersion);
  writer->WriteU8(static_cast<uint8_t>(options_.strategy));
  // Hypothesis tree, structurally: nodes are written in id order (a parent
  // always precedes its children by construction), so restore is one
  // AddNode loop.
  writer->WriteU32(static_cast<uint32_t>(hypothesis_.NumNodes()));
  for (twig::QNodeId q = 1; q < hypothesis_.NumNodes(); ++q) {
    writer->WriteU32(hypothesis_.parent(q));
    writer->WriteU8(static_cast<uint8_t>(hypothesis_.axis(q)));
    writer->WriteU32(hypothesis_.label(q));
  }
  writer->WriteU32(hypothesis_.selection());
  writer->WriteU32(static_cast<uint32_t>(hypothesis_.marked().size()));
  for (twig::QNodeId q : hypothesis_.marked()) writer->WriteU32(q);
  // Accumulated negatives (neg_words_ is their bitset mirror, rebuilt on
  // restore rather than serialized twice).
  writer->WriteU64(negatives_.size());
  for (NodeId v : negatives_) writer->WriteU32(v);
  frontier_.SerializeState(writer);
  store_.SerializeSnapshot(writer);
}

common::Status TwigEngine::RestoreSnapshot(session::SnapshotReader* reader) {
  uint32_t magic = 0, version = 0;
  uint8_t strategy = 0;
  Status s = reader->ReadU32(&magic);
  if (s.ok()) s = reader->ReadU32(&version);
  if (s.ok()) s = reader->ReadU8(&strategy);
  if (!s.ok()) return s;
  if (magic != kTwigEngineMagic) {
    return Status::InvalidArgument("not a twig-engine snapshot");
  }
  if (version != kTwigEngineVersion) {
    return Status::InvalidArgument("unsupported twig-engine snapshot version " +
                                   std::to_string(version));
  }
  if (strategy != static_cast<uint8_t>(options_.strategy)) {
    return Status::InvalidArgument(
        "twig-engine snapshot was taken under a different strategy");
  }
  uint32_t num_nodes = 0;
  s = reader->ReadU32(&num_nodes);
  if (!s.ok()) return s;
  if (num_nodes == 0) {
    return Status::InvalidArgument(
        "twig-engine snapshot hypothesis lacks the virtual root");
  }
  TwigQuery hypothesis;
  for (twig::QNodeId q = 1; q < num_nodes; ++q) {
    uint32_t parent = 0, label = 0;
    uint8_t axis = 0;
    s = reader->ReadU32(&parent);
    if (s.ok()) s = reader->ReadU8(&axis);
    if (s.ok()) s = reader->ReadU32(&label);
    if (!s.ok()) return s;
    if (parent >= q) {
      return Status::InvalidArgument(
          "twig-engine snapshot node " + std::to_string(q) +
          " has forward parent " + std::to_string(parent));
    }
    if (axis > static_cast<uint8_t>(twig::Axis::kDescendant)) {
      return Status::InvalidArgument(
          "twig-engine snapshot has invalid axis " + std::to_string(axis));
    }
    hypothesis.AddNode(parent, static_cast<twig::Axis>(axis), label);
  }
  uint32_t selection = 0, num_marked = 0;
  s = reader->ReadU32(&selection);
  if (s.ok()) s = reader->ReadU32(&num_marked);
  if (!s.ok()) return s;
  if (selection != twig::kInvalidQNode && selection >= num_nodes) {
    return Status::InvalidArgument(
        "twig-engine snapshot selection node out of range");
  }
  hypothesis.set_selection(selection);
  for (uint32_t i = 0; i < num_marked; ++i) {
    uint32_t q = 0;
    s = reader->ReadU32(&q);
    if (!s.ok()) return s;
    if (q >= num_nodes) {
      return Status::InvalidArgument(
          "twig-engine snapshot marked node out of range");
    }
    hypothesis.AddMarked(q);
  }
  uint64_t num_negatives = 0;
  s = reader->ReadU64(&num_negatives);
  if (!s.ok()) return s;
  std::vector<NodeId> negatives;
  negatives.reserve(static_cast<size_t>(
      std::min<uint64_t>(num_negatives, doc_->NumNodes())));
  for (uint64_t i = 0; i < num_negatives; ++i) {
    uint32_t v = 0;
    s = reader->ReadU32(&v);
    if (!s.ok()) return s;
    if (v >= doc_->NumNodes()) {
      return Status::InvalidArgument(
          "twig-engine snapshot negative node " + std::to_string(v) +
          " outside the document");
    }
    negatives.push_back(v);
  }
  s = frontier_.RestoreState(reader);
  if (!s.ok()) return s;
  s = store_.RestoreSnapshot(reader);
  if (!s.ok()) return s;

  hypothesis_ = std::move(hypothesis);
  negatives_ = std::move(negatives);
  neg_words_.assign(store_.row_words(), 0);
  for (NodeId v : negatives_) neg_words_[v / 64] |= 1ULL << (v % 64);
  hypothesis_advanced_ = false;
  // Snapshots are taken between answered turns: every queued delta was
  // flushed, so the restored engine starts in steady state. The witness
  // planes and selected-set rows were computed against whatever hypothesis
  // was live before the restore — both rebuild lazily from the restored
  // one (rows are not serialized and restart stale by store contract).
  prop_.MarkFullPassDone();
  prop_.InvalidateWitnesses();
  return Status::OK();
}

TwigQuery TwigEngine::Finish(session::SessionStats* stats) {
  // Audit forced positives against the oracle-visible truth: conflicts mean
  // the target was outside the hypothesis class.
  twig::TwigEvaluator eval(hypothesis_, *doc_);
  for (NodeId neg : negatives_) {
    if (eval.Selects(neg)) ++stats->conflicts;
  }
  return twig::Minimize(hypothesis_);
}

Result<InteractiveTwigResult> RunInteractiveTwigSession(
    const xml::XmlTree& doc, NodeId seed, TwigOracle* oracle,
    const InteractiveTwigOptions& options) {
  if (!oracle->IsPositive(doc, seed)) {
    return Status::InvalidArgument("seed node must be a positive example");
  }
  session::SessionOptions session_options;
  session_options.seed = options.seed;
  session_options.max_questions = options.max_questions;
  session::LearningSession<TwigEngine> session(TwigEngine(&doc, seed, options),
                                               session_options);

  InteractiveTwigResult result;
  result.query = session.Run(
      [&](NodeId node) { return oracle->IsPositive(doc, node); });
  const session::SessionStats& stats = session.stats();
  result.questions = stats.questions;
  result.forced_positive = stats.forced_positive;
  result.forced_negative = stats.forced_negative;
  result.conflicts = stats.conflicts;
  return result;
}

}  // namespace learn
}  // namespace qlearn
