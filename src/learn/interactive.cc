#include "learn/interactive.h"

#include <algorithm>
#include <optional>
#include <vector>

#include "twig/twig_containment.h"

namespace qlearn {
namespace learn {

using common::Result;
using common::Status;
using twig::TwigQuery;
using xml::NodeId;

namespace {

enum class NodeState : uint8_t {
  kUnknown,
  kPositive,        // labeled by the oracle
  kNegative,        // labeled by the oracle
  kForcedPositive,  // inferred: selected by the hypothesis
  kForcedNegative,  // inferred: would contradict a known negative
};

}  // namespace

Result<InteractiveTwigResult> RunInteractiveTwigSession(
    const xml::XmlTree& doc, NodeId seed, TwigOracle* oracle,
    const InteractiveTwigOptions& options) {
  if (!oracle->IsPositive(doc, seed)) {
    return Status::InvalidArgument("seed node must be a positive example");
  }
  common::Rng rng(options.seed);
  InteractiveTwigResult result;

  TwigQuery hypothesis = ExampleToQuery(TreeExample{&doc, seed});
  std::vector<NodeState> state(doc.NumNodes(), NodeState::kUnknown);
  state[seed] = NodeState::kPositive;
  std::vector<NodeId> negatives;

  // Hypothesis for doc-node v joined in, or nullopt if no anchored
  // generalization exists.
  auto extended = [&](NodeId v) -> std::optional<TwigQuery> {
    auto g = GeneralizePair(hypothesis, ExampleToQuery(TreeExample{&doc, v}),
                            options.learner);
    if (!g.ok()) return std::nullopt;
    return std::move(g).value();
  };

  auto refresh_forced = [&]() {
    twig::TwigEvaluator eval(hypothesis, doc);
    for (NodeId v = 0; v < doc.NumNodes(); ++v) {
      if (state[v] != NodeState::kUnknown &&
          state[v] != NodeState::kForcedNegative) {
        continue;
      }
      if (eval.Selects(v)) {
        // Every consistent generalization of the hypothesis selects v.
        state[v] = NodeState::kForcedPositive;
        ++result.forced_positive;
      }
    }
    // Forced negatives: joining v would force selecting a known negative.
    for (NodeId v = 0; v < doc.NumNodes(); ++v) {
      if (state[v] != NodeState::kUnknown) continue;
      auto h2 = extended(v);
      if (!h2.has_value()) {
        state[v] = NodeState::kForcedNegative;
        ++result.forced_negative;
        continue;
      }
      twig::TwigEvaluator eval2(*h2, doc);
      for (NodeId neg : negatives) {
        if (eval2.Selects(neg)) {
          state[v] = NodeState::kForcedNegative;
          ++result.forced_negative;
          break;
        }
      }
    }
  };

  refresh_forced();
  while (result.questions < options.max_questions) {
    // Collect informative candidates.
    std::vector<NodeId> candidates;
    for (NodeId v = 0; v < doc.NumNodes(); ++v) {
      if (state[v] == NodeState::kUnknown) candidates.push_back(v);
    }
    if (candidates.empty()) break;

    NodeId pick = candidates[0];
    if (options.strategy == TwigStrategy::kRandom) {
      pick = candidates[rng.Index(candidates.size())];
    } else {
      // Greedy impact: the candidate whose positive answer would settle the
      // most currently-unknown nodes.
      size_t best_impact = 0;
      for (NodeId v : candidates) {
        auto h2 = extended(v);
        if (!h2.has_value()) continue;
        twig::TwigEvaluator eval2(*h2, doc);
        size_t impact = 0;
        for (NodeId u : candidates) {
          if (eval2.Selects(u)) ++impact;
        }
        if (impact > best_impact) {
          best_impact = impact;
          pick = v;
        }
      }
    }

    ++result.questions;
    if (oracle->IsPositive(doc, pick)) {
      state[pick] = NodeState::kPositive;
      auto h2 = extended(pick);
      if (!h2.has_value()) {
        ++result.conflicts;  // target outside the anchored class
      } else {
        hypothesis = std::move(*h2);
      }
    } else {
      state[pick] = NodeState::kNegative;
      negatives.push_back(pick);
    }
    refresh_forced();
  }

  // Audit forced positives against the oracle-visible truth: conflicts mean
  // the target was outside the hypothesis class.
  twig::TwigEvaluator eval(hypothesis, doc);
  for (NodeId neg : negatives) {
    if (eval.Selects(neg)) ++result.conflicts;
  }

  result.query = twig::Minimize(hypothesis);
  return result;
}

}  // namespace learn
}  // namespace qlearn
