#include "learn/consistency.h"

#include <algorithm>
#include <functional>

#include "twig/twig_containment.h"
#include "twig/twig_eval.h"

namespace qlearn {
namespace learn {

using twig::QNodeId;
using twig::TwigQuery;

namespace {

/// Selection-path length of a query.
int PathLength(const TwigQuery& q) {
  int len = 0;
  for (QNodeId cur = q.selection(); cur != 0 && cur != twig::kInvalidQNode;
       cur = q.parent(cur)) {
    ++len;
  }
  return len;
}

/// Drops candidates that are strictly more general than another candidate
/// (keeps the most specific antichain) and structural duplicates.
void AntichainPrune(std::vector<TwigQuery>* candidates) {
  std::vector<TwigQuery> kept;
  for (size_t i = 0; i < candidates->size(); ++i) {
    const TwigQuery& q = (*candidates)[i];
    bool drop = false;
    for (size_t j = 0; j < candidates->size() && !drop; ++j) {
      if (i == j) continue;
      const TwigQuery& other = (*candidates)[j];
      if (other.StructurallyEquals(q)) {
        drop = j < i;  // keep the first representative
        continue;
      }
      // Drop q if `other` is strictly more specific (other ⊑ q).
      if (twig::ContainedInByHom(other, q) &&
          !twig::ContainedInByHom(q, other)) {
        drop = true;
      }
    }
    if (!drop) kept.push_back(q);
  }
  *candidates = std::move(kept);
}

}  // namespace

std::vector<TwigQuery> EnumerateGeneralizations(
    const TwigQuery& q1, const TwigQuery& q2,
    const TwigLearnerOptions& options, size_t cap) {
  return EnumerateGeneralizations(q1, q2, options, cap, /*max_steps=*/0,
                                  /*capped=*/nullptr);
}

std::vector<TwigQuery> EnumerateGeneralizations(
    const TwigQuery& q1, const TwigQuery& q2,
    const TwigLearnerOptions& options, size_t cap, size_t max_steps,
    bool* capped) {
  std::vector<TwigQuery> out;
  const int m = PathLength(q1);
  const int n = PathLength(q2);
  if (m == 0 || n == 0) return out;
  if (max_steps == 0) max_steps = 64 * (cap == 0 ? 1 : cap);
  size_t steps = 0;

  // Enumerate strictly-increasing chains of aligned pairs ending at
  // (m-1, n-1), each with per-step wildcard choices; BuildAlignedPattern
  // rejects infeasible combinations. The step budget matters: repeated-
  // label inputs have exponentially many chains that all collapse to a few
  // distinct patterns, so the output cap alone cannot stop the walk.
  auto over_budget = [&]() {
    if (steps <= max_steps) return false;
    if (capped != nullptr) *capped = true;
    return true;
  };
  std::vector<AlignmentStep> chain;  // built selection-to-root, reversed later
  std::function<void(int, int)> dfs = [&](int i, int j) {
    if (out.size() >= cap || over_budget()) return;
    ++steps;
    // Close the chain here (current pair is the pattern's first step).
    std::vector<AlignmentStep> steps_fwd(chain.rbegin(), chain.rend());
    auto pattern = BuildAlignedPattern(q1, q2, steps_fwd, options);
    if (pattern.ok()) {
      bool dup = false;
      for (const TwigQuery& existing : out) {
        if (existing.StructurallyEquals(pattern.value())) {
          dup = true;
          break;
        }
      }
      if (!dup) out.push_back(std::move(pattern).value());
    }
    // Extend with a predecessor pair.
    for (int pi = i - 1; pi >= 0 && out.size() < cap && !over_budget();
         --pi) {
      for (int pj = j - 1; pj >= 0 && out.size() < cap && !over_budget();
           --pj) {
        for (int w = 0; w < 2; ++w) {
          chain.push_back(AlignmentStep{pi, pj, w != 0});
          dfs(pi, pj);
          chain.pop_back();
        }
      }
    }
  };
  for (int w = 0; w < 2; ++w) {
    chain.push_back(AlignmentStep{m - 1, n - 1, w != 0});
    dfs(m - 1, n - 1);
    chain.pop_back();
  }
  AntichainPrune(&out);
  return out;
}

ConsistencyReport CheckTwigConsistency(
    const std::vector<TreeExample>& positives,
    const std::vector<TreeExample>& negatives,
    const ConsistencyOptions& options) {
  ConsistencyReport report;
  if (positives.empty()) {
    // With no positive constraints a query over a fresh label is vacuously
    // consistent with any negatives.
    report.verdict = Consistency::kConsistent;
    return report;
  }

  // PTIME certificate first: the canonical learner's output selects every
  // positive (soundness invariant), so if it also avoids every negative the
  // sample is consistent without touching the exponential enumeration —
  // the regime the paper calls tractable for bounded example sets.
  if (options.canonical_fast_path) {
    auto canonical = LearnTwig(positives, options.learner);
    if (canonical.ok()) {
      bool clean = true;
      for (const TreeExample& neg : negatives) {
        if (twig::Selects(canonical.value(), *neg.doc, neg.node)) {
          clean = false;
          break;
        }
      }
      if (clean) {
        report.verdict = Consistency::kConsistent;
        report.witness = std::move(canonical).value();
        report.candidates_explored = 1;
        return report;
      }
    }
  }

  const size_t max_dfs_steps = options.max_dfs_steps != 0
                                   ? options.max_dfs_steps
                                   : 64 * options.max_candidates;
  bool capped = false;
  std::vector<TwigQuery> candidates{ExampleToQuery(positives[0])};
  for (size_t p = 1; p < positives.size(); ++p) {
    const TwigQuery example = ExampleToQuery(positives[p]);
    std::vector<TwigQuery> next;
    for (const TwigQuery& c : candidates) {
      const size_t budget =
          options.max_candidates > next.size()
              ? options.max_candidates - next.size()
              : 0;
      if (budget == 0) {
        capped = true;
        break;
      }
      std::vector<TwigQuery> gens = EnumerateGeneralizations(
          c, example, options.learner, budget, max_dfs_steps, &capped);
      // Filling the budget to the brim means the enumeration may have been
      // cut mid-way; treat the boundary conservatively.
      if (gens.size() >= budget) capped = true;
      for (TwigQuery& g : gens) {
        bool dup = false;
        for (const TwigQuery& existing : next) {
          if (existing.StructurallyEquals(g)) {
            dup = true;
            break;
          }
        }
        if (!dup) next.push_back(std::move(g));
      }
    }
    report.candidates_explored += next.size();
    AntichainPrune(&next);
    if (next.size() > options.max_candidates) {
      next.resize(options.max_candidates);
      capped = true;
    }
    candidates = std::move(next);
    if (candidates.empty()) {
      // No anchored generalization of the positives at all.
      report.verdict = Consistency::kInconsistent;
      return report;
    }
  }
  report.candidates_explored =
      std::max(report.candidates_explored, candidates.size());

  for (const TwigQuery& c : candidates) {
    bool clean = true;
    for (const TreeExample& neg : negatives) {
      if (twig::Selects(c, *neg.doc, neg.node)) {
        clean = false;
        break;
      }
    }
    if (clean) {
      report.verdict = Consistency::kConsistent;
      report.witness = twig::Minimize(c);
      return report;
    }
  }
  report.verdict = capped ? Consistency::kUnknown : Consistency::kInconsistent;
  return report;
}

}  // namespace learn
}  // namespace qlearn
