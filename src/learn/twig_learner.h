// Learning anchored twig queries from positive examples, after Staworko &
// Wieczorek's algorithm class [36 in the paper]: the hypothesis is the
// canonical most-specific anchored generalization of the examples, computed
// by (1) aligning selection paths with a dynamic program that prefers longer,
// more concrete, more child-anchored patterns, and (2) attaching the common
// filters of aligned nodes (pairwise subtree generalizations).
//
// The paper's reported behaviour reproduced here: convergence to the goal
// query from very few examples (experiment E1), and overspecialized outputs
// containing schema-implied filters (addressed by SchemaAwareLearner).
#ifndef QLEARN_LEARN_TWIG_LEARNER_H_
#define QLEARN_LEARN_TWIG_LEARNER_H_

#include <vector>

#include "common/status.h"
#include "twig/twig_query.h"
#include "xml/xml_tree.h"

namespace qlearn {
namespace learn {

/// One annotated node: the user asserts `query selects node in *doc`.
struct TreeExample {
  const xml::XmlTree* doc;
  xml::NodeId node;
};

/// Tuning knobs of the positive-only learner.
struct TwigLearnerOptions {
  /// Allow '*' steps on the selection path when labels disagree at equal
  /// offsets (kept anchored: wildcards only with child edges).
  bool use_wildcards = true;
  /// Also emit descendant filters ".//l" for labels common to the aligned
  /// nodes' subtrees.
  bool descendant_filters = true;
  /// Run homomorphism-based minimization on the result.
  bool minimize = true;
  /// Cap on filters kept per query node (most specific first).
  size_t max_filters_per_node = 16;
  /// Cap on the total node count of any one filter subtree. Without it the
  /// pairwise LGG of document-sized queries can grow as
  /// max_filters_per_node^depth; dropping filters only generalizes, so the
  /// learner stays sound (it still selects every example).
  size_t max_filter_size = 96;
};

/// Converts one example into its most specific query: the whole document
/// with child axes and the example node selected.
twig::TwigQuery ExampleToQuery(const TreeExample& example);

/// One aligned pair of selection-path offsets (0-based, root-to-selection)
/// in the two queries being generalized; `wildcard` marks a '*' step.
struct AlignmentStep {
  int i;
  int j;
  bool wildcard;
};

/// Builds the generalization pattern induced by an explicit selection-path
/// alignment (axes are derived; filters are attached deterministically).
/// Fails if the alignment violates anchoring or label compatibility.
/// Exposed for the consistency checker's alignment enumeration.
common::Result<twig::TwigQuery> BuildAlignedPattern(
    const twig::TwigQuery& q1, const twig::TwigQuery& q2,
    const std::vector<AlignmentStep>& steps,
    const TwigLearnerOptions& options);

/// Canonical most-specific anchored generalization of two queries (both must
/// have selection nodes). Fails when no anchored generalization exists
/// (e.g. selection labels differ and depths make wildcards impossible).
common::Result<twig::TwigQuery> GeneralizePair(
    const twig::TwigQuery& q1, const twig::TwigQuery& q2,
    const TwigLearnerOptions& options = {});

/// Learns from positive examples by folding GeneralizePair over them.
/// The result selects every example node (soundness invariant, tested).
common::Result<twig::TwigQuery> LearnTwig(
    const std::vector<TreeExample>& examples,
    const TwigLearnerOptions& options = {});

}  // namespace learn
}  // namespace qlearn

#endif  // QLEARN_LEARN_TWIG_LEARNER_H_
