#include "session/frontier.h"

namespace qlearn {
namespace session {

const char* CandidateStateName(CandidateState state) {
  switch (state) {
    case CandidateState::kUnknown:
      return "unknown";
    case CandidateState::kAsked:
      return "asked";
    case CandidateState::kLabeledPositive:
      return "labeled-positive";
    case CandidateState::kLabeledNegative:
      return "labeled-negative";
    case CandidateState::kForcedPositive:
      return "forced-positive";
    case CandidateState::kForcedNegative:
      return "forced-negative";
  }
  return "invalid";
}

}  // namespace session
}  // namespace qlearn
