// Arena-backed structure-of-arrays candidate store: the bit-parallel data
// layout under the interactive engines' propagation and scoring hot paths.
//
// The layout is bit-transposed relative to the engines' historical
// candidate-major mask vectors: plane p is one contiguous run of uint64_t
// words in which bit d says "candidate in dense slot d agrees on pair p"
// (for join/chain engines, one plane per pair bit of each edge's universe;
// for the twig engine, one witness plane per document node). Classification
// then stops being a per-candidate loop and becomes a handful of
// word-at-a-time sweeps:
//
//   forced positive   open ∧ AND_{b∈θ*} plane_b          (A == θ*)
//   forced negative   open ∧ ¬(OR_{b∈θ*∧¬m} plane_b)     (negative m covers A;
//                                                         m = 0 gives A == 0)
//   split scoring     popcount per candidate over the θ* planes, bit-sliced
//
// Alongside the planes the store mirrors two frontier bit-vectors — `open`
// (state kUnknown: the only candidates propagation may force in the
// join/chain engines) and `active` (kUnknown | kAsked: the twig engine's
// conviction eligibility) — and a dense↔candidate-id mapping that compacts
// the dense axis as candidates settle, so sweep cost tracks the live set,
// not the historical universe. The twig engine additionally keeps its
// memoized selected-sets as bitset rows here and derives the node→candidate
// witness index by transposing those rows into the planes (64×64 bit-block
// transpose).
//
// SerializeSnapshot/RestoreSnapshot produce a versioned binary image of the
// planes, bit-vectors, and dense mapping (header: magic "QLCS", version,
// word width, plane count, capacity) — the hibernation groundwork. Restore
// validates the header against the configured geometry and rejects
// mismatches with common::Status (never an assert), so a format bump or a
// foreign image degrades gracefully.
#ifndef QLEARN_SESSION_CANDIDATE_STORE_H_
#define QLEARN_SESSION_CANDIDATE_STORE_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/status.h"
#include "session/snapshot.h"

namespace qlearn {
namespace session {

/// Calls `fn(dense_index)` for every set bit of `words[0..count)`,
/// ascending. The word loop is the sweep-to-frontier bridge: kernels
/// produce conviction bit-vectors, this materializes them as candidates.
template <typename Fn>
inline void ForEachSetBit(const uint64_t* words, size_t count, Fn&& fn) {
  for (size_t w = 0; w < count; ++w) {
    uint64_t m = words[w];
    while (m != 0) {
      const int b = std::countr_zero(m);
      fn(w * 64 + static_cast<size_t>(b));
      m &= m - 1;
    }
  }
}

/// Transposes a 64×64 bit matrix in place: bit j of a[i] moves to bit i of
/// a[j]. Hacker's Delight 7-3; the building block of the witness-plane
/// rebuild.
void Transpose64x64(uint64_t a[64]);

class CandidateStore {
 public:
  /// Dense slot of a candidate that was compacted away.
  static constexpr size_t kNoDense = std::numeric_limits<size_t>::max();

  /// (Re)configures the store: `num_planes` bit-planes over `capacity`
  /// candidates. All candidates start open and active, with dense slot d ==
  /// candidate id d; planes start empty (SetPlaneBit fills them).
  void Reset(size_t num_planes, size_t capacity);

  /// Enables the row facility: one `cols`-bit row per candidate (the twig
  /// engine's memoized selected-sets). Rows are per-epoch caches — see
  /// InvalidateRows — and pin the dense axis: a store with rows never
  /// compacts (row index == candidate id == dense slot).
  void ConfigureRows(size_t cols);

  size_t num_planes() const { return num_planes_; }
  size_t capacity() const { return capacity_; }
  size_t dense_size() const { return dense_size_; }
  /// Words per plane covering the current dense axis (sweep extent).
  size_t words() const { return WordsFor(dense_size_); }
  size_t open_count() const { return open_count_; }
  bool has_rows() const { return row_cols_ != 0; }
  size_t row_cols() const { return row_cols_; }
  size_t row_words() const { return WordsFor(row_cols_); }

  // --- dense ↔ candidate-id mapping -------------------------------------

  /// Dense slot of candidate `id`, or kNoDense once compacted away.
  size_t DenseOf(size_t id) const { return dense_of_[id]; }
  /// Candidate id in dense slot `d` (d < dense_size()).
  size_t IdOf(size_t d) const { return id_of_[d]; }

  // --- build-time plane population --------------------------------------

  /// Sets "candidate `id` agrees on plane `p`". Build-time: ids still map
  /// to their identity dense slot.
  void SetPlaneBit(size_t p, size_t id);
  bool PlaneBitForTest(size_t p, size_t id) const;

  // --- frontier mirror ---------------------------------------------------

  /// kUnknown → kAsked: leaves the active set, only the open bit clears.
  void OnAsked(size_t id);
  /// Terminal label (answered or forced): clears open and active. No-op for
  /// a candidate already compacted away (a discarded question can settle
  /// after compaction dropped it).
  void OnSettled(size_t id);
  bool IsOpen(size_t id) const;
  bool IsActive(size_t id) const;
  const uint64_t* open_words() const { return open_.data(); }
  const uint64_t* active_words() const { return active_.data(); }

  // --- word-at-a-time sweep kernels (dense axis) ------------------------

  /// out = copy of the open (resp. active) bit-vector, sized words().
  void CopyOpen(std::vector<uint64_t>* out) const;
  void CopyActive(std::vector<uint64_t>* out) const;

  /// acc[w] &= AND over b∈mask of plane(base+b)[w]. An empty mask leaves
  /// acc unchanged (AND over nothing is all-ones).
  void AndPlanes(size_t base, uint64_t mask, uint64_t* acc) const;

  /// acc[w] &= ¬(OR over b∈mask of plane(base+b)[w]): keeps exactly the
  /// candidates agreeing on *none* of the masked planes. An empty mask
  /// clears acc (OR over nothing is empty, its complement keeps everything
  /// — but an empty surviving-pair set means every candidate is covered, so
  /// the caller-facing contract is "mask == 0 ⇒ all of acc survives");
  /// see the engines: they special-case mask == 0 before calling.
  void AndNotOrPlanes(size_t base, uint64_t mask, uint64_t* acc) const;

  /// counts[d] = number of set planes among {base+b : b∈mask} for the
  /// candidate in dense slot d. Bit-sliced ripple-carry popcount: one pass
  /// over the masked planes' words, no per-candidate loop until the final
  /// 7-slice extraction. `counts` is resized to words()*64 (≥ dense_size).
  void PlanePopcounts(size_t base, uint64_t mask,
                      std::vector<uint8_t>* counts) const;

  // --- rows (twig selected-set memos) -----------------------------------

  /// Marks every row stale (the hypothesis changed). O(1) epoch bump.
  void InvalidateRows();
  /// True when row `id` was written (or marked absent) this epoch.
  bool RowFresh(size_t id) const;
  /// True when row `id` is fresh and holds a selected-set (not absent).
  bool RowPresent(size_t id) const;
  /// Marks row `id` fresh+present and returns its zeroed words.
  uint64_t* BeginRow(size_t id);
  /// Marks row `id` fresh but value-less (no anchored generalization).
  void MarkRowAbsent(size_t id);
  const uint64_t* RowWords(size_t id) const;
  /// popcount(row(id) ∧ other[0..row_words())) — the greedy-impact kernel.
  size_t PopcountRowAnd(size_t id, const uint64_t* other) const;
  /// True iff row(id) ∧ other is non-empty — the forced-negative test.
  bool RowIntersects(size_t id, const uint64_t* other) const;

  /// Rebuilds all planes as the transpose of the active candidates' rows:
  /// plane u gets bit d iff candidate d is active and its row holds u.
  /// Requires rows configured with row_cols() == num_planes() and every
  /// active row present (the engine materializes them first).
  void TransposeActiveRowsToPlanes();

  // --- compaction --------------------------------------------------------

  /// Drops every settled (non-open) candidate from the dense axis,
  /// remapping planes and bit-vectors; dropped ids report kNoDense. Keeps
  /// ascending id order, so sweep iteration order over survivors is
  /// unchanged. Not available once rows are configured.
  void Compact();
  /// Compacts when at least half the (non-trivial) dense axis has settled;
  /// returns true if compaction ran. The policy keeps amortized cost O(1)
  /// per settle while sweeps track the live set within 2×.
  bool MaybeCompact();

  // --- snapshot ----------------------------------------------------------

  /// Appends the versioned binary image: "QLCS" header (version, word
  /// width, plane count, capacity, dense extent, row geometry) followed by
  /// the dense map, the open/active bit-vectors, and the plane words. Rows
  /// are per-epoch caches and are not serialized; a restored store starts
  /// with all rows stale.
  void SerializeSnapshot(SnapshotWriter* writer) const;
  /// Restores from an image produced by SerializeSnapshot into a store
  /// already configured (Reset/ConfigureRows) with the same geometry.
  /// Rejects foreign or mismatched images — wrong magic, version, word
  /// width, plane count, capacity, or row geometry — with InvalidArgument.
  common::Status RestoreSnapshot(SnapshotReader* reader);

 private:
  static size_t WordsFor(size_t bits) { return (bits + 63) / 64; }
  /// Plane p's words (capacity-words apart in the arena).
  uint64_t* Plane(size_t p) { return planes_.data() + p * words_cap_; }
  const uint64_t* Plane(size_t p) const {
    return planes_.data() + p * words_cap_;
  }
  void ClearBit(std::vector<uint64_t>& bits, size_t d) {
    bits[d / 64] &= ~(1ULL << (d % 64));
  }

  size_t num_planes_ = 0;
  size_t capacity_ = 0;
  size_t dense_size_ = 0;
  size_t words_cap_ = 0;  ///< allocated words per plane (capacity extent)
  size_t open_count_ = 0;

  /// The arena: all planes in one contiguous allocation, plane p at word
  /// offset p * words_cap_. Bits ≥ dense_size_ are zero everywhere
  /// (planes, open_, active_) so sweeps read whole words unguarded.
  std::vector<uint64_t> planes_;
  std::vector<uint64_t> open_;
  std::vector<uint64_t> active_;
  std::vector<size_t> id_of_;     ///< dense slot → candidate id (ascending)
  std::vector<size_t> dense_of_;  ///< candidate id → dense slot or kNoDense

  // Row facility (twig). rows_ is a second arena: row id at offset
  // id * row_words. Freshness is epoch-tagged like the frontier's memos
  // (epoch 0 reserved as never-valid).
  size_t row_cols_ = 0;
  std::vector<uint64_t> rows_;
  std::vector<uint64_t> row_epoch_;
  std::vector<uint8_t> row_present_;
  uint64_t rows_epoch_ = 1;
};

}  // namespace session
}  // namespace qlearn

#endif  // QLEARN_SESSION_CANDIDATE_STORE_H_
