// Binary snapshot encoding for session hibernation images.
//
// SnapshotWriter appends fixed-width little-endian scalars and raw word
// runs to a growable byte buffer; SnapshotReader walks the same layout with
// bounds checks and returns common::Status instead of asserting, so a
// truncated or mismatched image degrades into an error the serving layer
// can surface (see candidate_store.h for the versioned store image that
// sits on top of this).
#ifndef QLEARN_SESSION_SNAPSHOT_H_
#define QLEARN_SESSION_SNAPSHOT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace qlearn {
namespace session {

/// Append-only little-endian encoder. The buffer is plain bytes: images are
/// portable across processes on the same architecture family and carry
/// their own magic/version headers (the consumers validate them on read).
class SnapshotWriter {
 public:
  void WriteU8(uint8_t v) { out_.push_back(static_cast<char>(v)); }

  void WriteU32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }

  void WriteU64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }

  void WriteWords(const uint64_t* words, size_t count) {
    for (size_t i = 0; i < count; ++i) WriteU64(words[i]);
  }

  void WriteWords(const std::vector<uint64_t>& words) {
    WriteWords(words.data(), words.size());
  }

  /// Length-prefixed byte string (u64 count + raw bytes).
  void WriteBytes(std::string_view bytes) {
    WriteU64(bytes.size());
    out_.append(bytes.data(), bytes.size());
  }

  const std::string& bytes() const { return out_; }
  std::string TakeBytes() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked little-endian decoder over an immutable image. Every read
/// fails with InvalidArgument on truncation; the caller's QLEARN_RETURN_IF
/// chains keep restore code linear.
class SnapshotReader {
 public:
  explicit SnapshotReader(std::string_view image) : image_(image) {}

  common::Status ReadU8(uint8_t* v) {
    if (pos_ + 1 > image_.size()) return Truncated();
    *v = static_cast<uint8_t>(image_[pos_++]);
    return common::Status::OK();
  }

  common::Status ReadU32(uint32_t* v) {
    if (pos_ + 4 > image_.size()) return Truncated();
    uint32_t out = 0;
    for (int i = 0; i < 4; ++i) {
      out |= static_cast<uint32_t>(static_cast<uint8_t>(image_[pos_ + i]))
             << (8 * i);
    }
    pos_ += 4;
    *v = out;
    return common::Status::OK();
  }

  common::Status ReadU64(uint64_t* v) {
    if (pos_ + 8 > image_.size()) return Truncated();
    uint64_t out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<uint64_t>(static_cast<uint8_t>(image_[pos_ + i]))
             << (8 * i);
    }
    pos_ += 8;
    *v = out;
    return common::Status::OK();
  }

  common::Status ReadWords(uint64_t* words, size_t count) {
    for (size_t i = 0; i < count; ++i) {
      common::Status s = ReadU64(&words[i]);
      if (!s.ok()) return s;
    }
    return common::Status::OK();
  }

  /// Length-prefixed byte string (u64 count + raw bytes).
  common::Status ReadBytes(std::string* out) {
    uint64_t n = 0;
    common::Status s = ReadU64(&n);
    if (!s.ok()) return s;
    if (n > remaining()) return Truncated();
    out->assign(image_.data() + pos_, static_cast<size_t>(n));
    pos_ += static_cast<size_t>(n);
    return common::Status::OK();
  }

  /// True when the cursor consumed the whole image (trailing garbage in a
  /// snapshot is as suspect as truncation).
  bool AtEnd() const { return pos_ == image_.size(); }
  size_t remaining() const { return image_.size() - pos_; }

 private:
  common::Status Truncated() const {
    return common::Status::InvalidArgument("snapshot image truncated at byte " +
                                           std::to_string(pos_));
  }

  std::string_view image_;
  size_t pos_ = 0;
};

}  // namespace session
}  // namespace qlearn

#endif  // QLEARN_SESSION_SNAPSHOT_H_
