// Unified interactive learning-session layer.
//
// The paper's four interactive scenarios — XML twigs (Section 2),
// relational joins and chains of joins (Section 3), and graph path queries
// (Section 3) — run the *same* protocol: propose an informative item, ask
// the oracle,
// propagate the labels of uninformative items so they are never asked,
// refine the most-specific hypothesis, repeat. This header captures that
// protocol once:
//
//   * SessionStats     — the questions / forced-label / conflict counters
//                        previously duplicated in all three Interactive*Result
//                        structs;
//   * SessionOptions   — model-independent knobs (seed, question budget) with
//                        the default constants centralized here;
//   * Oracle<Item>     — the membership-question interface, generic over the
//                        scenario's item type;
//   * LearningSession  — an incremental, resumable driver over a scenario
//                        Engine: NextQuestion() / Answer() / Hypothesis() /
//                        Finish(), plus batched NextQuestions(k) for
//                        throughput.
//
// The legacy one-shot entry points (learn::RunInteractiveTwigSession,
// rlearn::RunInteractiveJoinSession, rlearn::RunInteractiveChainSession,
// glearn::RunInteractivePathSession) are thin wrappers over this driver and
// keep their historical question sequences bit-for-bit.
//
// Engine concept (see learn::TwigEngine, rlearn::JoinEngine,
// rlearn::ChainEngine, glearn::PathEngine for the four implementations):
//
//   using Item = ...;         // what one question is about
//   using HypothesisT = ...;  // what is being learned
//   // Picks the next informative item under the engine's strategy, or
//   // nullopt when every item is labeled or uninformative. `rng` is the
//   // session-owned stream (consumed only by randomized strategies).
//   std::optional<Item> SelectQuestion(common::Rng* rng);
//   // Removes `item` from future selection (it is now in flight).
//   void MarkAsked(const Item& item);
//   // Incorporates the oracle's answer; may record a conflict.
//   void Observe(const Item& item, bool positive, SessionStats* stats);
//   // Per-answer propagation deltas (see session/propagation.h). The
//   // driver calls exactly one of these right after each Observe(), and
//   // the engine queues the incremental work that answer can force:
//   // OnNegative records the new negative's witness payload (the
//   // hypothesis is untouched, so only candidates witnessing the new
//   // negative can settle); OnPositive records a hypothesis change when
//   // the observation actually advanced it (forced labels never revert,
//   // so the next flush re-tests only still-open candidates).
//   void OnPositive(const Item& item);
//   void OnNegative(const Item& item);
//   // Flushes the queued deltas: settles exactly the candidates the
//   // answers since the last flush force (forced positives / negatives).
//   // The first call runs the full baseline pass; afterwards a flush
//   // without a hypothesis change touches only affected candidates, never
//   // the whole open set. Must reach the same fixpoint the historical
//   // full-universe rescan reached (Debug builds assert this).
//   void Propagate(SessionStats* stats);
//   // True when the target escaped the hypothesis class and the session
//   // cannot usefully continue.
//   bool Aborted() const;
//   // Current hypothesis snapshot (cheap; called any time).
//   HypothesisT Current() const;
//   // Final hypothesis (may audit labels / minimize; called once).
//   HypothesisT Finish(SessionStats* stats);
#ifndef QLEARN_SESSION_SESSION_H_
#define QLEARN_SESSION_SESSION_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "session/snapshot.h"

namespace qlearn {
namespace session {

/// Interaction counters shared by every scenario.
struct SessionStats {
  /// Oracle questions actually asked.
  size_t questions = 0;
  /// Labels inferred positive (every consistent hypothesis selects the
  /// item), never asked.
  size_t forced_positive = 0;
  /// Labels inferred negative (accepting the item would contradict a known
  /// negative), never asked.
  size_t forced_negative = 0;
  /// Answers that contradicted the hypothesis class (0 when the hidden
  /// target is expressible in the class being learned).
  size_t conflicts = 0;
};

/// Central home of the session default constants. The unified API uses
/// kSeed/kMaxQuestions; the kLegacy* values preserve the historical
/// per-scenario defaults (7/11/13/17) that the compatibility wrappers and
/// their options structs must keep for bit-identical replay of the seed
/// experiments.
struct SessionDefaults {
  static constexpr uint64_t kSeed = 7;
  static constexpr size_t kMaxQuestions = 1000000;

  static constexpr uint64_t kLegacyTwigSeed = 7;
  static constexpr uint64_t kLegacyJoinSeed = 11;
  static constexpr uint64_t kLegacyPathSeed = 13;
  static constexpr uint64_t kLegacyChainSeed = 17;
  static constexpr size_t kLegacyTwigMaxQuestions = 100000;
};

/// Model-independent session knobs; scenario-specific knobs (strategies,
/// candidate caps, workload priors) live on the engine.
struct SessionOptions {
  uint64_t seed = SessionDefaults::kSeed;
  /// Hard cap on oracle questions (safety valve).
  size_t max_questions = SessionDefaults::kMaxQuestions;
};

/// Membership oracle over a scenario's question items. Implemented by
/// hidden-goal oracles in tests and benchmarks and by an actual user (or a
/// crowd) in an application.
template <typename Item>
class Oracle {
 public:
  virtual ~Oracle() = default;
  virtual bool IsPositive(const Item& item) = 0;
};

/// Incremental driver of the interactive protocol over a scenario engine.
///
/// One-question flow (ask/answer ping-pong, e.g. driving a UI):
///
///   LearningSession<learn::TwigEngine> session(std::move(engine));
///   while (auto q = session.NextQuestion()) {
///     session.Answer(AskUser(*q));
///   }
///   auto query = session.Finish();
///
/// Batched flow (amortize round trips to a crowd or a remote user):
///
///   while (!session.NextQuestions(8).empty()) {
///     session.AnswerAll(labels_from_crowd(session.pending()));
///   }
///
/// The driver owns the RNG stream and the question budget; the engine owns
/// candidate enumeration, strategy, propagation, and the hypothesis.
template <typename Engine>
class LearningSession {
 public:
  using Item = typename Engine::Item;
  using HypothesisT = typename Engine::HypothesisT;

  explicit LearningSession(Engine engine, const SessionOptions& options = {})
      : engine_(std::move(engine)),
        rng_(options.seed),
        max_questions_(options.max_questions) {
    engine_.Propagate(&stats_);
  }

  /// Selects the next informative item, or nullopt when the session is over
  /// (everything settled, budget exhausted, or the engine aborted). The
  /// returned item is pending until Answer() is called.
  std::optional<Item> NextQuestion() {
    assert(pending_.empty() && "answer the pending question first");
    auto item = Select();
    if (item.has_value()) pending_.push_back(*item);
    return item;
  }

  /// Batched variant: up to `k` informative items selected under the
  /// engine's strategy without waiting for answers in between. The batch is
  /// pending until AnswerAll() is called. May ask slightly more questions
  /// overall than the one-at-a-time flow (propagation runs only once per
  /// batch) — that is the throughput trade-off.
  std::vector<Item> NextQuestions(size_t k) {
    assert(pending_.empty() && "answer the pending batch first");
    while (pending_.size() < k) {
      auto item = Select();
      if (!item.has_value()) break;
      pending_.push_back(*item);
    }
    return pending_;
  }

  /// Items selected but not yet answered.
  const std::vector<Item>& pending() const { return pending_; }

  /// Drops the pending question(s) without answering them — e.g. the user
  /// walked away mid-batch. Discarded items remain counted in
  /// stats().questions and are not asked again.
  void DiscardPending() { pending_.clear(); }

  /// Answers the single pending question from NextQuestion().
  void Answer(bool positive) {
    assert(pending_.size() == 1 && "Answer() pairs with NextQuestion()");
    ObserveAll({positive});
  }

  /// Answers the pending batch from NextQuestions(), in order. Labels after
  /// an engine abort (conflict) are dropped.
  void AnswerAll(const std::vector<bool>& labels) {
    assert(labels.size() == pending_.size() && "one label per pending item");
    ObserveAll(labels);
  }

  /// Current hypothesis snapshot; after Finish(), the final one.
  HypothesisT Hypothesis() const {
    return finished_ ? *final_ : engine_.Current();
  }

  /// Ends the session and returns the final hypothesis (engines may audit
  /// labels and minimize here). Unanswered pending questions are discarded.
  /// Idempotent; no questions can follow.
  HypothesisT Finish() {
    DiscardPending();
    if (!finished_) {
      final_ = engine_.Finish(&stats_);
      finished_ = true;
    }
    return *final_;
  }

  /// True once Finish() ran.
  bool Finished() const { return finished_; }

  /// Drives the session to completion against `oracle` (an Oracle<Item>
  /// pointer/reference or any callable Item -> bool) and returns the final
  /// hypothesis. This is exactly the legacy one-shot behavior.
  template <typename OracleT>
  HypothesisT Run(OracleT&& oracle) {
    while (auto q = NextQuestion()) {
      Answer(Ask(oracle, *q));
    }
    return Finish();
  }

  const SessionStats& stats() const { return stats_; }
  const Engine& engine() const { return engine_; }

  /// Serializes the full session state (RNG stream, budget, stats, and the
  /// engine's versioned snapshot) into a binary image a later process can
  /// RestoreSnapshot() from — hibernation for long-lived serving sessions.
  /// Only quiescent sessions snapshot: answer or discard the pending
  /// question(s) first, and a finished session has nothing left to resume.
  /// Instantiated only for engines implementing
  /// SerializeSnapshot(SnapshotWriter*) / RestoreSnapshot(SnapshotReader*)
  /// (join and chain today).
  common::Status SerializeSnapshot(std::string* out) const {
    if (!pending_.empty()) {
      return common::Status::FailedPrecondition(
          "cannot snapshot with unanswered pending questions");
    }
    if (finished_) {
      return common::Status::FailedPrecondition(
          "cannot snapshot a finished session");
    }
    SnapshotWriter writer;
    writer.WriteU32(kSnapshotMagic);
    writer.WriteU32(kSnapshotVersion);
    uint64_t lanes[4];
    rng_.SaveState(lanes);
    for (uint64_t lane : lanes) writer.WriteU64(lane);
    writer.WriteU64(max_questions_);
    writer.WriteU64(stats_.questions);
    writer.WriteU64(stats_.forced_positive);
    writer.WriteU64(stats_.forced_negative);
    writer.WriteU64(stats_.conflicts);
    engine_.SerializeSnapshot(&writer);
    *out = writer.TakeBytes();
    return common::Status::OK();
  }

  /// Restores an image produced by SerializeSnapshot into a freshly
  /// constructed session over the same immutable inputs (documents /
  /// relations / options). After a successful restore the session replays
  /// the exact remaining question/answer sequence the snapshotted session
  /// would have produced. Malformed or mismatched images are rejected with
  /// InvalidArgument and leave no partially restored state guarantee —
  /// discard the session on error.
  common::Status RestoreSnapshot(std::string_view image) {
    SnapshotReader reader(image);
    uint32_t magic = 0;
    QLEARN_RETURN_IF_ERROR(reader.ReadU32(&magic));
    if (magic != kSnapshotMagic) {
      return common::Status::InvalidArgument(
          "session snapshot magic mismatch");
    }
    uint32_t version = 0;
    QLEARN_RETURN_IF_ERROR(reader.ReadU32(&version));
    if (version != kSnapshotVersion) {
      return common::Status::InvalidArgument(
          "unsupported session snapshot version " + std::to_string(version));
    }
    uint64_t lanes[4];
    for (uint64_t& lane : lanes) QLEARN_RETURN_IF_ERROR(reader.ReadU64(&lane));
    uint64_t max_questions = 0;
    QLEARN_RETURN_IF_ERROR(reader.ReadU64(&max_questions));
    SessionStats stats;
    uint64_t counter = 0;
    QLEARN_RETURN_IF_ERROR(reader.ReadU64(&counter));
    stats.questions = counter;
    QLEARN_RETURN_IF_ERROR(reader.ReadU64(&counter));
    stats.forced_positive = counter;
    QLEARN_RETURN_IF_ERROR(reader.ReadU64(&counter));
    stats.forced_negative = counter;
    QLEARN_RETURN_IF_ERROR(reader.ReadU64(&counter));
    stats.conflicts = counter;
    QLEARN_RETURN_IF_ERROR(engine_.RestoreSnapshot(&reader));
    if (!reader.AtEnd()) {
      return common::Status::InvalidArgument(
          "session snapshot has " + std::to_string(reader.remaining()) +
          " trailing bytes");
    }
    rng_.RestoreState(lanes);
    max_questions_ = static_cast<size_t>(max_questions);
    stats_ = stats;
    pending_.clear();
    final_.reset();
    finished_ = false;
    return common::Status::OK();
  }

 private:
  /// "QLSS" little-endian — session-level snapshot image.
  static constexpr uint32_t kSnapshotMagic = 0x53534C51u;
  static constexpr uint32_t kSnapshotVersion = 1;

  template <typename OracleT>
  static bool Ask(OracleT&& oracle, const Item& item) {
    if constexpr (std::is_invocable_r_v<bool, OracleT&, const Item&>) {
      return oracle(item);
    } else if constexpr (std::is_pointer_v<std::decay_t<OracleT>>) {
      return oracle->IsPositive(item);
    } else {
      return oracle.IsPositive(item);
    }
  }

  std::optional<Item> Select() {
    if (finished_ || engine_.Aborted()) return std::nullopt;
    if (stats_.questions >= max_questions_) return std::nullopt;
    auto item = engine_.SelectQuestion(&rng_);
    if (item.has_value()) {
      ++stats_.questions;
      engine_.MarkAsked(*item);
    }
    return item;
  }

  void ObserveAll(const std::vector<bool>& labels) {
    assert(!finished_);
    // Clamp defensively: the asserts above are compiled out in release
    // builds, and a mismatched label count must not index out of bounds.
    const size_t count = std::min(labels.size(), pending_.size());
    for (size_t i = 0; i < count && !engine_.Aborted(); ++i) {
      engine_.Observe(pending_[i], labels[i], &stats_);
      // Per-answer delta: the engine queues the propagation work this
      // answer can force; the flush below settles the whole batch.
      if (labels[i]) {
        engine_.OnPositive(pending_[i]);
      } else {
        engine_.OnNegative(pending_[i]);
      }
    }
    pending_.clear();
    if (!engine_.Aborted()) engine_.Propagate(&stats_);
  }

  Engine engine_;
  common::Rng rng_;
  size_t max_questions_;
  SessionStats stats_;
  std::vector<Item> pending_;
  std::optional<HypothesisT> final_;
  bool finished_ = false;
};

}  // namespace session
}  // namespace qlearn

#endif  // QLEARN_SESSION_SESSION_H_
