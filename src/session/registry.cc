#include "session/registry.h"

namespace qlearn {
namespace session {

using common::Result;
using common::Status;

ScenarioRegistry* ScenarioRegistry::Global() {
  static ScenarioRegistry* registry = new ScenarioRegistry();
  return registry;
}

Status ScenarioRegistry::Register(ScenarioInfo info, Factory factory) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [existing, unused] : entries_) {
    if (existing.name == info.name) {
      return Status::InvalidArgument("scenario already registered: " +
                                     info.name);
    }
  }
  entries_.emplace_back(std::move(info), std::move(factory));
  return Status::OK();
}

Result<std::unique_ptr<ScenarioSession>> ScenarioRegistry::Create(
    const std::string& name, const SessionOptions& options) const {
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [info, candidate] : entries_) {
      if (info.name == name) {
        factory = candidate;
        break;
      }
    }
  }
  if (!factory) {
    return NotFoundError(name);
  }
  return factory(options);
}

Result<ScenarioInfo> ScenarioRegistry::Describe(const std::string& name) const {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [info, unused] : entries_) {
      if (info.name == name) return info;
    }
  }
  return NotFoundError(name);
}

Status ScenarioRegistry::NotFoundError(const std::string& name) const {
  std::string available;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [info, unused] : entries_) {
      if (!available.empty()) available += ", ";
      available += info.name;
    }
  }
  std::string message = "unknown scenario: " + name;
  if (!available.empty()) message += " (available: " + available + ")";
  return Status::NotFound(std::move(message));
}

bool ScenarioRegistry::Has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [info, unused] : entries_) {
    if (info.name == name) return true;
  }
  return false;
}

std::vector<ScenarioInfo> ScenarioRegistry::List() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ScenarioInfo> infos;
  infos.reserve(entries_.size());
  for (const auto& [info, unused] : entries_) infos.push_back(info);
  return infos;
}

}  // namespace session
}  // namespace qlearn
