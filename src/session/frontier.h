// Shared incremental candidate-frontier layer for the interactive engines.
//
// All four scenario engines (learn::TwigEngine, rlearn::JoinEngine,
// rlearn::ChainEngine, glearn::PathEngine) run the same hot loop: keep a
// pool of candidate items, repeatedly pick the most informative open one,
// retire items as they are asked / labeled / forced, and rescore the rest
// as the hypothesis evolves. Before this layer each engine hand-rolled that
// bookkeeping with private state arrays and an O(candidates * eval) (twig:
// O(candidates^2 * eval)) rescan on every SelectQuestion call. The frontier
// centralizes it once, incrementally:
//
//   * candidate states  — one CandidateState per item (unknown / asked /
//                         labeled / forced) plus a persistent was-asked bit;
//   * memoized scores   — per-candidate Memo slots with epoch-based
//                         dirty-marking: an Observe that changes the
//                         hypothesis bumps the epoch (everything rescores
//                         lazily), an Observe that does not (negative
//                         answers in every engine) invalidates nothing, so
//                         the next selection reuses every cached score;
//   * selection         — strategy objects the frontier drives:
//                         UniformRandomStrategy (every engine's kRandom)
//                         and GreedyScoreStrategy (kGreedyImpact /
//                         kSplitHalf / kLattice / kFrontier / kWorkload,
//                         each engine binding its model-specific scorer).
//                         Greedy selection runs off a lazy max-heap, so the
//                         per-question cost between hypothesis changes is
//                         O(log n) instead of a full rescan.
//
// Bit-identity contract: GreedyScoreStrategy reproduces exactly the
// historical first-wins linear scan — the smallest-index candidate among
// the best-scoring open ones wins, and when no score strictly beats the
// strategy's sentinel the first open candidate wins. The heap relies on
// scores never *improving* within an epoch (they may decay as the open set
// shrinks, e.g. the twig impact count); call Invalidate(k)/InvalidateAll()
// before a score can rise. Debug builds cross-check every greedy pick
// against the reference linear scan.
//
// The engines keep their model-specific pieces — hypothesis extension,
// evaluation, propagation predicates — and delegate every candidate-state
// question to this layer. See session/session.h for the protocol driver
// that sits above the engines.
#ifndef QLEARN_SESSION_FRONTIER_H_
#define QLEARN_SESSION_FRONTIER_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "session/snapshot.h"

namespace qlearn {
namespace session {

/// Lifecycle of one candidate. States only ever move away from kUnknown
/// (the frontier never reopens a candidate); the one lateral transition is
/// kForcedNegative -> kForcedPositive, which the twig engine needs when a
/// growing hypothesis reaches a node that an earlier, smaller hypothesis
/// had ruled out.
enum class CandidateState : uint8_t {
  kUnknown,          ///< open: selectable by a strategy
  kAsked,            ///< question issued, answer not yet observed
  kLabeledPositive,  ///< answered positive by the oracle (or pre-seeded)
  kLabeledNegative,  ///< answered negative by the oracle
  kForcedPositive,   ///< inferred positive, never asked
  kForcedNegative,   ///< inferred negative, never asked
};

/// Human-readable state name (diagnostics and tests).
const char* CandidateStateName(CandidateState state);

/// Uniform-random selection over the open candidates: the kRandom strategy
/// of all four engines. Consumes exactly one Rng draw per pick, on the size
/// of the open set, preserving the historical random streams.
struct UniformRandomStrategy {
  template <typename FrontierT>
  std::optional<size_t> Pick(FrontierT* frontier, common::Rng* rng) const {
    return frontier->SelectUniform(rng);
  }
};

/// Greedy argmax of an engine-bound scorer: the shape of every non-random
/// strategy the engines had (twig kGreedyImpact, join kSplitHalf/kLattice,
/// chain kSplitHalf, path kFrontier/kWorkload). `score_of(k)` returns the
/// candidate's score, or nullopt when the candidate cannot be scored (e.g.
/// no anchored twig generalization exists); higher scores win, ties go to
/// the smallest index, and when nothing strictly beats `sentinel` the first
/// open candidate wins — exactly the historical linear-scan semantics.
/// Strategies that historically minimized a cost negate it.
template <typename Score, typename ScoreFn>
class GreedyScoreStrategy {
 public:
  GreedyScoreStrategy(Score sentinel, ScoreFn score_of)
      : sentinel_(std::move(sentinel)), score_of_(std::move(score_of)) {}

  template <typename FrontierT>
  std::optional<size_t> Pick(FrontierT* frontier, common::Rng* /*rng*/) const {
    return frontier->SelectBest(sentinel_, score_of_);
  }

 private:
  Score sentinel_;
  ScoreFn score_of_;
};

/// Deduction helper: Greedy(sentinel, [..](size_t k) { ... }).
template <typename Score, typename ScoreFn>
GreedyScoreStrategy<Score, ScoreFn> Greedy(Score sentinel, ScoreFn score_of) {
  return GreedyScoreStrategy<Score, ScoreFn>(std::move(sentinel),
                                             std::move(score_of));
}

/// The shared candidate frontier.
///
///   Item   what one candidate is (node id, tuple pair, tuple path, ...);
///          owned by the frontier, index-stable for its lifetime.
///   Score  the ordering type of greedy strategies; needs operator< (e.g.
///          long, std::pair<long, long>).
///   Memo   the expensive per-candidate intermediate a scorer caches via
///          MemoOf (defaults to Score when the score itself is the memo).
template <typename Item, typename Score = long, typename Memo = Score>
class Frontier {
 public:
  void Reserve(size_t n) {
    items_.reserve(n);
    states_.reserve(n);
    asked_.reserve(n);
    memos_.reserve(n);
    memo_epoch_.reserve(n);
  }

  /// Appends a candidate (state kUnknown) and returns its index.
  size_t Add(Item item) {
    items_.push_back(std::move(item));
    states_.push_back(CandidateState::kUnknown);
    asked_.push_back(false);
    memos_.emplace_back();
    memo_epoch_.push_back(0);
    ++open_count_;
    return items_.size() - 1;
  }

  size_t size() const { return items_.size(); }
  const Item& item(size_t k) const { return items_[k]; }
  CandidateState state(size_t k) const { return states_[k]; }
  bool IsOpen(size_t k) const {
    return states_[k] == CandidateState::kUnknown;
  }
  /// Open candidates remaining (state kUnknown).
  size_t open_count() const { return open_count_; }
  /// True once a question about the candidate was issued, regardless of the
  /// label it later received (pre-seeded labels never set this).
  bool WasAsked(size_t k) const { return asked_[k]; }
  bool HasForcedLabel(size_t k) const {
    return states_[k] == CandidateState::kForcedPositive ||
           states_[k] == CandidateState::kForcedNegative;
  }

  /// kUnknown -> kAsked: the candidate is in flight and leaves the open
  /// set. The answer arrives via MarkLabeled — or never, if the driver
  /// discards the pending question, in which case the candidate stays
  /// kAsked (counted, not re-askable).
  void MarkAsked(size_t k) {
    assert(states_[k] == CandidateState::kUnknown && "asked a closed item");
    if (states_[k] != CandidateState::kUnknown) return;
    Close(k, CandidateState::kAsked);
    asked_[k] = true;
  }

  /// Records an oracle label: kAsked -> kLabeled* for answered questions,
  /// kUnknown -> kLabeled* for pre-seeded examples the oracle never sees.
  void MarkLabeled(size_t k, bool positive) {
    assert((states_[k] == CandidateState::kAsked ||
            states_[k] == CandidateState::kUnknown) &&
           "labeled an item that is settled already");
    const CandidateState next = positive ? CandidateState::kLabeledPositive
                                         : CandidateState::kLabeledNegative;
    if (states_[k] == CandidateState::kUnknown) {
      Close(k, next);
    } else if (states_[k] == CandidateState::kAsked) {
      states_[k] = next;
    }
    ReleaseMemo(k);
  }

  /// Records an inferred label. Allowed from kUnknown (both polarities),
  /// from kAsked (a discarded question settled by later knowledge), and —
  /// positive only — from kForcedNegative (the twig upgrade). Returns true
  /// if the state changed.
  bool MarkForced(size_t k, bool positive) {
    const CandidateState next = positive ? CandidateState::kForcedPositive
                                         : CandidateState::kForcedNegative;
    switch (states_[k]) {
      case CandidateState::kUnknown:
        Close(k, next);
        ReleaseMemo(k);
        return true;
      case CandidateState::kAsked:
        states_[k] = next;
        ReleaseMemo(k);
        return true;
      case CandidateState::kForcedNegative:
        if (positive) {
          states_[k] = next;
          return true;
        }
        return false;
      default:
        assert(false && "forced a label on a labeled/settled item");
        return false;
    }
  }

  /// Marks every memoized score stale (epoch bump). Call when the
  /// hypothesis — anything scores depend on beyond the open set — changed.
  /// O(1); rescoring happens lazily at the next greedy selection.
  void InvalidateAll() { ++epoch_; }

  /// Marks one candidate's memo stale and reschedules it for the greedy
  /// heap. Unlike the decay the heap tolerates implicitly, this also
  /// handles a score that *rises*.
  void Invalidate(size_t k) {
    memo_epoch_[k] = 0;
    dirty_.push_back(k);
  }

  /// Memoized access to the expensive per-candidate intermediate:
  /// recomputes via `recompute(k)` only when the slot is stale (never
  /// computed, single-candidate Invalidate, or epoch bump). A nullopt memo
  /// is cached too — "cannot be scored" is itself a per-epoch fact.
  template <typename RecomputeFn>
  const std::optional<Memo>& MemoOf(size_t k, RecomputeFn&& recompute) {
    if (memo_epoch_[k] != epoch_) {
      memos_[k] = recompute(k);
      memo_epoch_[k] = epoch_;
    }
    return memos_[k];
  }

  /// First-wins greedy selection (see GreedyScoreStrategy for semantics).
  /// Runs off a lazy max-heap: a full rescore happens only on the first
  /// selection after an epoch bump; otherwise the pick costs O(log n)
  /// amortized. Within an epoch cached scores must not improve — they may
  /// decay (the heap re-sifts stale entries) or vanish into nullopt.
  template <typename ScoreFn>
  std::optional<size_t> SelectBest(const Score& sentinel, ScoreFn&& score_of) {
    if (open_count_ == 0) return std::nullopt;
    if (heap_epoch_ != epoch_) {
      heap_.clear();
      dirty_.clear();
      for (size_t k = 0; k < states_.size(); ++k) {
        if (states_[k] != CandidateState::kUnknown) continue;
        std::optional<Score> s = score_of(k);
        if (s.has_value()) heap_.push_back(HeapEntry{std::move(*s), k});
      }
      std::make_heap(heap_.begin(), heap_.end(), EntryLess);
      heap_epoch_ = epoch_;
    } else if (!dirty_.empty()) {
      for (size_t k : dirty_) {
        if (states_[k] != CandidateState::kUnknown) continue;
        std::optional<Score> s = score_of(k);
        if (s.has_value()) PushHeap(HeapEntry{std::move(*s), k});
      }
      dirty_.clear();
    }

    std::optional<size_t> picked;
    while (!heap_.empty()) {
      const HeapEntry& top = heap_.front();
      if (states_[top.index] != CandidateState::kUnknown) {
        PopHeap();
        continue;
      }
      std::optional<Score> current = score_of(top.index);
      if (!current.has_value()) {
        PopHeap();
        continue;
      }
      if (*current < top.score || top.score < *current) {
        // Stale entry: the score decayed since it was pushed (e.g. the open
        // set shrank under an impact count). Re-sift at its true score.
        const size_t index = top.index;
        PopHeap();
        PushHeap(HeapEntry{std::move(*current), index});
        continue;
      }
      // Fresh top: the best-scored open candidate, smallest index on ties.
      picked = sentinel < top.score ? std::optional<size_t>(top.index)
                                    : FirstOpen();
      break;
    }
    if (!picked.has_value()) picked = FirstOpen();
    assert(picked == ReferenceSelectBest(sentinel, score_of) &&
           "lazy-heap selection diverged from the reference linear scan");
    return picked;
  }

  /// Uniformly random open candidate; exactly one Rng draw on the open
  /// count (the historical kRandom stream shape for every engine).
  std::optional<size_t> SelectUniform(common::Rng* rng) {
    if (open_count_ == 0) return std::nullopt;
    size_t remaining = rng->Index(open_count_);
    for (size_t k = 0; k < states_.size(); ++k) {
      if (states_[k] != CandidateState::kUnknown) continue;
      if (remaining == 0) return k;
      --remaining;
    }
    assert(false && "open_count_ out of sync with states");
    return std::nullopt;
  }

  /// Smallest open index, or nullopt when everything is settled. Amortized
  /// O(1): candidates never reopen, so the scan cursor only moves forward.
  std::optional<size_t> FirstOpen() {
    while (first_open_hint_ < states_.size() &&
           states_[first_open_hint_] != CandidateState::kUnknown) {
      ++first_open_hint_;
    }
    if (first_open_hint_ >= states_.size()) return std::nullopt;
    return first_open_hint_;
  }

  /// Lets a strategy object drive the pick: the engine chooses the
  /// strategy, the frontier supplies the candidate machinery.
  template <typename Strategy>
  std::optional<size_t> Select(const Strategy& strategy, common::Rng* rng) {
    return strategy.Pick(this, rng);
  }

  /// Hibernation: appends the per-candidate states and was-asked bits. The
  /// items themselves are not serialized — the engine rebuilds them from
  /// its model inputs and restores only the mutable lifecycle state.
  void SerializeState(SnapshotWriter* writer) const {
    writer->WriteU64(states_.size());
    for (CandidateState s : states_) {
      writer->WriteU8(static_cast<uint8_t>(s));
    }
    for (size_t k = 0; k < asked_.size(); ++k) {
      writer->WriteU8(asked_[k] ? 1 : 0);
    }
  }

  /// Restores SerializeState output into a frontier already holding the
  /// same candidate set. Memos and the greedy heap restart stale (epoch
  /// bump); scores recompute from the restored hypothesis on first use.
  common::Status RestoreState(SnapshotReader* reader) {
    uint64_t count = 0;
    common::Status s = reader->ReadU64(&count);
    if (!s.ok()) return s;
    if (count != states_.size()) {
      return common::Status::InvalidArgument(
          "frontier snapshot holds " + std::to_string(count) +
          " candidates, engine built " + std::to_string(states_.size()));
    }
    for (size_t k = 0; k < states_.size(); ++k) {
      uint8_t raw = 0;
      s = reader->ReadU8(&raw);
      if (!s.ok()) return s;
      if (raw > static_cast<uint8_t>(CandidateState::kForcedNegative)) {
        return common::Status::InvalidArgument(
            "frontier snapshot has invalid candidate state " +
            std::to_string(raw));
      }
      states_[k] = static_cast<CandidateState>(raw);
    }
    for (size_t k = 0; k < asked_.size(); ++k) {
      uint8_t raw = 0;
      s = reader->ReadU8(&raw);
      if (!s.ok()) return s;
      asked_[k] = raw != 0;
    }
    open_count_ = 0;
    for (CandidateState state : states_) {
      if (state == CandidateState::kUnknown) ++open_count_;
    }
    first_open_hint_ = 0;
    for (size_t k = 0; k < memos_.size(); ++k) ReleaseMemo(k);
    InvalidateAll();  // restart heap and memos stale
    return common::Status::OK();
  }

 private:
  struct HeapEntry {
    Score score;
    size_t index;
  };

  /// Max-heap order: higher score first, smaller index first among equals
  /// (reproducing the linear scan's first-wins tie-break).
  static bool EntryLess(const HeapEntry& a, const HeapEntry& b) {
    if (a.score < b.score) return true;
    if (b.score < a.score) return false;
    return a.index > b.index;
  }

  void PushHeap(HeapEntry entry) {
    heap_.push_back(std::move(entry));
    std::push_heap(heap_.begin(), heap_.end(), EntryLess);
  }

  void PopHeap() {
    std::pop_heap(heap_.begin(), heap_.end(), EntryLess);
    heap_.pop_back();
  }

  void Close(size_t k, CandidateState next) {
    assert(states_[k] == CandidateState::kUnknown);
    states_[k] = next;
    --open_count_;
  }

  /// Frees a settled candidate's memo: labeled/forced candidates are never
  /// scored again, and twig selected-sets are large enough that keeping
  /// them for the frontier's lifetime would hold O(n^2) dead cache in a
  /// parked session. The epoch reset keeps MemoOf correct if anything does
  /// read the slot later (it recomputes instead of serving a freed value).
  void ReleaseMemo(size_t k) {
    memos_[k].reset();
    memo_epoch_[k] = 0;
  }

#ifndef NDEBUG
  /// The historical selection loop, verbatim: ascending scan, strictly
  /// better score wins, first open candidate when nothing beats the
  /// sentinel. Debug builds assert the heap agrees on every pick.
  template <typename ScoreFn>
  std::optional<size_t> ReferenceSelectBest(const Score& sentinel,
                                            ScoreFn&& score_of) {
    std::optional<size_t> pick = FirstOpen();
    if (!pick.has_value()) return std::nullopt;
    Score best = sentinel;
    for (size_t k = *pick; k < states_.size(); ++k) {
      if (states_[k] != CandidateState::kUnknown) continue;
      std::optional<Score> s = score_of(k);
      if (s.has_value() && best < *s) {
        best = std::move(*s);
        pick = k;
      }
    }
    return pick;
  }
#endif

  std::vector<Item> items_;
  std::vector<CandidateState> states_;
  std::vector<bool> asked_;
  size_t open_count_ = 0;
  size_t first_open_hint_ = 0;

  // Score memoization. Epoch 0 is reserved as "never valid".
  std::vector<std::optional<Memo>> memos_;
  std::vector<uint64_t> memo_epoch_;
  uint64_t epoch_ = 1;

  // Lazy greedy heap; entries scored under heap_epoch_.
  std::vector<HeapEntry> heap_;
  uint64_t heap_epoch_ = 0;
  std::vector<size_t> dirty_;
};

}  // namespace session
}  // namespace qlearn

#endif  // QLEARN_SESSION_FRONTIER_H_
