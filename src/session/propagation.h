// Shared delta-propagation layer for the interactive engines.
//
// PR 4's frontier made steady-state SelectQuestion flat in candidate count,
// but every answer still paid a full-universe Propagate: all four engines
// rescanned every open candidate and re-ran model-specific classification
// per flush. This layer turns the Propagate contract into per-answer
// deltas. The driver (session::LearningSession) reports every observed
// answer through the engine's OnPositive/OnNegative hooks; the engine
// queues the delta here and the next Propagate() flush settles only the
// candidates that answer can actually force:
//
//   * a negative answer leaves the hypothesis untouched, so it can create
//     no new forced positives; the only candidates it can force negative
//     are those whose (memoized) extended selection witnesses the new
//     negative. The inverted witness index below maps witness keys to the
//     candidates they would convict — twig keys are document nodes (one
//     entry per node of a candidate's memoized selected-set), join/chain
//     keys are the effective agreement masks A = θ* ∧ agree the whole
//     classification is a pure function of (one bucket per distinct mask,
//     so a flush costs O(buckets), not O(candidates × negatives));
//   * a positive answer may change the hypothesis; forced labels never
//     revert (monotonicity), so the engine re-tests only still-settleable
//     candidates in one full pass and the witness index is rebuilt lazily —
//     the next negative delta (or greedy scoring, whichever comes first)
//     demands the per-candidate memos it is built from.
//
// Bit-identity contract: a flush must reach exactly the fixpoint the
// historical full rescan reached — same forced sets, same stats totals, and
// hence the same question bytes downstream. Every engine keeps its
// historical rescan as a reference mode (set_reference_propagation) for the
// parity property test and the BM_Propagate "before" numbers, and Debug
// builds assert the fixpoint against the historical per-candidate
// predicates after every flush, mirroring the GreedyScoreStrategy parity
// check in session/frontier.h.
#ifndef QLEARN_SESSION_PROPAGATION_H_
#define QLEARN_SESSION_PROPAGATION_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

namespace qlearn {
namespace session {

/// Hash for vector-valued witness keys (the chain engine's per-edge
/// effective-mask vectors). Boost-style combine; quality only affects
/// bucket-map performance, never behavior (forced sets are order-free).
struct MaskVectorHash {
  size_t operator()(const std::vector<uint64_t>& v) const noexcept {
    size_t h = v.size();
    for (uint64_t x : v) {
      h ^= static_cast<size_t>(x) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }
};

/// The shared delta-propagation bookkeeping one engine owns next to its
/// Frontier.
///
///   Key    what a witness bucket is keyed by (twig: document NodeId;
///          join: effective PairMask; chain: per-edge mask vector).
///   Delta  what one queued negative answer carries into the flush (twig:
///          the negative node; join/chain: the negative's agreement
///          mask(s); path: the candidate index of the negative word).
///
/// Lifecycle: engines RecordNegative/RecordHypothesisChange from their
/// OnNegative/OnPositive hooks, then Propagate() either runs a full pass
/// (baseline or hypothesis change; ends with MarkFullPassDone, which also
/// invalidates the witness buckets) or drains TakeDeltas() against the
/// witness index. Buckets are rebuilt lazily: only when a negative delta
/// actually needs them (WitnessesValid/BeginWitnessRebuild/AddWitness).
template <typename Key, typename Delta, typename KeyHash = std::hash<Key>>
class PropagationIndex {
 public:
  // --- per-answer delta queue -------------------------------------------

  /// Queues one negative answer's payload for the next flush.
  void RecordNegative(Delta delta) { pending_.push_back(std::move(delta)); }

  /// Marks the hypothesis changed: the next flush must run the engine's
  /// full pass (per-candidate predicates changed wholesale).
  void RecordHypothesisChange() { hypothesis_dirty_ = true; }

  /// True when the next flush cannot be a delta pass: the baseline full
  /// pass has not run yet (fresh engine) or the hypothesis changed.
  bool NeedsFullPass() const { return !baseline_done_ || hypothesis_dirty_; }

  bool HasPendingDeltas() const { return !pending_.empty(); }

  /// Moves out the queued deltas (the flush owns them now).
  std::vector<Delta> TakeDeltas() {
    std::vector<Delta> out = std::move(pending_);
    pending_.clear();
    return out;
  }

  /// A full pass just ran: the baseline is established, the dirty flag is
  /// spent, and queued deltas are subsumed (the pass classified against
  /// every negative). Witness-bucket validity is the engine's call: a pass
  /// that re-bucketed eagerly (join/chain) keeps them, one that defers the
  /// rebuild (twig) calls InvalidateWitnesses so the next delta flush
  /// rebuilds on demand.
  void MarkFullPassDone() {
    baseline_done_ = true;
    hypothesis_dirty_ = false;
    pending_.clear();
  }

  // --- inverted witness index -------------------------------------------

  bool WitnessesValid() const { return witnesses_valid_; }

  void InvalidateWitnesses() {
    buckets_.clear();
    witnesses_valid_ = false;
  }

  /// Starts a rebuild; the caller AddWitness-es every live candidate under
  /// the current hypothesis.
  void BeginWitnessRebuild() {
    buckets_.clear();
    witnesses_valid_ = true;
  }

  void AddWitness(const Key& key, size_t candidate) {
    buckets_[key].push_back(candidate);
  }

  /// Visits the exact-key bucket (if any) and erases it: once a witness key
  /// is convicted by a negative answer, every live member is forced and the
  /// bucket is dead. `fn(members)` receives the member list.
  template <typename Fn>
  void ConsumeBucket(const Key& key, Fn&& fn) {
    auto it = buckets_.find(key);
    if (it == buckets_.end()) return;
    fn(it->second);
    buckets_.erase(it);
  }

  /// Scans every bucket; `fn(key, members)` returns true to erase the
  /// bucket (all live members were just forced). Iteration order is
  /// map-internal and deliberately unobservable: forced sets and stats
  /// totals are order-free.
  template <typename Fn>
  void ForEachBucket(Fn&& fn) {
    for (auto it = buckets_.begin(); it != buckets_.end();) {
      if (fn(it->first, it->second)) {
        it = buckets_.erase(it);
      } else {
        ++it;
      }
    }
  }

  /// Settled-candidate eviction: drops members failing `keep` from a
  /// bucket in place. Engines call this while visiting a surviving bucket
  /// so closed candidates do not accumulate between rebuilds.
  template <typename KeepFn>
  static void Evict(std::vector<size_t>* members, KeepFn&& keep) {
    members->erase(
        std::remove_if(members->begin(), members->end(),
                       [&](size_t k) { return !keep(k); }),
        members->end());
  }

  // Introspection for tests and diagnostics.
  size_t NumBuckets() const { return buckets_.size(); }
  const std::vector<size_t>* BucketForTest(const Key& key) const {
    auto it = buckets_.find(key);
    return it == buckets_.end() ? nullptr : &it->second;
  }

 private:
  // Delta queue. Epoch-free: the flags below are spent by the next flush.
  std::vector<Delta> pending_;
  bool baseline_done_ = false;
  bool hypothesis_dirty_ = false;

  // Witness buckets; valid only for the hypothesis they were built under.
  std::unordered_map<Key, std::vector<size_t>, KeyHash> buckets_;
  bool witnesses_valid_ = false;
};

}  // namespace session
}  // namespace qlearn

#endif  // QLEARN_SESSION_PROPAGATION_H_
