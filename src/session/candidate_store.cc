#include "session/candidate_store.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <string>

namespace qlearn {
namespace session {

namespace {

/// "QLCS" little-endian.
constexpr uint32_t kMagic = 0x53434C51u;
constexpr uint32_t kVersion = 1;
constexpr uint32_t kWordBits = 64;

common::Status HeaderMismatch(const char* field, uint64_t image,
                              uint64_t configured) {
  return common::Status::InvalidArgument(
      std::string("candidate-store snapshot ") + field + " mismatch: image " +
      std::to_string(image) + ", store " + std::to_string(configured));
}

}  // namespace

void Transpose64x64(uint64_t a[64]) {
  // Hacker's Delight 7-3 block swap (32→16→…→1), adjusted for LSB-first
  // bit numbering: element (i, j) is bit j of a[i], and the swap exchanges
  // the high-column half of the low rows with the low-column half of the
  // high rows (the classic MSB-first code swaps the mirror blocks, which
  // under this convention computes the anti-diagonal transpose instead).
  // Bit j of a[i] ends in bit i of a[j].
  uint64_t m = 0x00000000FFFFFFFFULL;
  for (int j = 32; j != 0; j >>= 1, m ^= m << j) {
    for (int k = 0; k < 64; k = ((k | j) + 1) & ~j) {
      const uint64_t t = ((a[k] >> j) ^ a[k | j]) & m;
      a[k] ^= t << j;
      a[k | j] ^= t;
    }
  }
}

void CandidateStore::Reset(size_t num_planes, size_t capacity) {
  num_planes_ = num_planes;
  capacity_ = capacity;
  dense_size_ = capacity;
  words_cap_ = WordsFor(capacity);
  open_count_ = capacity;

  planes_.assign(num_planes_ * words_cap_, 0);
  open_.assign(words_cap_, 0);
  active_.assign(words_cap_, 0);
  id_of_.resize(capacity);
  dense_of_.resize(capacity);
  for (size_t i = 0; i < capacity; ++i) {
    id_of_[i] = i;
    dense_of_[i] = i;
  }
  for (size_t i = 0; i < capacity; ++i) {
    open_[i / 64] |= 1ULL << (i % 64);
  }
  active_ = open_;

  row_cols_ = 0;
  rows_.clear();
  row_epoch_.clear();
  row_present_.clear();
  rows_epoch_ = 1;
}

void CandidateStore::ConfigureRows(size_t cols) {
  assert(cols > 0);
  row_cols_ = cols;
  rows_.assign(capacity_ * WordsFor(cols), 0);
  row_epoch_.assign(capacity_, 0);  // epoch 0: never valid
  row_present_.assign(capacity_, 0);
  rows_epoch_ = 1;
}

void CandidateStore::SetPlaneBit(size_t p, size_t id) {
  const size_t d = dense_of_[id];
  assert(d != kNoDense);
  Plane(p)[d / 64] |= 1ULL << (d % 64);
}

bool CandidateStore::PlaneBitForTest(size_t p, size_t id) const {
  const size_t d = dense_of_[id];
  if (d == kNoDense) return false;
  return (Plane(p)[d / 64] >> (d % 64)) & 1;
}

void CandidateStore::OnAsked(size_t id) {
  const size_t d = dense_of_[id];
  if (d == kNoDense) return;
  if ((open_[d / 64] >> (d % 64)) & 1) {
    ClearBit(open_, d);
    --open_count_;
  }
}

void CandidateStore::OnSettled(size_t id) {
  const size_t d = dense_of_[id];
  if (d == kNoDense) return;
  if ((open_[d / 64] >> (d % 64)) & 1) {
    ClearBit(open_, d);
    --open_count_;
  }
  ClearBit(active_, d);
}

bool CandidateStore::IsOpen(size_t id) const {
  const size_t d = dense_of_[id];
  if (d == kNoDense) return false;
  return (open_[d / 64] >> (d % 64)) & 1;
}

bool CandidateStore::IsActive(size_t id) const {
  const size_t d = dense_of_[id];
  if (d == kNoDense) return false;
  return (active_[d / 64] >> (d % 64)) & 1;
}

void CandidateStore::CopyOpen(std::vector<uint64_t>* out) const {
  out->assign(open_.begin(), open_.begin() + words());
}

void CandidateStore::CopyActive(std::vector<uint64_t>* out) const {
  out->assign(active_.begin(), active_.begin() + words());
}

void CandidateStore::AndPlanes(size_t base, uint64_t mask,
                               uint64_t* acc) const {
  const size_t n = words();
  for (uint64_t m = mask; m != 0; m &= m - 1) {
    const uint64_t* plane =
        Plane(base + static_cast<size_t>(std::countr_zero(m)));
    for (size_t w = 0; w < n; ++w) acc[w] &= plane[w];
  }
}

void CandidateStore::AndNotOrPlanes(size_t base, uint64_t mask,
                                    uint64_t* acc) const {
  const size_t n = words();
  for (uint64_t m = mask; m != 0; m &= m - 1) {
    const uint64_t* plane =
        Plane(base + static_cast<size_t>(std::countr_zero(m)));
    for (size_t w = 0; w < n; ++w) acc[w] &= ~plane[w];
  }
}

void CandidateStore::PlanePopcounts(size_t base, uint64_t mask,
                                    std::vector<uint8_t>* counts) const {
  const size_t n = words();
  counts->assign(n * 64, 0);
  for (size_t w = 0; w < n; ++w) {
    // Bit-sliced ripple-carry accumulator: slice i holds bit i of every
    // candidate's running count (≤ 64 planes ⇒ 7 slices suffice).
    uint64_t slice[7] = {0, 0, 0, 0, 0, 0, 0};
    for (uint64_t m = mask; m != 0; m &= m - 1) {
      uint64_t carry = Plane(base + static_cast<size_t>(std::countr_zero(m)))[w];
      for (int i = 0; i < 7 && carry != 0; ++i) {
        const uint64_t t = slice[i] & carry;
        slice[i] ^= carry;
        carry = t;
      }
    }
    uint8_t* out = counts->data() + w * 64;
    for (int i = 0; i < 7; ++i) {
      uint64_t s = slice[i];
      while (s != 0) {
        const int j = std::countr_zero(s);
        out[j] = static_cast<uint8_t>(out[j] | (1u << i));
        s &= s - 1;
      }
    }
  }
}

void CandidateStore::InvalidateRows() { ++rows_epoch_; }

bool CandidateStore::RowFresh(size_t id) const {
  return row_epoch_[id] == rows_epoch_;
}

bool CandidateStore::RowPresent(size_t id) const {
  return RowFresh(id) && row_present_[id] != 0;
}

uint64_t* CandidateStore::BeginRow(size_t id) {
  uint64_t* row = rows_.data() + id * row_words();
  for (size_t w = 0; w < row_words(); ++w) row[w] = 0;
  row_epoch_[id] = rows_epoch_;
  row_present_[id] = 1;
  return row;
}

void CandidateStore::MarkRowAbsent(size_t id) {
  row_epoch_[id] = rows_epoch_;
  row_present_[id] = 0;
}

const uint64_t* CandidateStore::RowWords(size_t id) const {
  return rows_.data() + id * row_words();
}

size_t CandidateStore::PopcountRowAnd(size_t id, const uint64_t* other) const {
  const uint64_t* row = RowWords(id);
  size_t total = 0;
  for (size_t w = 0; w < row_words(); ++w) {
    total += static_cast<size_t>(std::popcount(row[w] & other[w]));
  }
  return total;
}

bool CandidateStore::RowIntersects(size_t id, const uint64_t* other) const {
  const uint64_t* row = RowWords(id);
  for (size_t w = 0; w < row_words(); ++w) {
    if ((row[w] & other[w]) != 0) return true;
  }
  return false;
}

void CandidateStore::TransposeActiveRowsToPlanes() {
  assert(has_rows() && row_cols_ == num_planes_);
  std::fill(planes_.begin(), planes_.end(), 0);
  uint64_t block[64];
  // 64 candidates × 64 columns at a time: gather the active rows' words
  // for one column block, bit-transpose, scatter into the planes.
  for (size_t d0 = 0; d0 < dense_size_; d0 += 64) {
    const uint64_t active_word = active_[d0 / 64];
    if (active_word == 0) continue;
    for (size_t c0 = 0; c0 < row_cols_; c0 += 64) {
      bool any = false;
      for (size_t i = 0; i < 64; ++i) {
        const size_t d = d0 + i;
        uint64_t word = 0;
        if (d < dense_size_ && ((active_word >> i) & 1) != 0) {
          // Rows pin dense == id, so dense slot d is row d.
          assert(RowPresent(d) && "active candidate without a fresh row");
          word = RowWords(d)[c0 / 64];
        }
        block[i] = word;
        any = any || word != 0;
      }
      if (!any) continue;
      Transpose64x64(block);
      // After the transpose, block[j] holds column c0+j over candidates
      // d0..d0+63.
      const size_t limit = row_cols_ - c0 < 64 ? row_cols_ - c0 : 64;
      for (size_t j = 0; j < limit; ++j) {
        if (block[j] != 0) Plane(c0 + j)[d0 / 64] = block[j];
      }
    }
  }
}

void CandidateStore::Compact() {
  assert(!has_rows() && "row stores pin the dense axis");
  // Survivors are the open candidates, in ascending dense (hence id)
  // order — sweep iteration order over them is unchanged, which keeps
  // compaction timing invisible to the engines' replay behavior.
  std::vector<size_t> survivors;
  survivors.reserve(open_count_);
  ForEachSetBit(open_.data(), words(), [&](size_t d) {
    survivors.push_back(d);
  });
  const size_t new_size = survivors.size();
  std::vector<uint64_t> buffer(WordsFor(new_size), 0);
  for (size_t p = 0; p < num_planes_; ++p) {
    uint64_t* plane = Plane(p);
    std::fill(buffer.begin(), buffer.end(), 0);
    for (size_t j = 0; j < new_size; ++j) {
      const size_t o = survivors[j];
      if (((plane[o / 64] >> (o % 64)) & 1) != 0) {
        buffer[j / 64] |= 1ULL << (j % 64);
      }
    }
    for (size_t w = 0; w < buffer.size(); ++w) plane[w] = buffer[w];
    for (size_t w = buffer.size(); w < words_cap_; ++w) plane[w] = 0;
  }

  // Bit-vectors: every survivor is open and active by definition.
  std::fill(open_.begin(), open_.end(), 0);
  for (size_t j = 0; j < new_size; ++j) open_[j / 64] |= 1ULL << (j % 64);
  active_ = open_;

  // Remap ids. Dropped candidates keep no dense slot.
  std::vector<size_t> new_ids(new_size);
  for (size_t j = 0; j < new_size; ++j) new_ids[j] = id_of_[survivors[j]];
  std::fill(dense_of_.begin(), dense_of_.end(), kNoDense);
  for (size_t j = 0; j < new_size; ++j) dense_of_[new_ids[j]] = j;
  id_of_ = std::move(new_ids);
  dense_size_ = new_size;
  open_count_ = new_size;
}

bool CandidateStore::MaybeCompact() {
  if (has_rows()) return false;
  if (dense_size_ < 128 || open_count_ * 2 >= dense_size_) return false;
  Compact();
  return true;
}

void CandidateStore::SerializeSnapshot(SnapshotWriter* writer) const {
  writer->WriteU32(kMagic);
  writer->WriteU32(kVersion);
  writer->WriteU32(kWordBits);
  writer->WriteU64(num_planes_);
  writer->WriteU64(capacity_);
  writer->WriteU64(dense_size_);
  writer->WriteU64(row_cols_);
  const size_t n = words();
  for (size_t d = 0; d < dense_size_; ++d) writer->WriteU64(id_of_[d]);
  writer->WriteWords(open_.data(), n);
  writer->WriteWords(active_.data(), n);
  for (size_t p = 0; p < num_planes_; ++p) writer->WriteWords(Plane(p), n);
}

common::Status CandidateStore::RestoreSnapshot(SnapshotReader* reader) {
  uint32_t magic = 0, version = 0, word_bits = 0;
  uint64_t planes = 0, capacity = 0, dense = 0, row_cols = 0;
  common::Status s = reader->ReadU32(&magic);
  if (s.ok()) s = reader->ReadU32(&version);
  if (s.ok()) s = reader->ReadU32(&word_bits);
  if (s.ok()) s = reader->ReadU64(&planes);
  if (s.ok()) s = reader->ReadU64(&capacity);
  if (s.ok()) s = reader->ReadU64(&dense);
  if (s.ok()) s = reader->ReadU64(&row_cols);
  if (!s.ok()) return s;
  if (magic != kMagic) return HeaderMismatch("magic", magic, kMagic);
  if (version != kVersion) return HeaderMismatch("version", version, kVersion);
  if (word_bits != kWordBits) {
    return HeaderMismatch("word width", word_bits, kWordBits);
  }
  if (planes != num_planes_) {
    return HeaderMismatch("plane count", planes, num_planes_);
  }
  if (capacity != capacity_) {
    return HeaderMismatch("capacity", capacity, capacity_);
  }
  if (dense > capacity) {
    return HeaderMismatch("dense extent", dense, capacity);
  }
  if (row_cols != row_cols_) {
    return HeaderMismatch("row columns", row_cols, row_cols_);
  }

  dense_size_ = static_cast<size_t>(dense);
  const size_t n = words();
  id_of_.assign(dense_size_, 0);
  for (size_t d = 0; d < dense_size_; ++d) {
    uint64_t id = 0;
    s = reader->ReadU64(&id);
    if (!s.ok()) return s;
    if (id >= capacity_) {
      return common::Status::InvalidArgument(
          "candidate-store snapshot dense map references id " +
          std::to_string(id) + " beyond capacity " +
          std::to_string(capacity_));
    }
    id_of_[d] = static_cast<size_t>(id);
  }
  open_.assign(words_cap_, 0);
  active_.assign(words_cap_, 0);
  s = reader->ReadWords(open_.data(), n);
  if (s.ok()) s = reader->ReadWords(active_.data(), n);
  if (!s.ok()) return s;
  std::fill(planes_.begin(), planes_.end(), 0);
  for (size_t p = 0; p < num_planes_; ++p) {
    s = reader->ReadWords(Plane(p), n);
    if (!s.ok()) return s;
  }

  std::fill(dense_of_.begin(), dense_of_.end(), kNoDense);
  for (size_t d = 0; d < dense_size_; ++d) dense_of_[id_of_[d]] = d;
  open_count_ = 0;
  for (size_t w = 0; w < n; ++w) {
    open_count_ += static_cast<size_t>(std::popcount(open_[w]));
  }
  // Rows are derived caches: a restored store starts with every row stale.
  if (has_rows()) {
    std::fill(rows_.begin(), rows_.end(), 0);
    std::fill(row_epoch_.begin(), row_epoch_.end(), 0);
    std::fill(row_present_.begin(), row_present_.end(), 0);
    rows_epoch_ = 1;
  }
  return common::Status::OK();
}

}  // namespace session
}  // namespace qlearn
