// String-keyed registry of interactive learning scenarios.
//
// The typed API (session::LearningSession<Engine>) is what library code
// uses; this registry is the uniform front door for benchmarks, examples,
// demo tooling, and future servers that must instantiate "a scenario" by
// name without compiling against its engine type. A ScenarioSession erases
// the engine behind a text-rendered question stream:
//
//   auto s = ScenarioRegistry::Global()->Create("join", {});
//   while (auto q = s.value()->NextQuestion()) {
//     s.value()->Answer(AskUser(*q));       // or s.value()->OracleLabels()
//   }
//   s.value()->Finish();
//
// Built-in scenarios ("twig", "join", "chain", "path", plus strategy
// variants like "twig-random" / "join-lattice" / "path-workload") carry a
// small synthetic dataset and a hidden goal query, so they can also
// self-answer via OracleLabels() — useful for demos, smoke tests, and load
// generation.
#ifndef QLEARN_SESSION_REGISTRY_H_
#define QLEARN_SESSION_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "session/session.h"

namespace qlearn {
namespace session {

/// Type-erased interactive session: questions are rendered to text, answers
/// are booleans. Mirrors LearningSession's incremental surface.
class ScenarioSession {
 public:
  virtual ~ScenarioSession() = default;

  /// Next question rendered for a human, or nullopt when the session is
  /// over. The question is pending until Answer().
  virtual std::optional<std::string> NextQuestion() = 0;
  /// Batched variant; pending until AnswerAll().
  virtual std::vector<std::string> NextQuestions(size_t k) = 0;
  /// Answers the single pending question.
  virtual void Answer(bool positive) = 0;
  /// Answers the pending batch, in order.
  virtual void AnswerAll(const std::vector<bool>& labels) = 0;
  /// Labels the built-in goal oracle would give the pending questions
  /// (empty when the scenario has no built-in oracle). Does not answer.
  virtual std::vector<bool> OracleLabels() = 0;
  /// Tag of the underlying question-item type ("twig" / "join" / "chain" /
  /// "path") — the payload discriminator a wire format serializes.
  virtual std::string PayloadKind() const = 0;
  /// Stable model-specific coordinates of the pending questions, in batch
  /// order: the node id for twigs, the (left,right) row pair for joins, the
  /// row path for chains, the candidate index for graph paths. Together
  /// with the rendered text this is everything a service needs to serialize
  /// a question (see service/wire.h).
  virtual std::vector<std::vector<uint64_t>> PendingIds() const = 0;
  /// Ends the session (idempotent); Hypothesis() then renders the final
  /// learned query.
  virtual void Finish() = 0;

  virtual const SessionStats& stats() const = 0;
  /// Human-readable rendering of the current (or final) hypothesis.
  virtual std::string Hypothesis() const = 0;

  /// Hibernation: serializes the full session state (RNG stream, budget,
  /// stats, engine image) into a binary image. Fails with
  /// FailedPrecondition while questions are pending or after Finish — only
  /// quiescent sessions snapshot (see session::LearningSession).
  virtual common::Status SerializeSnapshot(std::string* out) const = 0;
  /// Restores a SerializeSnapshot image into a freshly created session of
  /// the same scenario. Malformed or mismatched images are rejected with
  /// InvalidArgument; discard the session on error.
  virtual common::Status RestoreSnapshot(std::string_view image) = 0;
};

struct ScenarioInfo {
  std::string name;         ///< registry key, e.g. "twig"
  std::string description;  ///< one-liner for listings
};

/// Process-wide, thread-safe scenario registry.
class ScenarioRegistry {
 public:
  using Factory = std::function<common::Result<std::unique_ptr<ScenarioSession>>(
      const SessionOptions& options)>;

  static ScenarioRegistry* Global();

  /// Registers a scenario; fails on duplicate names.
  common::Status Register(ScenarioInfo info, Factory factory);
  /// Instantiates a fresh session of the named scenario. Unknown names
  /// return NotFound (the message lists the registered scenarios).
  common::Result<std::unique_ptr<ScenarioSession>> Create(
      const std::string& name, const SessionOptions& options = {}) const;
  /// Looks up a scenario's info without instantiating it; NotFound on an
  /// unknown name, like Create.
  common::Result<ScenarioInfo> Describe(const std::string& name) const;
  bool Has(const std::string& name) const;
  /// Registration-ordered scenario listing.
  std::vector<ScenarioInfo> List() const;

 private:
  /// NotFound status for `name`, listing the registered scenarios.
  common::Status NotFoundError(const std::string& name) const;

  mutable std::mutex mutex_;
  std::vector<std::pair<ScenarioInfo, Factory>> entries_;
};

/// Registers the built-in "twig", "join", "chain", and "path" demo
/// scenarios (and their selection-strategy variants) on the global
/// registry. Idempotent.
void RegisterBuiltinScenarios();

}  // namespace session
}  // namespace qlearn

#endif  // QLEARN_SESSION_REGISTRY_H_
