// Built-in demo scenarios for the ScenarioRegistry: one per paper scenario,
// each carrying a small synthetic dataset and a hidden goal query so the
// session can be driven by a human (Answer) or self-answered
// (OracleLabels). These mirror the setups of the E1/E6/E7/E12 experiments
// at demo scale.
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/interner.h"
#include "glearn/interactive_path.h"
#include "graph/geo_generator.h"
#include "learn/interactive.h"
#include "relational/generator.h"
#include "rlearn/interactive_chain.h"
#include "rlearn/interactive_join.h"
#include "session/registry.h"
#include "session/session.h"
#include "twig/twig_parser.h"
#include "xml/xml_parser.h"

namespace qlearn {
namespace session {

namespace {

using common::Result;
using common::Status;

/// ScenarioSession over a typed engine: the shared glue between the three
/// built-in scenarios. `context` keeps the scenario's dataset (documents,
/// relations, graph, interner, goal) alive for the session's lifetime.
template <typename Engine>
class TypedScenarioSession : public ScenarioSession {
 public:
  using Item = typename Engine::Item;
  using OracleFn = std::function<bool(const Item&)>;
  using RenderFn = std::function<std::string(const Item&)>;
  using HypothesisFn =
      std::function<std::string(const typename Engine::HypothesisT&)>;

  TypedScenarioSession(std::shared_ptr<void> context,
                       LearningSession<Engine> session, OracleFn oracle,
                       RenderFn render, HypothesisFn render_hypothesis)
      : context_(std::move(context)),
        session_(std::move(session)),
        oracle_(std::move(oracle)),
        render_(std::move(render)),
        render_hypothesis_(std::move(render_hypothesis)) {}

  std::optional<std::string> NextQuestion() override {
    auto item = session_.NextQuestion();
    if (!item.has_value()) return std::nullopt;
    return render_(*item);
  }

  std::vector<std::string> NextQuestions(size_t k) override {
    std::vector<std::string> rendered;
    for (const Item& item : session_.NextQuestions(k)) {
      rendered.push_back(render_(item));
    }
    return rendered;
  }

  void Answer(bool positive) override { session_.Answer(positive); }

  void AnswerAll(const std::vector<bool>& labels) override {
    session_.AnswerAll(labels);
  }

  std::vector<bool> OracleLabels() override {
    std::vector<bool> labels;
    labels.reserve(session_.pending().size());
    for (const Item& item : session_.pending()) {
      labels.push_back(oracle_(item));
    }
    return labels;
  }

  void Finish() override { session_.Finish(); }

  std::string PayloadKind() const override { return Engine::kPayloadKind; }

  std::vector<std::vector<uint64_t>> PendingIds() const override {
    std::vector<std::vector<uint64_t>> ids;
    ids.reserve(session_.pending().size());
    for (const Item& item : session_.pending()) {
      ids.push_back(Engine::ItemIds(item));
    }
    return ids;
  }

  const SessionStats& stats() const override { return session_.stats(); }

  std::string Hypothesis() const override {
    return render_hypothesis_(session_.Hypothesis());
  }

  common::Status SerializeSnapshot(std::string* out) const override {
    return session_.SerializeSnapshot(out);
  }

  common::Status RestoreSnapshot(std::string_view image) override {
    return session_.RestoreSnapshot(image);
  }

 private:
  std::shared_ptr<void> context_;
  LearningSession<Engine> session_;
  OracleFn oracle_;
  RenderFn render_;
  HypothesisFn render_hypothesis_;
};

// ---------------------------------------------------------------------------
// "twig": XML people directory, hidden goal /site/people/person[age]/name.

struct TwigContext {
  common::Interner interner;
  xml::XmlTree doc;
  twig::TwigQuery goal;
};

Result<std::unique_ptr<ScenarioSession>> MakeTwigScenario(
    const SessionOptions& options,
    learn::TwigStrategy strategy = learn::TwigStrategy::kGreedyImpact) {
  auto context = std::make_shared<TwigContext>();
  auto doc = xml::ParseXml(
      "<site><people>"
      "<person><name/><age/><phone/></person>"
      "<person><name/></person>"
      "<person><name/><age/></person>"
      "<person><name/><homepage/></person>"
      "</people></site>",
      &context->interner);
  if (!doc.ok()) return doc.status();
  context->doc = std::move(doc).value();
  auto goal =
      twig::ParseTwig("/site/people/person[age]/name", &context->interner);
  if (!goal.ok()) return goal.status();
  context->goal = std::move(goal).value();

  xml::NodeId seed = xml::kInvalidNode;
  for (xml::NodeId v = 0; v < context->doc.NumNodes(); ++v) {
    if (twig::Selects(context->goal, context->doc, v)) {
      seed = v;
      break;
    }
  }
  if (seed == xml::kInvalidNode) {
    return Status::Internal("twig scenario has no positive seed node");
  }

  learn::InteractiveTwigOptions engine_options;
  engine_options.strategy = strategy;
  SessionOptions session_options = options;
  LearningSession<learn::TwigEngine> session(
      learn::TwigEngine(&context->doc, seed, engine_options),
      session_options);
  TwigContext* ctx = context.get();
  return std::unique_ptr<ScenarioSession>(
      new TypedScenarioSession<learn::TwigEngine>(
          context, std::move(session),
          [ctx](const xml::NodeId& node) {
            return twig::Selects(ctx->goal, ctx->doc, node);
          },
          [ctx](const xml::NodeId& node) {
            // Render the root-to-node label path, e.g.
            // "is site/people/person/name (node 4) what you want?".
            std::vector<xml::NodeId> chain;
            for (xml::NodeId v = node; v != xml::kInvalidNode;
                 v = ctx->doc.parent(v)) {
              chain.push_back(v);
            }
            std::string path;
            for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
              if (!path.empty()) path += "/";
              path += ctx->interner.Name(ctx->doc.label(*it));
            }
            return "is " + path + " (node " + std::to_string(node) +
                   ") what you want?";
          },
          [ctx](const twig::TwigQuery& query) {
            return query.ToString(ctx->interner);
          }));
}

// ---------------------------------------------------------------------------
// "twig-ambiguity": repeated-label document (the E4 ambiguity fuel — every
// node is an "a", so twig embeddings align many ways), hidden goal
// /a/a/a/a. The oracle's negative answers at the other depths drive the
// consistency machinery that experiment E4 stresses with positive AND
// negative examples.

Result<std::unique_ptr<ScenarioSession>> MakeTwigAmbiguityScenario(
    const SessionOptions& options) {
  auto context = std::make_shared<TwigContext>();
  auto doc = xml::ParseXml(
      "<a><a><a><a/><a/></a><a/></a><a><a/></a></a>", &context->interner);
  if (!doc.ok()) return doc.status();
  context->doc = std::move(doc).value();
  auto goal = twig::ParseTwig("/a/a/a/a", &context->interner);
  if (!goal.ok()) return goal.status();
  context->goal = std::move(goal).value();

  xml::NodeId seed = xml::kInvalidNode;
  for (xml::NodeId v = 0; v < context->doc.NumNodes(); ++v) {
    if (twig::Selects(context->goal, context->doc, v)) {
      seed = v;
      break;
    }
  }
  if (seed == xml::kInvalidNode) {
    return Status::Internal("twig-ambiguity scenario has no positive seed");
  }

  LearningSession<learn::TwigEngine> session(
      learn::TwigEngine(&context->doc, seed), options);
  TwigContext* ctx = context.get();
  return std::unique_ptr<ScenarioSession>(
      new TypedScenarioSession<learn::TwigEngine>(
          context, std::move(session),
          [ctx](const xml::NodeId& node) {
            return twig::Selects(ctx->goal, ctx->doc, node);
          },
          [ctx](const xml::NodeId& node) {
            return "is node " + std::to_string(node) + " (depth " +
                   std::to_string(ctx->doc.depth(node)) +
                   " in the all-a document) what you want?";
          },
          [ctx](const twig::TwigQuery& query) {
            return query.ToString(ctx->interner);
          }));
}

// ---------------------------------------------------------------------------
// "join": generated instance, hidden 2-attribute equi-join goal.

std::string TupleText(const relational::Tuple& tuple) {
  std::string text = "(";
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (i > 0) text += ", ";
    text += tuple[i].ToString();
  }
  return text + ")";
}

struct JoinContext {
  relational::JoinInstance instance;
  rlearn::PairUniverse universe;
  rlearn::PairMask goal = 0;
};

Result<std::unique_ptr<ScenarioSession>> MakeJoinScenario(
    const SessionOptions& options,
    rlearn::JoinStrategy strategy = rlearn::JoinStrategy::kSplitHalf) {
  relational::JoinInstanceOptions instance_options;
  instance_options.seed = 5;
  instance_options.left_rows = 20;
  instance_options.right_rows = 20;
  instance_options.left_arity = 3;
  instance_options.right_arity = 3;
  instance_options.domain_size = 4;
  relational::JoinInstance instance =
      relational::GenerateJoinInstance(instance_options, 2);
  auto universe = rlearn::PairUniverse::AllCompatible(
      instance.left.schema(), instance.right.schema());
  if (!universe.ok()) return universe.status();

  auto context = std::make_shared<JoinContext>(
      JoinContext{std::move(instance), std::move(universe).value(), 0});
  for (size_t i = 0; i < context->universe.size(); ++i) {
    for (const relational::AttributePair& g : context->instance.goal) {
      if (context->universe.pairs()[i] == g) context->goal |= (1ULL << i);
    }
  }

  rlearn::InteractiveJoinOptions engine_options;
  engine_options.strategy = strategy;
  LearningSession<rlearn::JoinEngine> session(
      rlearn::JoinEngine(&context->universe, &context->instance.left,
                         &context->instance.right, engine_options),
      options);
  JoinContext* ctx = context.get();
  return std::unique_ptr<ScenarioSession>(
      new TypedScenarioSession<rlearn::JoinEngine>(
          context, std::move(session),
          [ctx](const rlearn::PairExample& pair) {
            return rlearn::MaskSatisfied(
                ctx->goal,
                ctx->universe.AgreeMask(
                    ctx->instance.left.row(pair.left_row),
                    ctx->instance.right.row(pair.right_row)));
          },
          [ctx](const rlearn::PairExample& pair) {
            return "do these tuples join? left#" +
                   std::to_string(pair.left_row) + " " +
                   TupleText(ctx->instance.left.row(pair.left_row)) +
                   "  right#" + std::to_string(pair.right_row) + " " +
                   TupleText(ctx->instance.right.row(pair.right_row));
          },
          [ctx](const rlearn::PairMask& mask) {
            return ctx->universe.MaskToString(mask,
                                              ctx->instance.left.schema(),
                                              ctx->instance.right.schema());
          }));
}

// ---------------------------------------------------------------------------
// "chain": customers ⋈ orders ⋈ products, hidden foreign-key goal
// customers.cid = orders.cid AND orders.pid = products.pid.

struct ChainContext {
  std::vector<relational::Relation> relations;
  std::optional<rlearn::JoinChain> chain;
  rlearn::ChainMask goal;
};

Result<std::unique_ptr<ScenarioSession>> MakeChainScenario(
    const SessionOptions& options,
    rlearn::ChainStrategy strategy = rlearn::ChainStrategy::kSplitHalf) {
  auto context = std::make_shared<ChainContext>();
  context->relations = relational::TinyStoreChainRelations();

  std::vector<const relational::Relation*> pointers;
  for (const relational::Relation& r : context->relations) {
    pointers.push_back(&r);
  }
  auto chain = rlearn::JoinChain::Create(std::move(pointers));
  if (!chain.ok()) return chain.status();
  context->chain = std::move(chain).value();

  // Goal: on each edge the name-equal attribute pair (cid=cid, pid=pid).
  context->goal = rlearn::NaturalChainGoal(*context->chain);
  for (const rlearn::PairMask mask : context->goal) {
    if (mask == 0) {
      return Status::Internal("chain scenario edge has no name-equal pair");
    }
  }

  rlearn::InteractiveChainOptions engine_options;
  engine_options.strategy = strategy;
  LearningSession<rlearn::ChainEngine> session(
      rlearn::ChainEngine(&*context->chain, engine_options), options);
  ChainContext* ctx = context.get();
  return std::unique_ptr<ScenarioSession>(
      new TypedScenarioSession<rlearn::ChainEngine>(
          context, std::move(session),
          [ctx](const rlearn::ChainExample& example) {
            return rlearn::ChainSatisfied(*ctx->chain, ctx->goal, example);
          },
          [ctx](const rlearn::ChainExample& example) {
            std::string text = "is this tuple path in the chain join?";
            for (size_t i = 0; i < ctx->chain->length(); ++i) {
              const relational::Relation& r = ctx->chain->relation(i);
              text += " " + r.schema().name() + "#" +
                      std::to_string(example.rows[i]) + " " +
                      TupleText(r.row(example.rows[i]));
            }
            return text;
          },
          [ctx](const rlearn::ChainMask& hypothesis) {
            std::string text;
            for (size_t e = 0; e < hypothesis.size(); ++e) {
              if (!text.empty()) text += " AND ";
              text += ctx->chain->universe(e).MaskToString(
                  hypothesis[e], ctx->chain->relation(e).schema(),
                  ctx->chain->relation(e + 1).schema());
            }
            return text;
          }));
}

// ---------------------------------------------------------------------------
// "path": generated road network, hidden goal highway+.

struct PathContext {
  common::Interner interner;
  graph::Graph g;
  graph::PathQuery goal;
  std::unique_ptr<glearn::GoalPathOracle> oracle;
};

Result<std::unique_ptr<ScenarioSession>> MakePathScenario(
    const SessionOptions& options,
    glearn::PathStrategy strategy = glearn::PathStrategy::kFrontier) {
  auto context = std::make_shared<PathContext>();
  graph::GeoOptions geo;
  geo.grid_width = 4;
  geo.grid_height = 3;
  context->g = graph::GenerateGeoGraph(geo, &context->interner);
  auto regex = automata::ParseRegex("highway+", &context->interner);
  if (!regex.ok()) return regex.status();
  context->goal = graph::PathQuery{regex.value(), std::nullopt};
  context->oracle =
      std::make_unique<glearn::GoalPathOracle>(context->goal, context->g);

  graph::Path seed;
  for (graph::EdgeId e = 0; e < context->g.NumEdges(); ++e) {
    if (context->interner.Name(context->g.edge(e).label) == "highway") {
      seed.start = context->g.edge(e).src;
      seed.edges = {e};
      break;
    }
  }
  if (seed.edges.empty()) {
    return Status::Internal("path scenario network has no highway edge");
  }

  glearn::InteractivePathOptions path_options;
  path_options.strategy = strategy;
  path_options.max_path_edges = 3;
  path_options.max_candidates = 800;
  if (strategy == glearn::PathStrategy::kWorkload) {
    // Historical workload: previous users wanted highway-only routes.
    auto workload = automata::ParseRegex("highway+", &context->interner);
    if (!workload.ok()) return workload.status();
    path_options.workload.push_back(workload.value());
  }
  LearningSession<glearn::PathEngine> session(
      glearn::PathEngine(&context->g, seed, path_options), options);
  PathContext* ctx = context.get();
  return std::unique_ptr<ScenarioSession>(
      new TypedScenarioSession<glearn::PathEngine>(
          context, std::move(session),
          [ctx](const glearn::PathEngine::Question& question) {
            return ctx->oracle->IsPositive(*question.path);
          },
          [ctx](const glearn::PathEngine::Question& question) {
            std::string labels;
            for (common::SymbolId s : *question.word) {
              if (!labels.empty()) labels += ".";
              labels += ctx->interner.Name(s);
            }
            return "is the route " + labels + " (from city " +
                   std::to_string(question.path->start) +
                   ") a path you want?";
          },
          [ctx](const glearn::ConcatPattern& pattern) {
            return pattern.ToString(ctx->interner);
          }));
}

}  // namespace

void RegisterBuiltinScenarios() {
  static const bool registered = [] {
    ScenarioRegistry* registry = ScenarioRegistry::Global();
    (void)registry->Register(
        {"twig", "XML twig query over a people directory (Section 2)"},
        [](const SessionOptions& options) { return MakeTwigScenario(options); });
    (void)registry->Register(
        {"twig-ambiguity",
         "twig consistency over a repeated-label document (Section 2, E4)"},
        MakeTwigAmbiguityScenario);
    (void)registry->Register(
        {"join", "relational equi-join predicate over tuple pairs "
                 "(Section 3, E6)"},
        [](const SessionOptions& options) { return MakeJoinScenario(options); });
    (void)registry->Register(
        {"chain", "chain of equi-joins along a foreign-key path "
                  "(Section 3, E12)"},
        [](const SessionOptions& options) {
          return MakeChainScenario(options);
        });
    (void)registry->Register(
        {"path", "graph path query on a road network (Section 3, E7)"},
        [](const SessionOptions& options) { return MakePathScenario(options); });
    // Strategy variants of the four datasets, so every selection strategy
    // the shared frontier drives is reachable by name — and pinned by a
    // golden transcript (the plain names above pin the default strategies:
    // twig kGreedyImpact, join/chain kSplitHalf, path kFrontier).
    (void)registry->Register(
        {"twig-random", "the twig scenario under uniform-random selection"},
        [](const SessionOptions& options) {
          return MakeTwigScenario(options, learn::TwigStrategy::kRandom);
        });
    (void)registry->Register(
        {"join-random", "the join scenario under uniform-random selection"},
        [](const SessionOptions& options) {
          return MakeJoinScenario(options, rlearn::JoinStrategy::kRandom);
        });
    (void)registry->Register(
        {"join-lattice",
         "the join scenario probing one candidate pair's necessity per "
         "question"},
        [](const SessionOptions& options) {
          return MakeJoinScenario(options, rlearn::JoinStrategy::kLattice);
        });
    (void)registry->Register(
        {"chain-random", "the chain scenario under uniform-random selection"},
        [](const SessionOptions& options) {
          return MakeChainScenario(options, rlearn::ChainStrategy::kRandom);
        });
    (void)registry->Register(
        {"path-random", "the path scenario under uniform-random selection"},
        [](const SessionOptions& options) {
          return MakePathScenario(options, glearn::PathStrategy::kRandom);
        });
    (void)registry->Register(
        {"path-workload",
         "the path scenario preferring paths that match a historical "
         "workload"},
        [](const SessionOptions& options) {
          return MakePathScenario(options, glearn::PathStrategy::kWorkload);
        });
    return true;
  }();
  (void)registered;
}

}  // namespace session
}  // namespace qlearn
