#include "benchlib/xpathmark.h"

namespace qlearn {
namespace benchlib {

const std::vector<XPathMarkQuery>& XPathMarkQueries() {
  static const std::vector<XPathMarkQuery>* kQueries =
      new std::vector<XPathMarkQuery>{
          // -- In the twig fragment (learnable class) --------------------
          {"A1",
           "/site/closed_auctions/closed_auction/annotation/description/text",
           "annotation texts of closed auctions", true, ""},
          {"A2", "//closed_auction//text",
           "all texts below closed auctions", true, ""},
          {"A4",
           "/site/closed_auctions/closed_auction[annotation/description/"
           "text]/date",
           "dates of closed auctions with a textual annotation", true, ""},

          // -- Outside the twig fragment ---------------------------------
          {"A6", "//open_auction//description | //closed_auction//description",
           "descriptions of open and closed auctions", false,
           "union '|' of two patterns is not a single twig"},
          {"A7", "/site/people/person[phone or homepage]/name",
           "persons reachable by phone or homepage", false,
           "disjunction 'or' is not expressible in a single twig"},
          {"A8",
           "/site/people/person[address and (phone or homepage) and "
           "(creditcard or profile)]/name",
           "persons with complex contact predicates", false,
           "nested boolean connectives"},
          {"B1",
           "/site/regions/*/item[parent::namerica or parent::samerica]/name",
           "items sold in the Americas", false,
           "parent:: axis and disjunction"},
          {"B2", "//keyword/ancestor::listitem/text",
           "texts of list items containing keywords", false,
           "ancestor:: axis"},
          {"B3", "/site/open_auctions/open_auction/bidder[1]/increase",
           "first bid of each auction", false,
           "positional predicate [1] needs order"},
          {"B4",
           "/site/open_auctions/open_auction/bidder[last()]/increase",
           "last bid of each auction", false, "last() needs order"},
          {"B5", "/site/regions/*/item[following::item]/name",
           "items with a following item", false, "following:: axis"},
          {"B6", "//person[profile/@income = 50000]/name",
           "persons with income exactly 50000", false,
           "value comparison on attribute content"},
          {"B7", "//person[profile/@income > 50000]/name",
           "persons with income above 50000", false,
           "arithmetic comparison"},
          {"B8", "//open_auction[bidder/increase >= 2 * initial]/itemref",
           "auctions whose bids doubled", false,
           "arithmetic over element values"},
          {"C1", "count(//open_auction/bidder)",
           "total number of bids", false, "aggregation function"},
          {"C2", "//closed_auction[not(annotation)]/price",
           "prices of unannotated closed auctions", false,
           "negation not()"},
          {"C3", "//person[name = /site/people/person[1]/name]/emailaddress",
           "emails of namesakes of the first person", false,
           "value join across subtrees and positional predicate"},
          {"C4", "id(//open_auction/seller/@person)/name",
           "names of sellers (reference chasing)", false,
           "id()-based dereference"},
          {"C5", "//item[contains(description, 'gold')]/name",
           "items mentioning gold", false, "string function contains()"},
          {"C6", "/site/open_auctions/open_auction/interval[start < end]",
           "auctions with coherent intervals", false,
           "value comparison between siblings"},
      };
  return *kQueries;
}

}  // namespace benchlib
}  // namespace qlearn
