// An XPathMark-style query set over the XMark-style documents (substitute
// for Franceschet's XPathMark benchmark; DESIGN.md §1). Like the original —
// which mixes a few pure tree-pattern queries with many queries using
// positional predicates, value comparisons, disjunction, axes beyond
// child/descendant, and functions — only a small fraction lies in the twig
// fragment learnable by the Section-2 algorithms. The paper reports 15%;
// this set mirrors that composition (3 of 20 queries are twigs).
#ifndef QLEARN_BENCHLIB_XPATHMARK_H_
#define QLEARN_BENCHLIB_XPATHMARK_H_

#include <string>
#include <vector>

namespace qlearn {
namespace benchlib {

/// One benchmark query.
struct XPathMarkQuery {
  std::string id;
  /// The query; twig-fragment queries use our parser syntax, others are
  /// shown in XPath 1.0 syntax for reference.
  std::string xpath;
  std::string description;
  /// True iff expressible as a twig query XP{/,//,[],*}.
  bool in_twig_fragment;
  /// Why the query falls outside the fragment (empty when inside).
  std::string exclusion_reason;
};

/// The 20-query set.
const std::vector<XPathMarkQuery>& XPathMarkQueries();

}  // namespace benchlib
}  // namespace qlearn

#endif  // QLEARN_BENCHLIB_XPATHMARK_H_
