// Shared plumbing for the experiment drivers in bench/: wall-clock timing,
// simple statistics, characteristic-example selection for twig goals, and a
// pool of goal queries over the XMark-style structure.
#ifndef QLEARN_BENCHLIB_EXPERIMENT_UTIL_H_
#define QLEARN_BENCHLIB_EXPERIMENT_UTIL_H_

#include <chrono>
#include <string>
#include <vector>

#include "common/interner.h"
#include "learn/twig_learner.h"
#include "schema/ms.h"
#include "twig/twig_query.h"
#include "xml/xml_tree.h"

namespace qlearn {
namespace benchlib {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  void Reset() { start_ = std::chrono::steady_clock::now(); }
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Mean of a sample (0 for empty).
double Mean(const std::vector<double>& xs);

/// Population standard deviation (0 for size < 2).
double StdDev(const std::vector<double>& xs);

/// Goal twig queries of increasing size used by E1/E3/E4 (all within the
/// anchored fragment, phrased over XMark labels).
std::vector<std::string> XMarkGoalQueries();

/// Nodes of `doc` selected by `goal`, as learner examples.
std::vector<learn::TreeExample> GoalMatches(const twig::TwigQuery& goal,
                                            const xml::XmlTree& doc);

/// Order in which pool examples are fed to the learner.
enum class ExampleOrder {
  /// Matches taken round-robin across documents in document order — an
  /// arbitrary-order lower bound (consecutive examples are often similar).
  kRoundRobin,
  /// Counterexample-driven: the next example is one the current hypothesis
  /// does not yet select — the informative-user model behind the paper's
  /// "generally two examples" (a user marks what the system still misses).
  kCounterexample,
};

/// Convergence criterion for ExamplesUntilConvergence.
enum class ConvergenceCriterion {
  /// Same answer set as the goal on every provided document — the
  /// operational notion behind the paper's "learn a query equivalent to the
  /// goal from generally two examples" (schema-implied extra filters do not
  /// change answers on schema-valid documents).
  kAnswers,
  /// Logical equivalence over all trees. Typically unattainable from
  /// schema-valid examples alone (the learner keeps schema-implied filters —
  /// the paper's overspecialization problem that E3's schema-aware pruning
  /// addresses).
  kLogical,
};

/// Runs the incremental-learning experiment for one goal: feeds matches
/// one by one (across documents round-robin) until the hypothesis meets the
/// criterion or examples run out. Returns the number of examples consumed,
/// or -1 if never converged.
int ExamplesUntilConvergence(
    const twig::TwigQuery& goal, const std::vector<const xml::XmlTree*>& docs,
    common::Interner* interner, size_t max_examples = 16,
    ConvergenceCriterion criterion = ConvergenceCriterion::kAnswers,
    ExampleOrder order = ExampleOrder::kRoundRobin);

/// Schema-aware variant (the paper's §2 optimization): after each learning
/// step the hypothesis is pruned with `schema` (PTIME filter implication),
/// so data-implied filters stop delaying convergence. Answer-set criterion.
int ExamplesUntilConvergenceWithSchema(
    const twig::TwigQuery& goal, const std::vector<const xml::XmlTree*>& docs,
    const schema::Ms& schema, common::Interner* interner,
    size_t max_examples = 16,
    ExampleOrder order = ExampleOrder::kRoundRobin);

}  // namespace benchlib
}  // namespace qlearn

#endif  // QLEARN_BENCHLIB_EXPERIMENT_UTIL_H_
