#include "benchlib/experiment_util.h"

#include <cmath>
#include <optional>

#include "learn/schema_aware.h"
#include "twig/twig_containment.h"
#include "twig/twig_eval.h"

namespace qlearn {
namespace benchlib {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  double sum = 0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0;
  const double mean = Mean(xs);
  double acc = 0;
  for (double x : xs) acc += (x - mean) * (x - mean);
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

std::vector<std::string> XMarkGoalQueries() {
  return {
      "/site/people/person/name",
      "//person/emailaddress",
      "/site/people/person[phone]/name",
      "//person[profile/age]/name",
      "//open_auction/bidder/increase",
      "/site/closed_auctions/closed_auction[annotation]/price",
      "//item[mailbox]/name",
      "//person[address/city][phone]/name",
      "/site/open_auctions/open_auction[bidder]/seller",
      "//annotation/description//text",
  };
}

std::vector<learn::TreeExample> GoalMatches(const twig::TwigQuery& goal,
                                            const xml::XmlTree& doc) {
  std::vector<learn::TreeExample> out;
  for (xml::NodeId n : twig::Evaluate(goal, doc)) {
    out.push_back(learn::TreeExample{&doc, n});
  }
  return out;
}

namespace {

/// Match pool gathered round-robin across documents (all matches, capped).
std::vector<learn::TreeExample> GatherPool(
    const twig::TwigQuery& goal, const std::vector<const xml::XmlTree*>& docs,
    size_t max_examples) {
  std::vector<std::vector<learn::TreeExample>> per_doc;
  per_doc.reserve(docs.size());
  for (const xml::XmlTree* doc : docs) {
    per_doc.push_back(GoalMatches(goal, *doc));
  }
  std::vector<learn::TreeExample> pool;
  for (size_t round = 0; pool.size() < max_examples; ++round) {
    bool any = false;
    for (const auto& matches : per_doc) {
      if (round < matches.size()) {
        pool.push_back(matches[round]);
        any = true;
      }
    }
    if (!any) break;
  }
  return pool;
}

/// Index of the next example to feed under `order` (kCounterexample picks
/// one the hypothesis misses, falling back to the first unused).
size_t PickNext(const std::vector<learn::TreeExample>& pool,
                const std::vector<bool>& taken,
                const twig::TwigQuery* hypothesis, ExampleOrder order) {
  size_t fallback = pool.size();
  for (size_t i = 0; i < pool.size(); ++i) {
    if (taken[i]) continue;
    if (fallback == pool.size()) fallback = i;
    if (order == ExampleOrder::kRoundRobin || hypothesis == nullptr) return i;
    if (!twig::Selects(*hypothesis, *pool[i].doc, pool[i].node)) return i;
  }
  return fallback;
}

}  // namespace

int ExamplesUntilConvergence(const twig::TwigQuery& goal,
                             const std::vector<const xml::XmlTree*>& docs,
                             common::Interner* interner, size_t max_examples,
                             ConvergenceCriterion criterion,
                             ExampleOrder order) {
  const std::vector<learn::TreeExample> pool =
      GatherPool(goal, docs, max_examples);
  if (pool.empty()) return -1;

  auto converged = [&](const twig::TwigQuery& learned) {
    switch (criterion) {
      case ConvergenceCriterion::kLogical:
        return twig::EquivalentExact(learned, goal, interner);
      case ConvergenceCriterion::kAnswers:
        for (const xml::XmlTree* doc : docs) {
          if (twig::Evaluate(learned, *doc) != twig::Evaluate(goal, *doc)) {
            return false;
          }
        }
        return true;
    }
    return false;
  };

  std::vector<bool> taken(pool.size(), false);
  std::vector<learn::TreeExample> used;
  std::optional<twig::TwigQuery> hypothesis;
  while (used.size() < pool.size()) {
    const size_t pick = PickNext(pool, taken,
                                 hypothesis ? &*hypothesis : nullptr, order);
    if (pick >= pool.size()) break;
    taken[pick] = true;
    used.push_back(pool[pick]);
    auto learned = learn::LearnTwig(used);
    if (!learned.ok()) continue;
    hypothesis = learned.value();
    if (converged(learned.value())) return static_cast<int>(used.size());
  }
  return -1;
}

int ExamplesUntilConvergenceWithSchema(
    const twig::TwigQuery& goal, const std::vector<const xml::XmlTree*>& docs,
    const schema::Ms& schema, common::Interner* interner,
    size_t max_examples, ExampleOrder order) {
  (void)interner;
  const std::vector<learn::TreeExample> pool =
      GatherPool(goal, docs, max_examples);
  if (pool.empty()) return -1;

  std::vector<bool> taken(pool.size(), false);
  std::vector<learn::TreeExample> used;
  std::optional<twig::TwigQuery> hypothesis;
  while (used.size() < pool.size()) {
    const size_t pick = PickNext(pool, taken,
                                 hypothesis ? &*hypothesis : nullptr, order);
    if (pick >= pool.size()) break;
    taken[pick] = true;
    used.push_back(pool[pick]);
    auto learned = learn::LearnTwig(used);
    if (!learned.ok()) continue;
    const twig::TwigQuery pruned =
        learn::PruneImpliedFilters(learned.value(), schema);
    hypothesis = pruned;
    bool same = true;
    for (const xml::XmlTree* doc : docs) {
      if (twig::Evaluate(pruned, *doc) != twig::Evaluate(goal, *doc)) {
        same = false;
        break;
      }
    }
    if (same) return static_cast<int>(used.size());
  }
  return -1;
}

}  // namespace benchlib
}  // namespace qlearn
