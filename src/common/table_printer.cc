#include "common/table_printer.h"

#include <algorithm>
#include <ostream>

namespace qlearn {
namespace common {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      line += "| ";
      line += row[c];
      line.append(widths[c] - row[c].size() + 1, ' ');
    }
    line += "|\n";
    return line;
  };
  std::string out = render_row(headers_);
  std::string sep;
  for (size_t c = 0; c < headers_.size(); ++c) {
    sep += "|";
    sep.append(widths[c] + 2, '-');
  }
  sep += "|\n";
  out += sep;
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print(std::ostream& os) const { os << ToString(); }

}  // namespace common
}  // namespace qlearn
