#include "common/interner.h"

#include <cassert>

namespace qlearn {
namespace common {

SymbolId Interner::Intern(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  const SymbolId id = static_cast<SymbolId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

SymbolId Interner::Lookup(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  return it == ids_.end() ? kNoSymbol : it->second;
}

const std::string& Interner::Name(SymbolId id) const {
  assert(id < names_.size());
  return names_[id];
}

}  // namespace common
}  // namespace qlearn
