#include "common/status.h"

namespace qlearn {
namespace common {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
  }
  return "Unknown";
}

bool StatusCodeFromName(const std::string& name, StatusCode* code) {
  for (const StatusCode candidate :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kParseError,
        StatusCode::kUnsupported, StatusCode::kInternal,
        StatusCode::kResourceExhausted, StatusCode::kFailedPrecondition,
        StatusCode::kDataLoss, StatusCode::kDeadlineExceeded,
        StatusCode::kUnavailable, StatusCode::kAlreadyExists}) {
    if (name == StatusCodeName(candidate)) {
      *code = candidate;
      return true;
    }
  }
  return false;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace common
}  // namespace qlearn
