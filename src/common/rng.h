// Deterministic pseudo-random number generation for generators, learners'
// tie-breaking, and benchmarks. Every randomized component takes an explicit
// seed so experiments are reproducible run-to-run.
#ifndef QLEARN_COMMON_RNG_H_
#define QLEARN_COMMON_RNG_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace qlearn {
namespace common {

/// SplitMix64-seeded xoshiro256** generator. Header-only and allocation-free.
class Rng {
 public:
  /// Seeds the generator; equal seeds yield identical streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 expansion of the seed into the four lanes.
    uint64_t x = seed;
    for (auto& lane : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      lane = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Requires bound > 0.
  uint64_t Uniform(uint64_t bound) {
    assert(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = (0ULL - bound) % bound;
    for (;;) {
      const uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Picks a uniformly random element index from a non-empty container size.
  size_t Index(size_t size) {
    assert(size > 0);
    return static_cast<size_t>(Uniform(size));
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      const size_t j = Index(i + 1);
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Draws a fresh seed for a child generator (stream splitting).
  uint64_t Fork() { return Next(); }

  /// Copies the four xoshiro lanes out (session hibernation). Restoring
  /// them reproduces the identical remaining stream.
  void SaveState(uint64_t out[4]) const {
    for (int i = 0; i < 4; ++i) out[i] = state_[i];
  }
  void RestoreState(const uint64_t in[4]) {
    for (int i = 0; i < 4; ++i) state_[i] = in[i];
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace common
}  // namespace qlearn

#endif  // QLEARN_COMMON_RNG_H_
