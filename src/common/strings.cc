#include "common/strings.h"

#include <cctype>
#include <cstdio>

namespace qlearn {
namespace common {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t b = 0;
  size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

}  // namespace common
}  // namespace qlearn
