// Counting replacements for the global allocation functions — see
// alloc_probe.h for what may link this TU. The wrappers defer to
// malloc/free, so sanitizers still intercept the underlying allocations.
#include "common/alloc_probe.h"

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

namespace qlearn {
namespace common {
namespace {

std::atomic<uint64_t> g_news{0};
std::atomic<uint64_t> g_deletes{0};

void* CountedAlloc(std::size_t size, std::size_t align) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  void* pointer = nullptr;
  if (align > alignof(std::max_align_t)) {
    // aligned_alloc requires the size to be a multiple of the alignment.
    const std::size_t rounded = (size + align - 1) / align * align;
    pointer = std::aligned_alloc(align, rounded);
  } else {
    pointer = std::malloc(size);
  }
  if (pointer == nullptr) throw std::bad_alloc();
  return pointer;
}

void CountedFree(void* pointer) {
  if (pointer == nullptr) return;
  g_deletes.fetch_add(1, std::memory_order_relaxed);
  std::free(pointer);
}

}  // namespace

uint64_t AllocProbeNewCount() {
  return g_news.load(std::memory_order_relaxed);
}

uint64_t AllocProbeDeleteCount() {
  return g_deletes.load(std::memory_order_relaxed);
}

}  // namespace common
}  // namespace qlearn

void* operator new(std::size_t size) {
  return qlearn::common::CountedAlloc(size, 0);
}
void* operator new[](std::size_t size) {
  return qlearn::common::CountedAlloc(size, 0);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return qlearn::common::CountedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return qlearn::common::CountedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return qlearn::common::CountedAlloc(size, 0);
  } catch (const std::bad_alloc&) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return qlearn::common::CountedAlloc(size, 0);
  } catch (const std::bad_alloc&) {
    return nullptr;
  }
}

void operator delete(void* pointer) noexcept {
  qlearn::common::CountedFree(pointer);
}
void operator delete[](void* pointer) noexcept {
  qlearn::common::CountedFree(pointer);
}
void operator delete(void* pointer, std::size_t) noexcept {
  qlearn::common::CountedFree(pointer);
}
void operator delete[](void* pointer, std::size_t) noexcept {
  qlearn::common::CountedFree(pointer);
}
void operator delete(void* pointer, std::align_val_t) noexcept {
  qlearn::common::CountedFree(pointer);
}
void operator delete[](void* pointer, std::align_val_t) noexcept {
  qlearn::common::CountedFree(pointer);
}
void operator delete(void* pointer, std::size_t, std::align_val_t) noexcept {
  qlearn::common::CountedFree(pointer);
}
void operator delete[](void* pointer, std::size_t,
                       std::align_val_t) noexcept {
  qlearn::common::CountedFree(pointer);
}
void operator delete(void* pointer, const std::nothrow_t&) noexcept {
  qlearn::common::CountedFree(pointer);
}
void operator delete[](void* pointer, const std::nothrow_t&) noexcept {
  qlearn::common::CountedFree(pointer);
}
