// String interning: maps strings to dense integer ids so that trees, queries,
// schemas and graphs can compare labels by integer.
#ifndef QLEARN_COMMON_INTERNER_H_
#define QLEARN_COMMON_INTERNER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace qlearn {
namespace common {

/// Dense id assigned to an interned string. Ids start at 0 and are stable for
/// the lifetime of the Interner.
using SymbolId = uint32_t;

/// Sentinel id meaning "no symbol" (also used for the twig wildcard).
inline constexpr SymbolId kNoSymbol = static_cast<SymbolId>(-1);

/// Bidirectional string <-> dense-id table.
class Interner {
 public:
  /// Returns the id for `name`, interning it on first use.
  SymbolId Intern(std::string_view name);

  /// Returns the id of `name` or kNoSymbol when it was never interned.
  SymbolId Lookup(std::string_view name) const;

  /// Returns the string for `id`. Requires a valid id.
  const std::string& Name(SymbolId id) const;

  /// Number of distinct interned symbols.
  size_t size() const { return names_.size(); }

 private:
  std::unordered_map<std::string, SymbolId> ids_;
  std::vector<std::string> names_;
};

}  // namespace common
}  // namespace qlearn

#endif  // QLEARN_COMMON_INTERNER_H_
