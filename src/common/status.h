// Status / Result<T>: exception-free error propagation for the library core,
// in the style of RocksDB's Status and Arrow's Result.
#ifndef QLEARN_COMMON_STATUS_H_
#define QLEARN_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace qlearn {
namespace common {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kParseError,
  kUnsupported,
  kInternal,
  kResourceExhausted,
  kFailedPrecondition,
  kDataLoss,
  kDeadlineExceeded,
  kUnavailable,
  kAlreadyExists,
};

/// Human-readable name of a status code (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Inverse of StatusCodeName: maps a name back to its code. Returns false
/// on an unrecognized name (used by wire protocols that carry codes by
/// name, so a client can round-trip a server-side error).
bool StatusCodeFromName(const std::string& name, StatusCode* code);

/// Outcome of a fallible operation. Cheap to copy when OK (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Modeled after arrow::Result.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value or `fallback` when in error state.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_{Status::OK()};
};

/// Propagates a non-OK Status to the caller.
#define QLEARN_RETURN_IF_ERROR(expr)          \
  do {                                        \
    ::qlearn::common::Status _st = (expr);    \
    if (!_st.ok()) return _st;                \
  } while (0)

/// Assigns the value of a Result expression or propagates its error.
#define QLEARN_ASSIGN_OR_RETURN(lhs, expr)    \
  auto QLEARN_CONCAT_(res_, __LINE__) = (expr);            \
  if (!QLEARN_CONCAT_(res_, __LINE__).ok())                \
    return QLEARN_CONCAT_(res_, __LINE__).status();        \
  lhs = std::move(QLEARN_CONCAT_(res_, __LINE__)).value()

#define QLEARN_CONCAT_IMPL_(a, b) a##b
#define QLEARN_CONCAT_(a, b) QLEARN_CONCAT_IMPL_(a, b)

}  // namespace common
}  // namespace qlearn

#endif  // QLEARN_COMMON_STATUS_H_
