// Heap-allocation counting for tests and benchmarks that assert an
// allocation budget (the serving hot path claims zero-or-small-constant
// allocations per request; tests/protocol_alloc_test.cc and the
// BM_HandleFrame benchmarks prove it with these counters instead of
// eyeballing profiles).
//
// The counters only tick in binaries that also compile
// common/alloc_probe_hooks.cc (added via target_sources, NOT part of the
// qlearn library): that TU replaces global operator new/delete with
// counting wrappers. Linking it anywhere else is harmless but pointless —
// and a binary that includes this header without the hooks TU will fail to
// link if it calls these functions, which is the intended reminder.
#ifndef QLEARN_COMMON_ALLOC_PROBE_H_
#define QLEARN_COMMON_ALLOC_PROBE_H_

#include <cstdint>

namespace qlearn {
namespace common {

/// Global operator new (scalar + array, aligned or not) calls so far.
/// Thread-safe (relaxed atomic); diff two reads around the region of
/// interest.
uint64_t AllocProbeNewCount();

/// Matching operator delete calls (for leak-shaped assertions).
uint64_t AllocProbeDeleteCount();

}  // namespace common
}  // namespace qlearn

#endif  // QLEARN_COMMON_ALLOC_PROBE_H_
