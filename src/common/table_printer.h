// Aligned plain-text tables for experiment output, so bench binaries print the
// same row/series structure the paper's claims are stated in.
#ifndef QLEARN_COMMON_TABLE_PRINTER_H_
#define QLEARN_COMMON_TABLE_PRINTER_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace qlearn {
namespace common {

/// Collects rows of string cells and renders them with aligned columns.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends one row; short rows are padded with empty cells.
  void AddRow(std::vector<std::string> cells);

  /// Renders the table (header, separator, rows) to a string.
  std::string ToString() const;

  /// Writes ToString() to `os`.
  void Print(std::ostream& os) const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace common
}  // namespace qlearn

#endif  // QLEARN_COMMON_TABLE_PRINTER_H_
