// Small string helpers shared across parsers and printers.
#ifndef QLEARN_COMMON_STRINGS_H_
#define QLEARN_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace qlearn {
namespace common {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view text);

/// True when `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Formats a double with `digits` fractional digits.
std::string FormatDouble(double value, int digits);

}  // namespace common
}  // namespace qlearn

#endif  // QLEARN_COMMON_STRINGS_H_
