// Financial cost model for crowdsourced learning sessions, after the
// HIT (Human Intelligence Task) marketplace setting of Marcus et al. [30 in
// the paper]: every question to the crowd is a paid task, so minimizing
// user interactions literally minimizes dollars.
#ifndef QLEARN_CROWD_COST_MODEL_H_
#define QLEARN_CROWD_COST_MODEL_H_

#include <cstddef>

namespace qlearn {
namespace crowd {

/// Per-task prices (arbitrary currency units; defaults mirror the cents-per-
/// HIT ballpark of crowdsourcing marketplaces).
struct HitCost {
  /// One pairwise "do these two records join?" comparison.
  double pair_comparison = 0.01;
  /// One per-record feature-extraction task (Marcus et al.'s "features",
  /// used to filter candidate pairs before pairwise HITs).
  double feature_extraction = 0.005;
};

/// Running tally of a session's spend.
struct CostLedger {
  size_t pair_hits = 0;
  size_t feature_hits = 0;

  double Total(const HitCost& cost) const {
    return static_cast<double>(pair_hits) * cost.pair_comparison +
           static_cast<double>(feature_hits) * cost.feature_extraction;
  }
};

}  // namespace crowd
}  // namespace qlearn

#endif  // QLEARN_CROWD_COST_MODEL_H_
