#include "crowd/noisy_oracle.h"

namespace qlearn {
namespace crowd {

bool NoisyMajorityOracle::Ask(const relational::Tuple& left,
                              const relational::Tuple& right,
                              CostLedger* ledger) {
  return AskReplicated(left, right, replication_, ledger);
}

bool NoisyMajorityOracle::AskReplicated(const relational::Tuple& left,
                                        const relational::Tuple& right,
                                        int replication, CostLedger* ledger) {
  if (replication < 1) replication = 1;
  const bool truth = truth_->IsPositive(left, right);
  int yes = 0;
  for (int i = 0; i < replication; ++i) {
    const bool answer = rng_.Bernoulli(error_rate_) ? !truth : truth;
    if (answer) ++yes;
  }
  ledger->pair_hits += static_cast<size_t>(replication);
  return yes * 2 > replication;  // ties resolve to "no match"
}

}  // namespace crowd
}  // namespace qlearn
