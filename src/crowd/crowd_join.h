// Crowdsourced join learning (the paper's Section-3 crowd application):
// the interactive equi-join protocol where every question is a paid HIT,
// workers are unreliable, and Marcus et al.'s *feature filtering* can trade
// cheap per-record feature HITs for expensive pairwise-comparison HITs.
//
// The simulator runs the same version-space protocol as
// rlearn::RunInteractiveJoinSession, with three crowd-specific twists:
//  * answers come from a noisy majority-vote oracle and cost money;
//  * a conflicting answer (one that empties the version space) is escalated
//    with a larger replication, and dropped if still conflicting — the
//    paper's "some annotations might be ignored" relaxation;
//  * with feature filtering on, the most selective attribute pair is
//    "extracted" for every record first, and candidate pairs disagreeing on
//    it are skipped as assumed negatives (never asked).
#ifndef QLEARN_CROWD_CROWD_JOIN_H_
#define QLEARN_CROWD_CROWD_JOIN_H_

#include <cstdint>
#include <optional>

#include "common/status.h"
#include "crowd/cost_model.h"
#include "crowd/noisy_oracle.h"
#include "rlearn/equijoin_learner.h"
#include "rlearn/interactive_join.h"

namespace qlearn {
namespace crowd {

struct CrowdJoinOptions {
  /// Per-answer flip probability of a single worker.
  double worker_error_rate = 0.05;
  /// Answers bought per question (majority vote).
  int replication = 3;
  /// Escalation replication used when an answer conflicts with the space.
  int escalation_replication = 7;
  /// Maximum times one question is escalated before its answer is dropped.
  int max_escalations = 2;
  /// Spend feature HITs to prune candidate pairs first. The feature is
  /// calibrated on a paid pilot sample (see PilotSelectedFeature); without a
  /// pilot positive the filter is skipped.
  bool feature_filtering = false;
  /// Pair HITs spent probing for pilot positives before choosing a feature.
  size_t pilot_budget = 12;
  HitCost cost;
  rlearn::JoinStrategy strategy = rlearn::JoinStrategy::kSplitHalf;
  uint64_t seed = 23;
  /// Safety valve on crowd questions (not individual HITs).
  size_t max_questions = 100000;
};

struct CrowdJoinResult {
  /// Most specific hypothesis consistent with the kept answers.
  rlearn::PairMask learned = 0;
  CostLedger ledger;
  double total_cost = 0;
  size_t questions = 0;
  size_t forced_positive = 0;
  size_t forced_negative = 0;
  /// Candidate pairs skipped by the feature filter (assumed negative).
  size_t filtered_out = 0;
  /// Questions whose answers were escalated / dropped after conflicts.
  size_t escalations = 0;
  size_t dropped_answers = 0;
  /// Ground-truth disagreements of the learned join over all pairs
  /// (0 when the crowd noise did not corrupt the outcome).
  size_t accuracy_errors = 0;
  /// The feature (universe pair index) used by the filter, if any.
  std::optional<size_t> feature_pair;
};

/// Runs a crowdsourced join-learning session over all |left|x|right| pairs.
/// `truth` is the ground-truth oracle (also used to score accuracy_errors).
common::Result<CrowdJoinResult> RunCrowdJoinSession(
    const rlearn::PairUniverse& universe, const relational::Relation& left,
    const relational::Relation& right, rlearn::JoinOracle* truth,
    const CrowdJoinOptions& options = {});

/// Result of the label-everything baseline (Marcus et al.'s task: compute
/// the join output with the crowd, every surviving candidate pair is asked).
struct CrowdBruteResult {
  CostLedger ledger;
  double total_cost = 0;
  /// Pairs actually asked (candidates after filtering).
  size_t asked = 0;
  /// Candidate pairs skipped by the feature filter.
  size_t filtered_out = 0;
  /// Pilot HITs included in `ledger.pair_hits`.
  size_t pilot_questions = 0;
  /// Disagreements with ground truth over all pairs (filtered pairs count
  /// as answered "no").
  size_t accuracy_errors = 0;
  std::optional<size_t> feature_pair;
};

/// The brute-force crowd join: asks every candidate pair (optionally after
/// pilot-calibrated feature filtering). This is the baseline the version-
/// space session is measured against — the paper's "minimize interactions
/// == minimize cost" claim.
common::Result<CrowdBruteResult> RunCrowdBruteJoinSession(
    const rlearn::PairUniverse& universe, const relational::Relation& left,
    const relational::Relation& right, rlearn::JoinOracle* truth,
    const CrowdJoinOptions& options = {});

/// Picks the most selective universe pair for feature filtering: the pair
/// minimizing the number of candidate (left,right) pairs that agree on it
/// (ties: lowest index). Returns nullopt for an empty universe.
std::optional<size_t> MostSelectiveFeature(
    const rlearn::PairUniverse& universe, const relational::Relation& left,
    const relational::Relation& right);

/// Marcus-style pilot calibration: spends up to `options.pilot_budget` pair
/// HITs on random pairs looking for positives, then picks the most
/// selective universe pair that agrees on EVERY pilot positive (a feature
/// that provably cannot filter out those matches). Returns nullopt when the
/// pilot finds no positive. Costs are charged to `ledger`.
std::optional<size_t> PilotSelectedFeature(
    const rlearn::PairUniverse& universe, const relational::Relation& left,
    const relational::Relation& right, NoisyMajorityOracle* crowd,
    const CrowdJoinOptions& options, CostLedger* ledger,
    size_t* pilot_questions);

}  // namespace crowd
}  // namespace qlearn

#endif  // QLEARN_CROWD_CROWD_JOIN_H_
