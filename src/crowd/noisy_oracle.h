// Simulated crowd workers: a ground-truth join oracle wrapped with
// per-answer Bernoulli noise and majority voting over replicated HITs. The
// replication factor trades money for reliability — the knob the crowd-join
// experiment sweeps.
#ifndef QLEARN_CROWD_NOISY_ORACLE_H_
#define QLEARN_CROWD_NOISY_ORACLE_H_

#include <cstdint>

#include "common/rng.h"
#include "crowd/cost_model.h"
#include "rlearn/interactive_join.h"

namespace qlearn {
namespace crowd {

/// Majority vote of `replication` noisy copies of a ground-truth answer.
/// Each copy is flipped independently with probability `error_rate`.
class NoisyMajorityOracle {
 public:
  /// `truth` is not owned and must outlive the oracle.
  NoisyMajorityOracle(rlearn::JoinOracle* truth, double error_rate,
                      int replication, uint64_t seed)
      : truth_(truth),
        error_rate_(error_rate),
        replication_(replication < 1 ? 1 : replication),
        rng_(seed) {}

  /// Asks the crowd once: `replication` paid answers, majority wins (ties
  /// break toward negative, the marketplace default of rejecting a match).
  /// Adds the spend to `ledger`.
  bool Ask(const relational::Tuple& left, const relational::Tuple& right,
           CostLedger* ledger);

  /// Same question with a one-off replication override (used when a session
  /// escalates a conflicting answer).
  bool AskReplicated(const relational::Tuple& left,
                     const relational::Tuple& right, int replication,
                     CostLedger* ledger);

  int replication() const { return replication_; }

 private:
  rlearn::JoinOracle* truth_;
  double error_rate_;
  int replication_;
  common::Rng rng_;
};

}  // namespace crowd
}  // namespace qlearn

#endif  // QLEARN_CROWD_NOISY_ORACLE_H_
