#include "crowd/crowd_join.h"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <vector>

#include "rlearn/mask_scoring.h"

namespace qlearn {
namespace crowd {

using common::Result;
using common::Status;
using rlearn::EquiJoinVersionSpace;
using rlearn::MaskSatisfied;
using rlearn::PairExample;
using rlearn::PairMask;

namespace {

/// Per-universe-pair agreement counts over all candidate pairs (DB-side
/// statistics; costs nothing in HITs).
std::vector<size_t> AgreeCounts(const rlearn::PairUniverse& universe,
                                const relational::Relation& left,
                                const relational::Relation& right) {
  std::vector<size_t> counts(universe.size(), 0);
  for (size_t l = 0; l < left.size(); ++l) {
    for (size_t r = 0; r < right.size(); ++r) {
      const PairMask agree = universe.AgreeMask(left.row(l), right.row(r));
      for (size_t p = 0; p < universe.size(); ++p) {
        if (agree & (1ULL << p)) ++counts[p];
      }
    }
  }
  return counts;
}

}  // namespace

std::optional<size_t> MostSelectiveFeature(
    const rlearn::PairUniverse& universe, const relational::Relation& left,
    const relational::Relation& right) {
  if (universe.size() == 0) return std::nullopt;
  const std::vector<size_t> counts = AgreeCounts(universe, left, right);
  size_t best = 0;
  for (size_t p = 1; p < universe.size(); ++p) {
    if (counts[p] < counts[best]) best = p;
  }
  return best;
}

std::optional<size_t> PilotSelectedFeature(
    const rlearn::PairUniverse& universe, const relational::Relation& left,
    const relational::Relation& right, NoisyMajorityOracle* crowd,
    const CrowdJoinOptions& options, CostLedger* ledger,
    size_t* pilot_questions) {
  if (universe.size() == 0 || left.empty() || right.empty()) {
    return std::nullopt;
  }
  common::Rng rng(options.seed ^ 0x9117);
  // The feature must agree on every pilot positive, i.e. live inside the
  // intersection of their agreement masks — the pilot's estimate of θ*.
  PairMask pilot_theta = universe.FullMask();
  bool found_positive = false;
  for (size_t i = 0; i < options.pilot_budget; ++i) {
    const size_t l = rng.Uniform(left.size());
    const size_t r = rng.Uniform(right.size());
    ++*pilot_questions;
    if (crowd->Ask(left.row(l), right.row(r), ledger)) {
      found_positive = true;
      pilot_theta &= universe.AgreeMask(left.row(l), right.row(r));
    }
  }
  if (!found_positive || pilot_theta == 0) return std::nullopt;

  const std::vector<size_t> counts = AgreeCounts(universe, left, right);
  std::optional<size_t> best;
  for (size_t p = 0; p < universe.size(); ++p) {
    if (!(pilot_theta & (1ULL << p))) continue;
    if (!best || counts[p] < counts[*best]) best = p;
  }
  return best;
}

namespace {

/// One kept crowd answer.
struct Answer {
  PairExample pair;
  bool positive;
};

/// Rebuilds a version space from the kept answers.
EquiJoinVersionSpace BuildSpace(const rlearn::PairUniverse& universe,
                                const relational::Relation& left,
                                const relational::Relation& right,
                                const std::vector<Answer>& answers) {
  EquiJoinVersionSpace vs(&universe, &left, &right);
  for (const Answer& a : answers) {
    if (a.positive) {
      vs.AddPositive(a.pair);
    } else {
      vs.AddNegative(a.pair);
    }
  }
  return vs;
}

Status ValidateOptions(const rlearn::JoinOracle* truth,
                       const CrowdJoinOptions& options) {
  if (truth == nullptr) {
    return Status::InvalidArgument("ground-truth oracle must not be null");
  }
  if (options.worker_error_rate < 0 || options.worker_error_rate >= 0.5) {
    return Status::InvalidArgument(
        "worker_error_rate must be in [0, 0.5) for majority voting to help");
  }
  return Status::OK();
}

}  // namespace

Result<CrowdJoinResult> RunCrowdJoinSession(
    const rlearn::PairUniverse& universe, const relational::Relation& left,
    const relational::Relation& right, rlearn::JoinOracle* truth,
    const CrowdJoinOptions& options) {
  QLEARN_RETURN_IF_ERROR(ValidateOptions(truth, options));
  CrowdJoinResult result;
  NoisyMajorityOracle crowd(truth, options.worker_error_rate,
                            options.replication, options.seed);
  common::Rng rng(options.seed ^ 0xc0ffee);

  // Candidate pairs, optionally pruned by the pilot-calibrated filter.
  std::vector<PairExample> candidates;
  if (options.feature_filtering) {
    size_t pilot_questions = 0;
    result.feature_pair = PilotSelectedFeature(
        universe, left, right, &crowd, options, &result.ledger,
        &pilot_questions);
    result.questions += pilot_questions;
  }
  if (result.feature_pair) {
    // One feature-extraction HIT per record on each side: workers read off
    // the attribute the filter needs.
    result.ledger.feature_hits += left.size() + right.size();
    const PairMask feature_bit = 1ULL << *result.feature_pair;
    for (size_t l = 0; l < left.size(); ++l) {
      for (size_t r = 0; r < right.size(); ++r) {
        if (universe.AgreeMask(left.row(l), right.row(r)) & feature_bit) {
          candidates.push_back(PairExample{l, r});
        } else {
          ++result.filtered_out;
        }
      }
    }
  } else {
    for (size_t l = 0; l < left.size(); ++l) {
      for (size_t r = 0; r < right.size(); ++r) {
        candidates.push_back(PairExample{l, r});
      }
    }
  }
  std::vector<bool> settled(candidates.size(), false);

  std::vector<Answer> answers;
  EquiJoinVersionSpace vs = BuildSpace(universe, left, right, answers);

  while (result.questions < options.max_questions) {
    std::vector<size_t> informative;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (settled[i]) continue;
      switch (vs.Classify(candidates[i])) {
        case EquiJoinVersionSpace::PairStatus::kForcedPositive:
          settled[i] = true;
          ++result.forced_positive;
          break;
        case EquiJoinVersionSpace::PairStatus::kForcedNegative:
          settled[i] = true;
          ++result.forced_negative;
          break;
        case EquiJoinVersionSpace::PairStatus::kInformative:
          informative.push_back(i);
          break;
      }
    }
    if (informative.empty()) break;

    size_t chosen = informative[0];
    if (options.strategy == rlearn::JoinStrategy::kRandom) {
      chosen = informative[rng.Uniform(informative.size())];
    } else {
      // Split-half scoring against the surviving hypothesis pairs.
      long best_score = -1;
      for (size_t i : informative) {
        const PairMask agree =
            vs.most_specific() &
            universe.AgreeMask(left.row(candidates[i].left_row),
                               right.row(candidates[i].right_row));
        const int total = std::popcount(vs.most_specific());
        const int kept = std::popcount(agree);
        const long score = rlearn::SplitHalfScore(total, kept);
        if (score > best_score) {
          best_score = score;
          chosen = i;
        }
      }
    }

    const PairExample& q = candidates[chosen];
    bool answer = crowd.Ask(left.row(q.left_row), right.row(q.right_row),
                            &result.ledger);
    ++result.questions;
    settled[chosen] = true;

    // Tentatively keep the answer; on conflict, escalate with a bigger
    // majority, then drop it — the paper's "ignore some annotations".
    Answer kept{q, answer};
    answers.push_back(kept);
    vs = BuildSpace(universe, left, right, answers);
    int escalations_left = options.max_escalations;
    while (!vs.Consistent() && escalations_left-- > 0) {
      ++result.escalations;
      answers.pop_back();
      kept.positive = crowd.AskReplicated(
          left.row(q.left_row), right.row(q.right_row),
          options.escalation_replication, &result.ledger);
      answers.push_back(kept);
      vs = BuildSpace(universe, left, right, answers);
    }
    if (!vs.Consistent()) {
      answers.pop_back();
      ++result.dropped_answers;
      vs = BuildSpace(universe, left, right, answers);
    }
  }

  result.learned = vs.most_specific();
  result.total_cost = result.ledger.Total(options.cost);

  // Ground-truth audit over every pair (including filtered ones).
  for (size_t l = 0; l < left.size(); ++l) {
    for (size_t r = 0; r < right.size(); ++r) {
      const bool predicted = MaskSatisfied(
          result.learned, universe.AgreeMask(left.row(l), right.row(r)));
      if (predicted != truth->IsPositive(left.row(l), right.row(r))) {
        ++result.accuracy_errors;
      }
    }
  }
  return result;
}

Result<CrowdBruteResult> RunCrowdBruteJoinSession(
    const rlearn::PairUniverse& universe, const relational::Relation& left,
    const relational::Relation& right, rlearn::JoinOracle* truth,
    const CrowdJoinOptions& options) {
  QLEARN_RETURN_IF_ERROR(ValidateOptions(truth, options));
  CrowdBruteResult result;
  NoisyMajorityOracle crowd(truth, options.worker_error_rate,
                            options.replication, options.seed);

  if (options.feature_filtering) {
    result.feature_pair =
        PilotSelectedFeature(universe, left, right, &crowd, options,
                             &result.ledger, &result.pilot_questions);
  }
  const PairMask feature_bit =
      result.feature_pair ? (1ULL << *result.feature_pair) : 0;
  if (result.feature_pair) {
    result.ledger.feature_hits += left.size() + right.size();
  }

  for (size_t l = 0; l < left.size(); ++l) {
    for (size_t r = 0; r < right.size(); ++r) {
      const bool truth_answer = truth->IsPositive(left.row(l), right.row(r));
      bool predicted;
      if (result.feature_pair &&
          !(universe.AgreeMask(left.row(l), right.row(r)) & feature_bit)) {
        ++result.filtered_out;
        predicted = false;  // filtered pairs are assumed non-matches
      } else {
        predicted = crowd.Ask(left.row(l), right.row(r), &result.ledger);
        ++result.asked;
      }
      if (predicted != truth_answer) ++result.accuracy_errors;
    }
  }
  result.total_cost = result.ledger.Total(options.cost);
  return result;
}

}  // namespace crowd
}  // namespace qlearn
