// Sampling valid documents from multiplicity schemas, and random schema
// generation for the benchmark workloads (E8, E9).
#ifndef QLEARN_SCHEMA_SAMPLING_H_
#define QLEARN_SCHEMA_SAMPLING_H_

#include "common/interner.h"
#include "common/rng.h"
#include "common/status.h"
#include "schema/dms.h"
#include "xml/xml_tree.h"

namespace qlearn {
namespace schema {

/// Controls document sampling.
struct SampleOptions {
  /// Below this depth the sampler draws rich bags; past it, minimal bags.
  int soft_depth = 4;
  /// Geometric tail parameter for '+' / '*' repetitions.
  double repeat_probability = 0.4;
  /// Probability of realizing an optional ('?' / '*') occurrence.
  double optional_probability = 0.5;
};

/// Samples one valid document from `dms`. Fails when the schema is
/// unsatisfiable. Termination holds because past `soft_depth` the sampler
/// emits minimal bags, which follow the (acyclic on productive labels)
/// certain-edge structure.
common::Result<xml::XmlTree> SampleDocument(const Dms& dms, common::Rng* rng,
                                            const SampleOptions& options = {});

/// Parameters of the random canonical-DMS distribution used by E8/E9.
struct RandomDmsOptions {
  int num_labels = 8;
  /// Max child symbols per content model.
  int max_children = 4;
  /// Probability that a group of 2-3 symbols forms a disjunction clause.
  double disjunction_probability = 0.4;
};

/// Generates a random satisfiable canonical DMS over labels "t0".."tN".
/// Canonical form: singleton clauses with any multiplicity, plus exclusive
/// disjunction clauses (atom multiplicities in {1,+}, clause in {1,?}).
Dms RandomCanonicalDms(const RandomDmsOptions& options, common::Rng* rng,
                       common::Interner* interner);

}  // namespace schema
}  // namespace qlearn

#endif  // QLEARN_SCHEMA_SAMPLING_H_
