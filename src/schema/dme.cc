#include "schema/dme.h"

#include <algorithm>
#include <cctype>
#include <functional>
#include <set>

#include "common/strings.h"

namespace qlearn {
namespace schema {

using common::Result;
using common::Status;
using common::SymbolId;

namespace {

/// Counts capped at this value determine clause satisfaction (see header).
constexpr int kCountCap = 2;

int CountOf(const Bag& bag, SymbolId s) {
  auto it = bag.find(s);
  return it == bag.end() ? 0 : it->second;
}

/// True iff `allowed` is null (everything allowed) or contains `s`.
bool Allowed(const std::set<SymbolId>* allowed, SymbolId s) {
  return allowed == nullptr || allowed->count(s) > 0;
}

/// Enumerates assignments of {0..kCountCap} to `free_syms`, overlaying them
/// on `fixed`, and returns true iff `pred` holds for some assignment.
/// Symbols outside `allowed` are pinned to 0.
bool ExistsAssignment(const std::vector<SymbolId>& free_syms, Bag fixed,
                      const std::set<SymbolId>* allowed,
                      const std::function<bool(const Bag&)>& pred) {
  std::function<bool(size_t)> rec = [&](size_t i) -> bool {
    if (i == free_syms.size()) return pred(fixed);
    const int cap = Allowed(allowed, free_syms[i]) ? kCountCap : 0;
    for (int c = 0; c <= cap; ++c) {
      if (c == 0) {
        fixed.erase(free_syms[i]);
      } else {
        fixed[free_syms[i]] = c;
      }
      if (rec(i + 1)) return true;
    }
    fixed.erase(free_syms[i]);
    return false;
  };
  return rec(0);
}

}  // namespace

bool Clause::Accepts(const Bag& bag) const {
  // Range [min_parts, max_parts] of the number of parts m; satisfaction
  // requires the range to intersect the clause multiplicity's interval.
  long min_parts = 0;
  long max_parts = 0;
  bool max_unbounded = false;
  for (const Atom& atom : atoms) {
    const int c = CountOf(bag, atom.symbol);
    const int lo = MultiplicityLo(atom.mult);
    const int hi = MultiplicityHi(atom.mult);
    if (c > 0 && hi == 0) return false;  // symbol barred by multiplicity 0
    if (c > 0) {
      min_parts += (hi == kUnbounded) ? 1 : (c + hi - 1) / hi;
    }
    if (lo == 0) {
      max_unbounded = true;  // empty padding parts are allowed
    } else if (c > 0) {
      max_parts += c / lo;
    }
  }
  const int nlo = MultiplicityLo(mult);
  const int nhi = MultiplicityHi(mult);
  // Intersect [min_parts, max_parts(:∞)] with [nlo, nhi(:∞)].
  if (nhi != kUnbounded && min_parts > nhi) return false;
  if (!max_unbounded && max_parts < nlo) return false;
  return true;
}

Result<Dme> Dme::Create(std::vector<Clause> clauses) {
  std::set<SymbolId> seen;
  for (const Clause& c : clauses) {
    if (c.atoms.empty()) {
      return Status::InvalidArgument("DME clause with no atoms");
    }
    for (const Atom& a : c.atoms) {
      if (!seen.insert(a.symbol).second) {
        return Status::InvalidArgument(
            "symbol occurs twice in DME (single-occurrence violation)");
      }
    }
  }
  Dme dme;
  dme.clauses_ = std::move(clauses);
  return dme;
}

Dme Dme::FromSymbolMultiplicities(
    const std::vector<std::pair<SymbolId, Multiplicity>>& entries) {
  Dme dme;
  for (const auto& [symbol, mult] : entries) {
    Clause c;
    c.atoms.push_back(Atom{symbol, mult});
    c.mult = Multiplicity::kOne;
    dme.clauses_.push_back(std::move(c));
  }
  return dme;
}

std::vector<SymbolId> Dme::Symbols() const {
  std::vector<SymbolId> out;
  for (const Clause& c : clauses_) {
    for (const Atom& a : c.atoms) out.push_back(a.symbol);
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool Dme::Accepts(const Bag& bag) const {
  const std::vector<SymbolId> own = Symbols();
  for (const auto& [symbol, count] : bag) {
    if (count > 0 && !std::binary_search(own.begin(), own.end(), symbol)) {
      return false;  // foreign symbol
    }
  }
  for (const Clause& c : clauses_) {
    if (!c.Accepts(bag)) return false;
  }
  return true;
}

bool Dme::AcceptsEmpty() const { return Accepts(Bag{}); }

namespace {

bool CanContainImpl(const std::vector<Clause>& clauses, SymbolId symbol,
                    const std::set<SymbolId>* allowed) {
  if (!Allowed(allowed, symbol)) return false;
  for (const Clause& c : clauses) {
    bool owns = false;
    for (const Atom& a : c.atoms) owns = owns || a.symbol == symbol;
    if (!owns) continue;
    std::vector<SymbolId> free_syms;
    for (const Atom& other : c.atoms) {
      if (other.symbol != symbol) free_syms.push_back(other.symbol);
    }
    for (int cnt = 1; cnt <= kCountCap; ++cnt) {
      Bag fixed{{symbol, cnt}};
      if (ExistsAssignment(free_syms, fixed, allowed,
                           [&](const Bag& b) { return c.Accepts(b); })) {
        return true;
      }
    }
    return false;
  }
  return false;
}

bool ClauseSatisfiable(const Clause& c, const std::set<SymbolId>* allowed) {
  std::vector<SymbolId> syms;
  for (const Atom& a : c.atoms) syms.push_back(a.symbol);
  return ExistsAssignment(syms, Bag{}, allowed,
                          [&](const Bag& b) { return c.Accepts(b); });
}

}  // namespace

bool Dme::CanContain(SymbolId symbol) const {
  return CanContainImpl(clauses_, symbol, nullptr);
}

bool Dme::CanContainOver(SymbolId symbol,
                         const std::set<SymbolId>& allowed) const {
  if (!CanContainImpl(clauses_, symbol, &allowed)) return false;
  // The other clauses must also be satisfiable over `allowed`.
  for (const Clause& c : clauses_) {
    bool owns = false;
    for (const Atom& a : c.atoms) owns = owns || a.symbol == symbol;
    if (!owns && !ClauseSatisfiable(c, &allowed)) return false;
  }
  return true;
}

bool Dme::SatisfiableOver(const std::set<SymbolId>& allowed) const {
  for (const Clause& c : clauses_) {
    if (!ClauseSatisfiable(c, &allowed)) return false;
  }
  return true;
}

bool Dme::Requires(SymbolId symbol) const {
  for (const Clause& c : clauses_) {
    for (const Atom& a : c.atoms) {
      if (a.symbol != symbol) continue;
      std::vector<SymbolId> free_syms;
      for (const Atom& other : c.atoms) {
        if (other.symbol != symbol) free_syms.push_back(other.symbol);
      }
      // Required iff the clause rejects every bag with count 0 for symbol.
      return !ExistsAssignment(
          free_syms, Bag{}, nullptr,
          [&](const Bag& b) { return c.Accepts(b); });
    }
  }
  return false;
}

bool Dme::ContainedIn(const Dme& other) const {
  return ContainedInOver(other, {});  // empty set sentinel handled below
}

bool Dme::ContainedInOver(const Dme& other,
                          const std::set<SymbolId>& allowed_set) const {
  // An empty `allowed_set` means "no restriction" (callers wanting a truly
  // empty alphabet have an empty language anyway).
  const std::set<SymbolId>* allowed =
      allowed_set.empty() ? nullptr : &allowed_set;
  return ContainedInImpl(other, allowed);
}

bool Dme::ContainedInImpl(const Dme& other,
                          const std::set<common::SymbolId>* allowed) const {
  // Degenerate case: if some clause of `this` accepts no assignment at all,
  // the language is empty and containment holds vacuously.
  for (const Clause& c : clauses_) {
    if (!ClauseSatisfiable(c, allowed)) return true;
  }

  const std::vector<SymbolId> own = Symbols();
  const std::vector<SymbolId> theirs = other.Symbols();

  // A symbol producible by `this` but unknown to `other` is a counterexample.
  // (All clauses are satisfiable here, so the local check is exact.)
  for (SymbolId s : own) {
    if (!std::binary_search(theirs.begin(), theirs.end(), s) &&
        CanContainImpl(clauses_, s, allowed)) {
      return false;
    }
  }

  // For each clause D of `other`, search for a capped assignment of D's
  // symbols that D rejects but every clause of `this` can extend to an
  // accepted bag (counts of symbols outside D are free per `this`-clause).
  for (const Clause& d : other.clauses_) {
    std::vector<SymbolId> d_syms_in_this;
    for (const Atom& a : d.atoms) {
      if (std::binary_search(own.begin(), own.end(), a.symbol)) {
        d_syms_in_this.push_back(a.symbol);
      }
    }
    // Enumerate capped assignments over D's symbols that `this` knows;
    // symbols D knows but `this` does not are fixed to 0.
    std::vector<int> counts(d_syms_in_this.size(), 0);
    std::function<bool(size_t)> search = [&](size_t i) -> bool {
      if (i == d_syms_in_this.size()) {
        Bag v;
        for (size_t k = 0; k < d_syms_in_this.size(); ++k) {
          if (counts[k] > 0) v[d_syms_in_this[k]] = counts[k];
        }
        if (d.Accepts(v)) return false;  // not a violation of D
        // Check every clause of `this` extends v to an accepted bag.
        for (const Clause& c : clauses_) {
          Bag fixed;
          std::vector<SymbolId> free_syms;
          for (const Atom& a : c.atoms) {
            auto it = v.find(a.symbol);
            bool is_d_sym = false;
            for (SymbolId ds : d_syms_in_this) {
              if (ds == a.symbol) is_d_sym = true;
            }
            if (is_d_sym) {
              if (it != v.end()) fixed[a.symbol] = it->second;
            } else {
              free_syms.push_back(a.symbol);
            }
          }
          if (!ExistsAssignment(free_syms, fixed, allowed,
                                [&](const Bag& b) { return c.Accepts(b); })) {
            return false;  // this clause cannot host v; try next assignment
          }
        }
        return true;  // counterexample found
      }
      const int cap = Allowed(allowed, d_syms_in_this[i]) ? kCountCap : 0;
      for (int c = 0; c <= cap; ++c) {
        counts[i] = c;
        if (search(i + 1)) return true;
      }
      counts[i] = 0;
      return false;
    };
    if (search(0)) return false;
  }
  return true;
}

std::string Dme::ToString(const common::Interner& interner) const {
  std::string out;
  for (size_t i = 0; i < clauses_.size(); ++i) {
    if (i > 0) out += ", ";
    const Clause& c = clauses_[i];
    const bool wrap = c.atoms.size() > 1 || c.mult != Multiplicity::kOne;
    if (wrap && c.atoms.size() > 1) out += "(";
    for (size_t j = 0; j < c.atoms.size(); ++j) {
      if (j > 0) out += "|";
      out += interner.Name(c.atoms[j].symbol);
      if (c.atoms[j].mult != Multiplicity::kOne) {
        out += MultiplicityToString(c.atoms[j].mult);
      }
    }
    if (wrap && c.atoms.size() > 1) out += ")";
    if (c.mult != Multiplicity::kOne) out += MultiplicityToString(c.mult);
  }
  return out;
}

Result<Dme> ParseDme(std::string_view text, common::Interner* interner) {
  std::vector<Clause> clauses;
  const std::string_view trimmed = common::Trim(text);
  if (trimmed.empty()) return Dme::Create({});

  size_t pos = 0;
  auto skip_space = [&]() {
    while (pos < trimmed.size() &&
           std::isspace(static_cast<unsigned char>(trimmed[pos]))) {
      ++pos;
    }
  };
  auto parse_mult = [&](Multiplicity fallback) {
    if (pos < trimmed.size()) {
      if (trimmed[pos] == '?') {
        ++pos;
        return Multiplicity::kOpt;
      }
      if (trimmed[pos] == '+') {
        ++pos;
        return Multiplicity::kPlus;
      }
      if (trimmed[pos] == '*') {
        ++pos;
        return Multiplicity::kStar;
      }
    }
    return fallback;
  };
  auto parse_atom = [&]() -> Result<Atom> {
    skip_space();
    const size_t start = pos;
    while (pos < trimmed.size() &&
           (std::isalnum(static_cast<unsigned char>(trimmed[pos])) ||
            trimmed[pos] == '_' || trimmed[pos] == '@' ||
            trimmed[pos] == '#' || trimmed[pos] == '-')) {
      ++pos;
    }
    if (pos == start) {
      return Status::ParseError("expected symbol in DME '" +
                                std::string(text) + "' at offset " +
                                std::to_string(pos));
    }
    Atom atom;
    atom.symbol = interner->Intern(trimmed.substr(start, pos - start));
    atom.mult = parse_mult(Multiplicity::kOne);
    return atom;
  };

  for (;;) {
    skip_space();
    Clause clause;
    if (pos < trimmed.size() && trimmed[pos] == '(') {
      ++pos;
      for (;;) {
        auto atom = parse_atom();
        if (!atom.ok()) return atom.status();
        clause.atoms.push_back(atom.value());
        skip_space();
        if (pos < trimmed.size() && trimmed[pos] == '|') {
          ++pos;
          continue;
        }
        break;
      }
      skip_space();
      if (pos >= trimmed.size() || trimmed[pos] != ')') {
        return Status::ParseError("expected ')' in DME '" + std::string(text) +
                                  "'");
      }
      ++pos;
      clause.mult = parse_mult(Multiplicity::kOne);
    } else {
      auto atom = parse_atom();
      if (!atom.ok()) return atom.status();
      clause.atoms.push_back(atom.value());
      clause.mult = Multiplicity::kOne;
    }
    clauses.push_back(std::move(clause));
    skip_space();
    if (pos < trimmed.size() && trimmed[pos] == ',') {
      ++pos;
      continue;
    }
    break;
  }
  if (pos != trimmed.size()) {
    return Status::ParseError("trailing input in DME '" + std::string(text) +
                              "' at offset " + std::to_string(pos));
  }
  return Dme::Create(std::move(clauses));
}

}  // namespace schema
}  // namespace qlearn
