#include "schema/df_dtd.h"

#include <algorithm>

#include "automata/dfa.h"
#include "schema/depgraph.h"

namespace qlearn {
namespace schema {

namespace {

const std::vector<DfFactor>& EmptyRule() {
  static const std::vector<DfFactor>* kEmpty = new std::vector<DfFactor>();
  return *kEmpty;
}

}  // namespace

void DfDtd::SetRule(common::SymbolId label, std::vector<DfFactor> factors) {
  rules_[label] = std::move(factors);
}

const std::vector<DfFactor>& DfDtd::Rule(common::SymbolId label) const {
  auto it = rules_.find(label);
  return it == rules_.end() ? EmptyRule() : it->second;
}

std::vector<common::SymbolId> DfDtd::Labels() const {
  std::vector<common::SymbolId> out;
  out.reserve(rules_.size());
  for (const auto& [label, factors] : rules_) out.push_back(label);
  return out;
}

bool DfDtd::MatchesWord(const std::vector<DfFactor>& factors,
                        const std::vector<common::SymbolId>& word) {
  // reachable[f]: the word prefix consumed so far can stand at the boundary
  // before factor f. Greedy is wrong for models like "a* a", so we carry the
  // full boundary set; within one factor a^M we consume maximal runs and
  // enumerate the counts the multiplicity allows.
  const size_t k = factors.size();
  const size_t n = word.size();
  // dp[f][i]: position i reachable with factors [0,f) fully matched.
  std::vector<std::vector<bool>> dp(k + 1, std::vector<bool>(n + 1, false));
  dp[0][0] = true;
  for (size_t f = 0; f < k; ++f) {
    const DfFactor& factor = factors[f];
    const int lo = MultiplicityLo(factor.mult);
    const int hi = MultiplicityHi(factor.mult);
    for (size_t i = 0; i <= n; ++i) {
      if (!dp[f][i]) continue;
      // Consume c >= lo copies of factor.symbol starting at i.
      size_t run = 0;
      while (i + run < n && word[i + run] == factor.symbol) ++run;
      for (size_t c = 0; c <= run; ++c) {
        if (static_cast<int>(c) < lo) continue;
        if (hi != kUnbounded && static_cast<int>(c) > hi) break;
        dp[f + 1][i + c] = true;
      }
    }
  }
  return dp[k][n];
}

bool DfDtd::Validates(const xml::XmlTree& doc) const {
  if (doc.empty() || doc.label(doc.root()) != root_) return false;
  for (xml::NodeId n : doc.PreOrder()) {
    std::vector<common::SymbolId> word;
    word.reserve(doc.children(n).size());
    for (xml::NodeId c : doc.children(n)) word.push_back(doc.label(c));
    if (!MatchesWord(Rule(doc.label(n)), word)) return false;
  }
  return true;
}

automata::RegexPtr DfDtd::RuleAsRegex(common::SymbolId label) const {
  const std::vector<DfFactor>& factors = Rule(label);
  if (factors.empty()) return automata::Regex::Epsilon();
  std::vector<automata::RegexPtr> parts;
  parts.reserve(factors.size());
  for (const DfFactor& f : factors) {
    automata::RegexPtr atom = automata::Regex::Symbol(f.symbol);
    switch (f.mult) {
      case Multiplicity::kZero:
        atom = automata::Regex::Epsilon();
        break;
      case Multiplicity::kOne:
        break;
      case Multiplicity::kOpt:
        atom = automata::Regex::Opt(std::move(atom));
        break;
      case Multiplicity::kPlus:
        atom = automata::Regex::Plus(std::move(atom));
        break;
      case Multiplicity::kStar:
        atom = automata::Regex::Star(std::move(atom));
        break;
    }
    parts.push_back(std::move(atom));
  }
  return automata::Regex::Concat(std::move(parts));
}

Ms DfDtd::ToMs() const {
  Ms ms(root_);
  for (const auto& [label, factors] : rules_) {
    if (factors.empty()) {
      ms.AddLeafLabel(label);
      continue;
    }
    // Combine per-symbol interval sums: lower = Σ lowers, upper = Σ uppers.
    std::map<common::SymbolId, std::pair<int, int>> ranges;  // lo, hi
    for (const DfFactor& f : factors) {
      auto& [lo, hi] = ranges.emplace(f.symbol, std::make_pair(0, 0)).first
                           ->second;
      lo += MultiplicityLo(f.mult);
      const int fhi = MultiplicityHi(f.mult);
      if (hi != kUnbounded) {
        hi = fhi == kUnbounded ? kUnbounded : hi + fhi;
      }
    }
    bool any = false;
    for (const auto& [symbol, range] : ranges) {
      if (range.second == 0) continue;  // only zero-multiplicity factors
      ms.SetMultiplicity(label, symbol,
                         MultiplicityFromRange(range.first, range.second));
      any = true;
    }
    if (!any) ms.AddLeafLabel(label);
  }
  if (rules_.find(root_) == rules_.end() && root_ != common::kNoSymbol) {
    ms.AddLeafLabel(root_);
  }
  return ms;
}

std::set<common::SymbolId> DfDtd::ProductiveLabels() const {
  return ToMs().ProductiveLabels();
}

std::string DfDtd::ToString(const common::Interner& interner) const {
  std::string out;
  out += "root: ";
  out += root_ == common::kNoSymbol ? "?" : interner.Name(root_);
  out += "\n";
  for (const auto& [label, factors] : rules_) {
    out += interner.Name(label);
    out += " ->";
    if (factors.empty()) out += " ()";
    for (const DfFactor& f : factors) {
      out += " ";
      out += interner.Name(f.symbol);
      const std::string m = MultiplicityToString(f.mult);
      if (m != "1") out += m;
    }
    out += "\n";
  }
  return out;
}

bool QuerySatisfiable(const DfDtd& dtd, const twig::TwigQuery& query) {
  return QuerySatisfiable(dtd.ToMs(), query);
}

bool FilterImplied(const DfDtd& dtd, common::SymbolId context,
                   const twig::TwigQuery& query, twig::QNodeId filter_root) {
  return FilterImplied(dtd.ToMs(), context, query, filter_root);
}

DfDtdContainment CheckDfDtdContainment(const DfDtd& inner,
                                       const DfDtd& outer) {
  DfDtdContainment result;
  const std::set<common::SymbolId> productive = inner.ProductiveLabels();
  // An inner schema with an unproductive root has the empty language, which
  // is contained in anything.
  if (inner.root() == common::kNoSymbol ||
      productive.find(inner.root()) == productive.end()) {
    result.contained = true;
    return result;
  }
  if (inner.root() != outer.root()) {
    result.contained = false;
    result.witness_label = inner.root();
    return result;
  }

  // Labels reachable in actual inner trees: allowed-edge reachability from
  // the root through productive labels.
  std::set<common::SymbolId> reachable{inner.root()};
  std::vector<common::SymbolId> stack{inner.root()};
  while (!stack.empty()) {
    const common::SymbolId label = stack.back();
    stack.pop_back();
    for (const DfFactor& f : inner.Rule(label)) {
      if (MultiplicityHi(f.mult) == 0) continue;
      if (productive.find(f.symbol) == productive.end()) continue;
      if (reachable.insert(f.symbol).second) stack.push_back(f.symbol);
    }
  }

  for (common::SymbolId label : reachable) {
    // Inner content language restricted to productive symbols (only those
    // can appear in finite valid trees) must be included in the outer
    // content language.
    std::vector<DfFactor> restricted;
    for (const DfFactor& f : inner.Rule(label)) {
      if (productive.find(f.symbol) != productive.end()) {
        restricted.push_back(f);
      } else if (MultiplicityLo(f.mult) >= 1) {
        // A required unproductive child: the label itself is unproductive;
        // it cannot be reachable, but guard anyway.
        restricted.clear();
        break;
      }
    }
    DfDtd probe;
    probe.SetRule(label, restricted);
    automata::RegexPtr inner_regex = probe.RuleAsRegex(label);
    automata::RegexPtr outer_regex = outer.RuleAsRegex(label);
    // A shared complete alphabet for both DFAs.
    std::vector<common::SymbolId> alphabet = inner_regex->Alphabet();
    for (common::SymbolId s : outer_regex->Alphabet()) alphabet.push_back(s);
    std::sort(alphabet.begin(), alphabet.end());
    alphabet.erase(std::unique(alphabet.begin(), alphabet.end()),
                   alphabet.end());
    const automata::Dfa inner_dfa =
        automata::Dfa::FromRegex(*inner_regex, alphabet);
    const automata::Dfa outer_dfa =
        automata::Dfa::FromRegex(*outer_regex, alphabet);
    if (!automata::Dfa::Contains(outer_dfa, inner_dfa)) {
      result.contained = false;
      result.witness_label = label;
      if (auto witness =
              automata::Dfa::DifferenceWitness(inner_dfa, outer_dfa)) {
        result.witness_word = std::move(*witness);
      }
      return result;
    }
  }
  result.contained = true;
  return result;
}

}  // namespace schema
}  // namespace qlearn
