// Disjunction-free multiplicity schemas (MS): each label maps every child
// symbol to one multiplicity (absent symbols are barred). This is the
// fragment for which the paper reduces query satisfiability and query
// implication to dependency-graph embeddings (DESIGN.md §2.3).
#ifndef QLEARN_SCHEMA_MS_H_
#define QLEARN_SCHEMA_MS_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/interner.h"
#include "schema/dme.h"
#include "schema/dms.h"
#include "schema/multiplicity.h"
#include "xml/xml_tree.h"

namespace qlearn {
namespace schema {

/// A disjunction-free multiplicity schema.
class Ms {
 public:
  Ms() = default;
  explicit Ms(common::SymbolId root) : root_(root) {}

  common::SymbolId root() const { return root_; }
  void set_root(common::SymbolId root) { root_ = root; }

  /// Declares that `label` nodes may have `child`-labeled children with the
  /// given multiplicity. Also registers `label` in the alphabet.
  void SetMultiplicity(common::SymbolId label, common::SymbolId child,
                       Multiplicity mult);

  /// Registers `label` with no permitted children (a required leaf).
  void AddLeafLabel(common::SymbolId label);

  /// Multiplicity of `child` under `label` (kZero when not declared).
  Multiplicity GetMultiplicity(common::SymbolId label,
                               common::SymbolId child) const;

  /// True iff `label` is in the schema's alphabet.
  bool HasLabel(common::SymbolId label) const;

  /// All alphabet labels, sorted.
  std::vector<common::SymbolId> Labels() const;

  /// The (child, multiplicity) entries of `label` with non-zero
  /// multiplicity, sorted by child symbol.
  std::vector<std::pair<common::SymbolId, Multiplicity>> Children(
      common::SymbolId label) const;

  /// True iff `doc` is valid under this schema.
  bool Validates(const xml::XmlTree& doc) const;

  /// Labels that can occur in a finite valid tree (no required-child cycle).
  std::set<common::SymbolId> ProductiveLabels() const;

  /// PTIME containment: per reachable label, per symbol interval inclusion.
  bool ContainedIn(const Ms& other) const;

  /// Embeds this schema into the equivalent DMS (one single-atom clause per
  /// declared symbol).
  Dms ToDms() const;

  /// Multi-line rendering.
  std::string ToString(const common::Interner& interner) const;

 private:
  std::set<common::SymbolId> ReachableLabels() const;

  common::SymbolId root_ = common::kNoSymbol;
  std::map<common::SymbolId, std::map<common::SymbolId, Multiplicity>> rules_;
};

}  // namespace schema
}  // namespace qlearn

#endif  // QLEARN_SCHEMA_MS_H_
