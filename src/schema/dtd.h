// Ordered DTDs: one regular-expression content model per label, validated
// against the left-to-right child sequence. Used as the classical baseline
// the paper contrasts multiplicity schemas with, and as the generator
// contract of the XMark-style documents.
#ifndef QLEARN_SCHEMA_DTD_H_
#define QLEARN_SCHEMA_DTD_H_

#include <map>
#include <string>
#include <vector>

#include "automata/dfa.h"
#include "automata/regex.h"
#include "common/interner.h"
#include "common/status.h"
#include "xml/xml_tree.h"

namespace qlearn {
namespace schema {

/// A Document Type Definition over interned labels.
class Dtd {
 public:
  Dtd() = default;
  explicit Dtd(common::SymbolId root) : root_(root) {}

  common::SymbolId root() const { return root_; }
  void set_root(common::SymbolId root) { root_ = root; }

  /// Sets the content model of `label`; the regex is compiled to a DFA.
  void SetRule(common::SymbolId label, automata::RegexPtr content);

  /// Content model of `label` or nullptr.
  const automata::Regex* Rule(common::SymbolId label) const;

  /// All labels with rules, sorted.
  std::vector<common::SymbolId> Labels() const;

  /// True iff the root label matches and every node's ordered child-label
  /// word is in its label's content language.
  bool Validates(const xml::XmlTree& doc) const;

  /// Like Validates, reporting the first offending node.
  common::Status Validate(const xml::XmlTree& doc,
                          const common::Interner& interner) const;

  /// Multi-line rendering "label -> regex".
  std::string ToString(const common::Interner& interner) const;

 private:
  common::SymbolId root_ = common::kNoSymbol;
  struct CompiledRule {
    automata::RegexPtr regex;
    automata::Dfa dfa;
  };
  std::map<common::SymbolId, CompiledRule> rules_;
};

}  // namespace schema
}  // namespace qlearn

#endif  // QLEARN_SCHEMA_DTD_H_
