// Twig-query containment and equivalence IN THE PRESENCE of a
// disjunction-free multiplicity schema — the problem the paper proves
// coNP-complete for this fragment (vs EXPTIME-complete for full DTDs), and
// the question its schema-aware learning optimization leaves open ("we do
// not know whether the query with the filter is equivalent in the presence
// of schema with the same query without the filter").
//
// Decision procedure: counterexample search over schema-typed canonical
// instantiations of the inner query. Every query node is assigned a schema
// label consistent with the allowed-edge dependency graph (wildcards range
// over candidates, descendant edges expand to allowed label paths up to a
// bound), the skeleton is closed under required children (certain edges),
// repaired by sibling merging where multiplicities cap counts, and the
// outer query is evaluated on the result. The search is exponential in the
// worst case — expectedly, for a coNP-complete problem — and reports
// kUnknown when its exploration caps are hit.
#ifndef QLEARN_SCHEMA_SCHEMA_CONTAINMENT_H_
#define QLEARN_SCHEMA_SCHEMA_CONTAINMENT_H_

#include <cstdint>
#include <optional>

#include "schema/ms.h"
#include "twig/twig_query.h"
#include "xml/xml_tree.h"

namespace qlearn {
namespace schema {

/// Three-valued verdict of the bounded counterexample search.
enum class SchemaContainment {
  kContained,     ///< No counterexample exists within the explored space.
  kNotContained,  ///< A schema-valid counterexample document was found.
  kUnknown,       ///< An exploration cap was hit first.
};

struct SchemaContainmentOptions {
  /// Max intermediate nodes materialized for one descendant edge
  /// (0 = automatic: |outer query| + schema alphabet size + 1).
  int path_bound = 0;
  /// Cap on typed instantiations explored.
  size_t max_instantiations = 50000;
  /// Cap on allowed label paths enumerated per descendant edge; when it
  /// truncates, a kContained outcome is downgraded to kUnknown.
  size_t max_paths_per_edge = 256;
};

struct SchemaContainmentReport {
  SchemaContainment verdict = SchemaContainment::kUnknown;
  /// Typed instantiations explored.
  size_t instantiations = 0;
  /// Instantiations discarded because multiplicity repair failed (their
  /// absence can only widen kContained to kUnknown, never corrupt
  /// kNotContained).
  size_t discarded = 0;
  /// When kNotContained: a schema-valid document and a node selected by the
  /// inner but not the outer query.
  std::optional<xml::XmlTree> counterexample;
  xml::NodeId witness = 0;
};

/// Checks L_S(inner) ⊆ L_S(outer): every node of every `schema`-valid
/// document selected by `inner` is selected by `outer`. Both queries must
/// have selection nodes.
SchemaContainmentReport CheckContainmentUnderSchema(
    const twig::TwigQuery& inner, const twig::TwigQuery& outer,
    const Ms& schema, const SchemaContainmentOptions& options = {});

/// Containment both ways; kUnknown dominates kNotContained-free outcomes.
SchemaContainment CheckEquivalenceUnderSchema(
    const twig::TwigQuery& a, const twig::TwigQuery& b, const Ms& schema,
    const SchemaContainmentOptions& options = {});

}  // namespace schema
}  // namespace qlearn

#endif  // QLEARN_SCHEMA_SCHEMA_CONTAINMENT_H_
