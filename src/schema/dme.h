// Disjunctive multiplicity expressions (DMEs): unordered content models of
// the form  C1 || C2 || ... || Cn  with clauses  (a1^M1 | ... | ak^Mk)^N
// under the single-occurrence restriction (DESIGN.md §2.3).
//
// Membership is decided per clause by counting: a bag B satisfies a clause
// iff B can be split into m non-phantom parts, each part being a run of one
// alternative's symbol with size in that atom's multiplicity, where m lies in
// the clause multiplicity (atoms whose multiplicity contains 0 may also
// contribute empty "padding" parts). With multiplicities restricted to
// {0,1,?,+,*}, satisfaction depends only on per-symbol counts capped at 2,
// which the containment test exploits (see dme.cc).
#ifndef QLEARN_SCHEMA_DME_H_
#define QLEARN_SCHEMA_DME_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/interner.h"
#include "common/status.h"
#include "schema/multiplicity.h"

namespace qlearn {
namespace schema {

/// A bag of symbols: symbol -> count (counts >= 1; absent means 0).
using Bag = std::map<common::SymbolId, int>;

/// One alternative of a clause: a symbol with its multiplicity.
struct Atom {
  common::SymbolId symbol;
  Multiplicity mult;
};

/// A disjunction clause with an outer multiplicity.
struct Clause {
  std::vector<Atom> atoms;
  Multiplicity mult = Multiplicity::kOne;

  /// True iff the clause accepts the counts of its own symbols in `bag`
  /// (symbols of other clauses are ignored).
  bool Accepts(const Bag& bag) const;
};

/// A disjunctive multiplicity expression.
class Dme {
 public:
  Dme() = default;

  /// Builds from clauses; fails unless every symbol occurs at most once
  /// across the whole expression (single-occurrence restriction).
  static common::Result<Dme> Create(std::vector<Clause> clauses);

  /// Convenience: one single-atom clause per (symbol, multiplicity) entry,
  /// i.e. a disjunction-free expression.
  static Dme FromSymbolMultiplicities(
      const std::vector<std::pair<common::SymbolId, Multiplicity>>& entries);

  const std::vector<Clause>& clauses() const { return clauses_; }

  /// All symbols of the expression, sorted.
  std::vector<common::SymbolId> Symbols() const;

  /// True iff `bag` uses only this expression's symbols and every clause
  /// accepts its projection of `bag`.
  bool Accepts(const Bag& bag) const;

  /// True iff the empty bag is accepted.
  bool AcceptsEmpty() const;

  /// Exact language inclusion L(this) ⊆ L(other); exponential only in the
  /// maximum clause arity (PTIME for bounded-arity clauses, matching the
  /// paper's tractability claim). See dme.cc for the capped-counterexample
  /// argument.
  bool ContainedIn(const Dme& other) const;

  /// True iff some accepted bag has count >= 1 for `symbol`.
  bool CanContain(common::SymbolId symbol) const;

  /// True iff every accepted bag has count >= 1 for `symbol`.
  bool Requires(common::SymbolId symbol) const;

  // -- Restricted-alphabet variants -------------------------------------
  // These consider only bags whose symbols all lie in `allowed`; they drive
  // the productivity-aware schema containment of Dms (DESIGN.md §2.3).

  /// True iff some bag over `allowed` is accepted.
  bool SatisfiableOver(const std::set<common::SymbolId>& allowed) const;

  /// True iff some accepted bag over `allowed` has count >= 1 for `symbol`.
  bool CanContainOver(common::SymbolId symbol,
                      const std::set<common::SymbolId>& allowed) const;

  /// L(this) ∩ bags-over-`allowed` ⊆ L(other).
  bool ContainedInOver(const Dme& other,
                       const std::set<common::SymbolId>& allowed) const;

  /// Rendering, e.g. "name, phone?, (homepage|creditcard)?, interest*".
  std::string ToString(const common::Interner& interner) const;

 private:
  bool ContainedInImpl(const Dme& other,
                       const std::set<common::SymbolId>* allowed) const;

  std::vector<Clause> clauses_;
};

/// Parses the textual DME syntax:
///   dme    := clause (',' clause)* | ''        (empty = no children allowed)
///   clause := '(' atom ('|' atom)* ')' mult? | atom
///   atom   := label mult?
///   mult   := '?' | '+' | '*'
common::Result<Dme> ParseDme(std::string_view text,
                             common::Interner* interner);

}  // namespace schema
}  // namespace qlearn

#endif  // QLEARN_SCHEMA_DME_H_
