#include "schema/dms.h"

namespace qlearn {
namespace schema {

using common::Status;
using common::SymbolId;

void Dms::SetRule(SymbolId label, Dme content) {
  rules_[label] = std::move(content);
}

const Dme* Dms::Rule(SymbolId label) const {
  auto it = rules_.find(label);
  return it == rules_.end() ? nullptr : &it->second;
}

std::vector<SymbolId> Dms::Labels() const {
  std::vector<SymbolId> out;
  out.reserve(rules_.size());
  for (const auto& [label, rule] : rules_) {
    (void)rule;
    out.push_back(label);
  }
  return out;
}

bool Dms::Validates(const xml::XmlTree& doc) const {
  if (doc.empty() || doc.label(doc.root()) != root_) return false;
  for (xml::NodeId n : doc.PreOrder()) {
    const Dme* rule = Rule(doc.label(n));
    if (rule == nullptr) return false;
    Bag bag;
    for (SymbolId s : doc.ChildLabelBag(n)) ++bag[s];
    if (!rule->Accepts(bag)) return false;
  }
  return true;
}

Status Dms::Validate(const xml::XmlTree& doc,
                     const common::Interner& interner) const {
  if (doc.empty()) return Status::InvalidArgument("empty document");
  if (doc.label(doc.root()) != root_) {
    return Status::InvalidArgument(
        "root label '" + interner.Name(doc.label(doc.root())) +
        "' does not match schema root '" + interner.Name(root_) + "'");
  }
  for (xml::NodeId n : doc.PreOrder()) {
    const Dme* rule = Rule(doc.label(n));
    if (rule == nullptr) {
      return Status::InvalidArgument("no rule for label '" +
                                     interner.Name(doc.label(n)) + "'");
    }
    Bag bag;
    for (SymbolId s : doc.ChildLabelBag(n)) ++bag[s];
    if (!rule->Accepts(bag)) {
      return Status::InvalidArgument(
          "children of a node labeled '" + interner.Name(doc.label(n)) +
          "' violate content model '" + rule->ToString(interner) + "'");
    }
  }
  return Status::OK();
}

std::set<SymbolId> Dms::ProductiveLabels() const {
  std::set<SymbolId> productive;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [label, rule] : rules_) {
      if (productive.count(label)) continue;
      if (rule.SatisfiableOver(productive)) {
        productive.insert(label);
        changed = true;
      }
    }
  }
  return productive;
}

std::set<SymbolId> Dms::ReachableLabels() const {
  const std::set<SymbolId> productive = ProductiveLabels();
  std::set<SymbolId> reachable;
  if (!productive.count(root_)) return reachable;
  std::vector<SymbolId> frontier{root_};
  reachable.insert(root_);
  while (!frontier.empty()) {
    const SymbolId label = frontier.back();
    frontier.pop_back();
    const Dme* rule = Rule(label);
    if (rule == nullptr) continue;
    for (SymbolId s : rule->Symbols()) {
      if (reachable.count(s) || !productive.count(s)) continue;
      if (rule->CanContainOver(s, productive)) {
        reachable.insert(s);
        frontier.push_back(s);
      }
    }
  }
  return reachable;
}

bool Dms::Satisfiable() const {
  return root_ != common::kNoSymbol && ProductiveLabels().count(root_) > 0;
}

bool Dms::ContainedIn(const Dms& other) const {
  if (!Satisfiable()) return true;
  if (root_ != other.root_) return false;
  const std::set<SymbolId> productive = ProductiveLabels();
  for (SymbolId label : ReachableLabels()) {
    const Dme* mine = Rule(label);
    const Dme* theirs = other.Rule(label);
    if (theirs == nullptr) return false;
    if (!mine->ContainedInOver(*theirs, productive)) return false;
  }
  return true;
}

std::string Dms::ToString(const common::Interner& interner) const {
  std::string out = "root: " + interner.Name(root_) + "\n";
  for (const auto& [label, rule] : rules_) {
    out += interner.Name(label) + " -> " + rule.ToString(interner) + "\n";
  }
  return out;
}

}  // namespace schema
}  // namespace qlearn
