#include "schema/multiplicity.h"

namespace qlearn {
namespace schema {

int MultiplicityLo(Multiplicity m) {
  switch (m) {
    case Multiplicity::kZero:
    case Multiplicity::kOpt:
    case Multiplicity::kStar:
      return 0;
    case Multiplicity::kOne:
    case Multiplicity::kPlus:
      return 1;
  }
  return 0;
}

int MultiplicityHi(Multiplicity m) {
  switch (m) {
    case Multiplicity::kZero:
      return 0;
    case Multiplicity::kOne:
    case Multiplicity::kOpt:
      return 1;
    case Multiplicity::kPlus:
    case Multiplicity::kStar:
      return kUnbounded;
  }
  return 0;
}

bool MultiplicityContains(Multiplicity m, int count) {
  if (count < MultiplicityLo(m)) return false;
  const int hi = MultiplicityHi(m);
  return hi == kUnbounded || count <= hi;
}

bool MultiplicityIncluded(Multiplicity outer, Multiplicity inner) {
  const int ihi = MultiplicityHi(inner);
  const int ohi = MultiplicityHi(outer);
  if (MultiplicityLo(inner) < MultiplicityLo(outer)) return false;
  if (ohi == kUnbounded) return true;
  return ihi != kUnbounded && ihi <= ohi;
}

Multiplicity MultiplicityJoin(Multiplicity a, Multiplicity b) {
  const int lo = MultiplicityLo(a) < MultiplicityLo(b) ? MultiplicityLo(a)
                                                       : MultiplicityLo(b);
  const int ahi = MultiplicityHi(a);
  const int bhi = MultiplicityHi(b);
  const int hi = (ahi == kUnbounded || bhi == kUnbounded)
                     ? kUnbounded
                     : (ahi > bhi ? ahi : bhi);
  return MultiplicityFromRange(lo, hi);
}

Multiplicity MultiplicityFromRange(int lo, int hi) {
  if (hi == 0) return Multiplicity::kZero;
  if (lo >= 1) {
    return hi == 1 ? Multiplicity::kOne : Multiplicity::kPlus;
  }
  return hi == 1 ? Multiplicity::kOpt : Multiplicity::kStar;
}

std::string MultiplicityToString(Multiplicity m) {
  switch (m) {
    case Multiplicity::kZero:
      return "0";
    case Multiplicity::kOne:
      return "1";
    case Multiplicity::kOpt:
      return "?";
    case Multiplicity::kPlus:
      return "+";
    case Multiplicity::kStar:
      return "*";
  }
  return "?";
}

}  // namespace schema
}  // namespace qlearn
