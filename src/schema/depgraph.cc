#include "schema/depgraph.h"

#include <algorithm>
#include <functional>

namespace qlearn {
namespace schema {

using common::SymbolId;
using twig::Axis;
using twig::QNodeId;
using twig::TwigQuery;

namespace {

/// Transitive closure (>= 1 step) of `edges` restricted to `labels`.
std::map<SymbolId, std::set<SymbolId>> Closure(
    const std::set<SymbolId>& labels,
    const std::map<SymbolId, std::set<SymbolId>>& edges) {
  std::map<SymbolId, std::set<SymbolId>> reach;
  for (SymbolId a : labels) {
    // DFS from a.
    std::vector<SymbolId> stack;
    auto it = edges.find(a);
    if (it != edges.end()) {
      for (SymbolId b : it->second) stack.push_back(b);
    }
    while (!stack.empty()) {
      const SymbolId b = stack.back();
      stack.pop_back();
      if (!reach[a].insert(b).second) continue;
      auto jt = edges.find(b);
      if (jt != edges.end()) {
        for (SymbolId c : jt->second) stack.push_back(c);
      }
    }
  }
  return reach;
}

}  // namespace

DependencyGraph::DependencyGraph(const Ms& schema) {
  labels_ = schema.ProductiveLabels();
  for (SymbolId a : labels_) {
    for (const auto& [b, mult] : schema.Children(a)) {
      if (!labels_.count(b)) continue;  // non-productive children never occur
      edges_[a].insert(b);
      if (MultiplicityLo(mult) > 0) certain_edges_[a].insert(b);
    }
  }
  reach_ = Closure(labels_, edges_);
  certain_reach_ = Closure(labels_, certain_edges_);
}

bool DependencyGraph::HasEdge(SymbolId a, SymbolId b) const {
  auto it = edges_.find(a);
  return it != edges_.end() && it->second.count(b) > 0;
}

bool DependencyGraph::HasCertainEdge(SymbolId a, SymbolId b) const {
  auto it = certain_edges_.find(a);
  return it != certain_edges_.end() && it->second.count(b) > 0;
}

bool DependencyGraph::Reachable(SymbolId a, SymbolId b) const {
  auto it = reach_.find(a);
  return it != reach_.end() && it->second.count(b) > 0;
}

bool DependencyGraph::CertainReachable(SymbolId a, SymbolId b) const {
  auto it = certain_reach_.find(a);
  return it != certain_reach_.end() && it->second.count(b) > 0;
}

bool DependencyGraph::HasAnyEdge(SymbolId a) const {
  auto it = edges_.find(a);
  return it != edges_.end() && !it->second.empty();
}

bool DependencyGraph::HasAnyCertainEdge(SymbolId a) const {
  auto it = certain_edges_.find(a);
  return it != certain_edges_.end() && !it->second.empty();
}

bool QuerySatisfiable(const Ms& schema, const TwigQuery& query) {
  const DependencyGraph graph(schema);
  if (!graph.labels().count(schema.root())) return false;  // no valid doc

  const std::vector<SymbolId> labels(graph.labels().begin(),
                                     graph.labels().end());
  auto label_index = [&](SymbolId a) {
    return static_cast<size_t>(
        std::lower_bound(labels.begin(), labels.end(), a) - labels.begin());
  };

  // sat[q][i]: query subtree at q embeds with q mapped to label labels[i].
  std::vector<std::vector<char>> sat(
      query.NumNodes(), std::vector<char>(labels.size(), 0));
  for (QNodeId q = static_cast<QNodeId>(query.NumNodes()); q-- > 1;) {
    for (size_t i = 0; i < labels.size(); ++i) {
      const SymbolId a = labels[i];
      if (query.label(q) != twig::kWildcard && query.label(q) != a) continue;
      bool ok = true;
      for (QNodeId c : query.children(q)) {
        bool placed = false;
        for (size_t j = 0; j < labels.size() && !placed; ++j) {
          if (!sat[c][j]) continue;
          const SymbolId b = labels[j];
          placed = query.axis(c) == Axis::kChild ? graph.HasEdge(a, b)
                                                 : graph.Reachable(a, b);
        }
        if (!placed) {
          ok = false;
          break;
        }
      }
      sat[q][i] = ok ? 1 : 0;
    }
  }

  // Root children: child axis -> must map to the schema root; descendant
  // axis -> the root or anything reachable from it.
  const size_t root_idx = label_index(schema.root());
  for (QNodeId c : query.children(0)) {
    bool placed = false;
    if (query.axis(c) == Axis::kChild) {
      placed = sat[c][root_idx] != 0;
    } else {
      for (size_t j = 0; j < labels.size() && !placed; ++j) {
        if (!sat[c][j]) continue;
        placed = labels[j] == schema.root() ||
                 graph.Reachable(schema.root(), labels[j]);
      }
    }
    if (!placed) return false;
  }
  return true;
}

bool FilterImplied(const Ms& schema, SymbolId context, const TwigQuery& query,
                   QNodeId filter_root) {
  const DependencyGraph graph(schema);
  if (!graph.labels().count(context)) {
    // `context` never occurs in a valid document: vacuously implied.
    return true;
  }

  // implied(x, a): the filter subtree at x is certainly present beneath any
  // valid node labeled a, with x mapped appropriately.
  std::function<bool(QNodeId, SymbolId)> placed_under =
      [&](QNodeId x, SymbolId a) -> bool {
    // Find a certain target b for x under a.
    for (SymbolId b : graph.labels()) {
      const bool edge_ok = query.axis(x) == Axis::kChild
                               ? graph.HasCertainEdge(a, b)
                               : graph.CertainReachable(a, b);
      if (!edge_ok) continue;
      if (query.label(x) != twig::kWildcard && query.label(x) != b) continue;
      bool kids_ok = true;
      for (QNodeId y : query.children(x)) {
        if (!placed_under(y, b)) {
          kids_ok = false;
          break;
        }
      }
      if (kids_ok) return true;
    }
    return false;
  };
  return placed_under(filter_root, context);
}

}  // namespace schema
}  // namespace qlearn
