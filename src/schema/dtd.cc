#include "schema/dtd.h"

namespace qlearn {
namespace schema {

using common::Status;
using common::SymbolId;

void Dtd::SetRule(SymbolId label, automata::RegexPtr content) {
  automata::Dfa dfa = automata::Dfa::FromRegex(*content);
  rules_.erase(label);
  rules_.emplace(label, CompiledRule{std::move(content), std::move(dfa)});
}

const automata::Regex* Dtd::Rule(SymbolId label) const {
  auto it = rules_.find(label);
  return it == rules_.end() ? nullptr : it->second.regex.get();
}

std::vector<SymbolId> Dtd::Labels() const {
  std::vector<SymbolId> out;
  out.reserve(rules_.size());
  for (const auto& [label, rule] : rules_) {
    (void)rule;
    out.push_back(label);
  }
  return out;
}

bool Dtd::Validates(const xml::XmlTree& doc) const {
  if (doc.empty() || doc.label(doc.root()) != root_) return false;
  for (xml::NodeId n : doc.PreOrder()) {
    auto it = rules_.find(doc.label(n));
    if (it == rules_.end()) return false;
    std::vector<SymbolId> word;
    word.reserve(doc.children(n).size());
    for (xml::NodeId c : doc.children(n)) word.push_back(doc.label(c));
    if (!it->second.dfa.Accepts(word)) return false;
  }
  return true;
}

Status Dtd::Validate(const xml::XmlTree& doc,
                     const common::Interner& interner) const {
  if (doc.empty()) return Status::InvalidArgument("empty document");
  if (doc.label(doc.root()) != root_) {
    return Status::InvalidArgument(
        "root label '" + interner.Name(doc.label(doc.root())) +
        "' does not match DTD root '" + interner.Name(root_) + "'");
  }
  for (xml::NodeId n : doc.PreOrder()) {
    auto it = rules_.find(doc.label(n));
    if (it == rules_.end()) {
      return Status::InvalidArgument("no DTD rule for label '" +
                                     interner.Name(doc.label(n)) + "'");
    }
    std::vector<SymbolId> word;
    word.reserve(doc.children(n).size());
    for (xml::NodeId c : doc.children(n)) word.push_back(doc.label(c));
    if (!it->second.dfa.Accepts(word)) {
      return Status::InvalidArgument(
          "children of node labeled '" + interner.Name(doc.label(n)) +
          "' do not match content model '" +
          it->second.regex->ToString(interner) + "'");
    }
  }
  return Status::OK();
}

std::string Dtd::ToString(const common::Interner& interner) const {
  std::string out = "root: " +
                    (root_ == common::kNoSymbol ? std::string("<none>")
                                                : interner.Name(root_)) +
                    "\n";
  for (const auto& [label, rule] : rules_) {
    out += interner.Name(label) + " -> " + rule.regex->ToString(interner) +
           "\n";
  }
  return out;
}

}  // namespace schema
}  // namespace qlearn
