#include "schema/ms.h"

namespace qlearn {
namespace schema {

using common::SymbolId;

void Ms::SetMultiplicity(SymbolId label, SymbolId child, Multiplicity mult) {
  rules_[label][child] = mult;
  rules_.try_emplace(child);  // the child joins the alphabet as well
}

void Ms::AddLeafLabel(SymbolId label) { rules_.try_emplace(label); }

Multiplicity Ms::GetMultiplicity(SymbolId label, SymbolId child) const {
  auto it = rules_.find(label);
  if (it == rules_.end()) return Multiplicity::kZero;
  auto jt = it->second.find(child);
  return jt == it->second.end() ? Multiplicity::kZero : jt->second;
}

bool Ms::HasLabel(SymbolId label) const { return rules_.count(label) > 0; }

std::vector<SymbolId> Ms::Labels() const {
  std::vector<SymbolId> out;
  out.reserve(rules_.size());
  for (const auto& [label, rule] : rules_) {
    (void)rule;
    out.push_back(label);
  }
  return out;
}

std::vector<std::pair<SymbolId, Multiplicity>> Ms::Children(
    SymbolId label) const {
  std::vector<std::pair<SymbolId, Multiplicity>> out;
  auto it = rules_.find(label);
  if (it == rules_.end()) return out;
  for (const auto& [child, mult] : it->second) {
    if (mult != Multiplicity::kZero) out.emplace_back(child, mult);
  }
  return out;
}

bool Ms::Validates(const xml::XmlTree& doc) const {
  if (doc.empty() || doc.label(doc.root()) != root_) return false;
  for (xml::NodeId n : doc.PreOrder()) {
    const SymbolId label = doc.label(n);
    if (!HasLabel(label)) return false;
    // Count children per symbol and check each against its multiplicity;
    // then check required symbols that are absent.
    std::map<SymbolId, int> counts;
    for (SymbolId s : doc.ChildLabelBag(n)) ++counts[s];
    for (const auto& [s, c] : counts) {
      if (!MultiplicityContains(GetMultiplicity(label, s), c)) return false;
    }
    for (const auto& [s, mult] : Children(label)) {
      if (MultiplicityLo(mult) > 0 && counts.find(s) == counts.end()) {
        return false;
      }
    }
  }
  return true;
}

std::set<SymbolId> Ms::ProductiveLabels() const {
  std::set<SymbolId> productive;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [label, rule] : rules_) {
      if (productive.count(label)) continue;
      bool ok = true;
      for (const auto& [child, mult] : rule) {
        if (MultiplicityLo(mult) > 0 && !productive.count(child)) {
          ok = false;
          break;
        }
      }
      if (ok) {
        productive.insert(label);
        changed = true;
      }
    }
  }
  return productive;
}

std::set<SymbolId> Ms::ReachableLabels() const {
  const std::set<SymbolId> productive = ProductiveLabels();
  std::set<SymbolId> reachable;
  if (!productive.count(root_)) return reachable;
  std::vector<SymbolId> frontier{root_};
  reachable.insert(root_);
  while (!frontier.empty()) {
    const SymbolId label = frontier.back();
    frontier.pop_back();
    for (const auto& [child, mult] : Children(label)) {
      (void)mult;
      if (!productive.count(child) || reachable.count(child)) continue;
      reachable.insert(child);
      frontier.push_back(child);
    }
  }
  return reachable;
}

bool Ms::ContainedIn(const Ms& other) const {
  const std::set<SymbolId> reachable = ReachableLabels();
  if (reachable.empty()) return true;  // unsatisfiable schema
  if (root_ != other.root_) return false;
  for (SymbolId label : reachable) {
    if (!other.HasLabel(label)) return false;
    for (const auto& [child, mult] : Children(label)) {
      // Only counts of productive children can materialize; others stay 0,
      // which every multiplicity with lo == 0 permits.
      if (!reachable.count(child) && MultiplicityLo(mult) > 0) continue;
      const Multiplicity outer = other.GetMultiplicity(label, child);
      const Multiplicity inner = mult;
      if (reachable.count(child)) {
        if (!MultiplicityIncluded(outer, inner)) return false;
      }
    }
    // Symbols required by `other` must be required here too (otherwise a
    // valid document without them violates `other`).
    for (const auto& [child, mult] : other.Children(label)) {
      if (MultiplicityLo(mult) > 0 &&
          MultiplicityLo(GetMultiplicity(label, child)) == 0) {
        return false;
      }
    }
  }
  return true;
}

Dms Ms::ToDms() const {
  Dms dms(root_);
  for (const auto& [label, rule] : rules_) {
    std::vector<std::pair<SymbolId, Multiplicity>> entries;
    for (const auto& [child, mult] : rule) {
      if (mult != Multiplicity::kZero) entries.emplace_back(child, mult);
    }
    dms.SetRule(label, Dme::FromSymbolMultiplicities(entries));
  }
  return dms;
}

std::string Ms::ToString(const common::Interner& interner) const {
  std::string out = "root: " +
                    (root_ == common::kNoSymbol ? std::string("<none>")
                                                : interner.Name(root_)) +
                    "\n";
  for (const auto& [label, rule] : rules_) {
    out += interner.Name(label) + " ->";
    bool first = true;
    for (const auto& [child, mult] : rule) {
      if (mult == Multiplicity::kZero) continue;
      out += first ? " " : ", ";
      first = false;
      out += interner.Name(child);
      if (mult != Multiplicity::kOne) out += MultiplicityToString(mult);
    }
    if (first) out += " (leaf)";
    out += "\n";
  }
  return out;
}

}  // namespace schema
}  // namespace qlearn
