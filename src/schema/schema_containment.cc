#include "schema/schema_containment.h"

#include <algorithm>
#include <functional>
#include <map>
#include <vector>

#include "twig/twig_eval.h"

namespace qlearn {
namespace schema {

namespace {

using twig::Axis;
using twig::QNodeId;
using twig::TwigQuery;

/// Allowed-edge successor labels (child may occur below parent and is
/// productive — only those appear in finite valid trees).
class AllowedGraph {
 public:
  explicit AllowedGraph(const Ms& schema)
      : schema_(schema), productive_(schema.ProductiveLabels()) {}

  bool IsProductive(common::SymbolId label) const {
    return productive_.find(label) != productive_.end();
  }

  const std::vector<common::SymbolId>& Successors(
      common::SymbolId label) const {
    auto it = successors_.find(label);
    if (it != successors_.end()) return it->second;
    std::vector<common::SymbolId> out;
    for (const auto& [child, mult] : schema_.Children(label)) {
      if (MultiplicityHi(mult) != 0 && IsProductive(child)) {
        out.push_back(child);
      }
    }
    return successors_.emplace(label, std::move(out)).first->second;
  }

  /// All allowed label paths `from -> ... -> to` with at most `bound`
  /// intermediate labels, appended to `paths` (each path lists the
  /// intermediates only), capped at `cap` paths. Returns false when the cap
  /// truncated the enumeration.
  bool Paths(common::SymbolId from, common::SymbolId to, int bound,
             size_t cap,
             std::vector<std::vector<common::SymbolId>>* paths) const {
    std::vector<common::SymbolId> current;
    bool truncated = false;
    std::function<void(common::SymbolId)> dfs = [&](common::SymbolId at) {
      for (common::SymbolId next : Successors(at)) {
        if (next == to) {
          if (paths->size() >= cap) {
            truncated = true;
            return;
          }
          paths->push_back(current);
        }
        if (static_cast<int>(current.size()) < bound && !truncated) {
          current.push_back(next);
          dfs(next);
          current.pop_back();
        }
        if (truncated) return;
      }
    };
    dfs(from);
    return !truncated;
  }

 private:
  const Ms& schema_;
  std::set<common::SymbolId> productive_;
  mutable std::map<common::SymbolId, std::vector<common::SymbolId>>
      successors_;
};

/// A mutable tree under construction (XmlTree only supports appends, which
/// is all the builder needs).
struct Builder {
  xml::XmlTree doc;
  xml::NodeId witness = 0;
};

/// One label assignment for every real node of the inner query plus one
/// label path per descendant edge.
struct Typing {
  std::vector<common::SymbolId> label;                 // [query node]
  std::vector<std::vector<common::SymbolId>> via;     // [query node] path
};

/// Enumerates typings with a callback; returns false when the instantiation
/// cap was hit.
class TypingEnumerator {
 public:
  TypingEnumerator(const TwigQuery& q, const Ms& schema,
                   const AllowedGraph& graph, int path_bound, size_t cap,
                   size_t path_cap)
      : q_(q),
        schema_(schema),
        graph_(graph),
        path_bound_(path_bound),
        cap_(cap),
        path_cap_(path_cap) {}

  /// Calls `emit` for every typing; stops early when `emit` returns true
  /// (counterexample found) or the cap is reached. Returns {found, capped}.
  std::pair<bool, bool> Run(const std::function<bool(const Typing&)>& emit) {
    typing_.label.assign(q_.NumNodes(), common::kNoSymbol);
    typing_.via.assign(q_.NumNodes(), {});
    emit_ = &emit;
    found_ = false;
    capped_ = false;
    order_ = q_.PreOrder();
    Assign(1);  // order_[0] is the virtual root
    return {found_, capped_};
  }

  size_t instantiations() const { return instantiations_; }

 private:
  /// Candidate labels for query node `x` (by its own label constraint).
  std::vector<common::SymbolId> NodeCandidates(QNodeId x) const {
    std::vector<common::SymbolId> out;
    if (q_.label(x) != twig::kWildcard) {
      if (graph_.IsProductive(q_.label(x))) out.push_back(q_.label(x));
      return out;
    }
    for (common::SymbolId s : schema_.Labels()) {
      if (graph_.IsProductive(s)) out.push_back(s);
    }
    return out;
  }

  void Assign(size_t idx) {
    if (found_ || capped_) return;
    if (idx == order_.size()) {
      ++instantiations_;
      if (instantiations_ > cap_) {
        capped_ = true;
        return;
      }
      if ((*emit_)(typing_)) found_ = true;
      return;
    }
    const QNodeId x = order_[idx];
    const QNodeId parent = q_.parent(x);
    const bool from_root = parent == 0;
    const common::SymbolId parent_label =
        from_root ? common::kNoSymbol : typing_.label[parent];

    for (common::SymbolId candidate : NodeCandidates(x)) {
      if (q_.axis(x) == Axis::kChild) {
        // Child of the virtual root = the document root itself.
        if (from_root) {
          if (candidate != schema_.root()) continue;
        } else {
          if (MultiplicityHi(schema_.GetMultiplicity(parent_label,
                                                     candidate)) == 0) {
            continue;
          }
        }
        typing_.label[x] = candidate;
        typing_.via[x].clear();
        Assign(idx + 1);
      } else {
        // Descendant edge: enumerate allowed intermediate paths.
        std::vector<std::vector<common::SymbolId>> paths;
        if (from_root) {
          // Maps to the document root or strictly below it.
          if (candidate == schema_.root()) {
            paths.push_back({});  // the document root itself
          }
          if (!graph_.Paths(schema_.root(), candidate, path_bound_,
                            path_cap_, &paths)) {
            capped_ = true;
          }
          // Paths from the root require materializing the root label first.
          for (auto& p : paths) {
            if (!(p.empty() && candidate == schema_.root())) {
              p.insert(p.begin(), schema_.root());
            }
          }
          // Deduplicate the bare-root case.
        } else {
          if (!graph_.Paths(parent_label, candidate, path_bound_, path_cap_,
                            &paths)) {
            capped_ = true;
          }
        }
        for (const auto& path : paths) {
          typing_.label[x] = candidate;
          typing_.via[x] = path;
          Assign(idx + 1);
          if (found_ || capped_) return;
        }
        continue;
      }
      if (found_ || capped_) return;
    }
  }

  const TwigQuery& q_;
  const Ms& schema_;
  const AllowedGraph& graph_;
  const int path_bound_;
  const size_t cap_;
  const size_t path_cap_;
  const std::function<bool(const Typing&)>* emit_ = nullptr;
  Typing typing_;
  std::vector<QNodeId> order_;
  bool found_ = false;
  bool capped_ = false;
  size_t instantiations_ = 0;
};

/// Materializes a typing as a document: the query skeleton with descendant
/// paths expanded. Returns false when root constraints clash (several
/// child-axis root children with different labels).
bool BuildSkeleton(const TwigQuery& q, const Typing& typing, Builder* out) {
  std::vector<xml::NodeId> image(q.NumNodes(), xml::kInvalidNode);
  for (QNodeId x : q.PreOrder()) {
    if (x == 0) continue;
    const QNodeId parent = q.parent(x);
    if (parent == 0) {
      if (q.axis(x) == Axis::kChild || typing.via[x].empty()) {
        // Maps to the document root.
        if (out->doc.empty()) {
          image[x] = out->doc.AddRoot(typing.label[x]);
        } else {
          if (out->doc.label(out->doc.root()) != typing.label[x]) {
            return false;
          }
          image[x] = out->doc.root();
        }
      } else {
        // A path root-label, intermediates..., then the node.
        xml::NodeId cur;
        size_t start = 0;
        if (out->doc.empty()) {
          cur = out->doc.AddRoot(typing.via[x][0]);
          start = 1;
        } else {
          if (out->doc.label(out->doc.root()) != typing.via[x][0]) {
            return false;
          }
          cur = out->doc.root();
          start = 1;
        }
        for (size_t i = start; i < typing.via[x].size(); ++i) {
          cur = out->doc.AddChild(cur, typing.via[x][i]);
        }
        image[x] = out->doc.AddChild(cur, typing.label[x]);
      }
    } else {
      xml::NodeId cur = image[parent];
      for (common::SymbolId via : typing.via[x]) {
        cur = out->doc.AddChild(cur, via);
      }
      image[x] = out->doc.AddChild(cur, typing.label[x]);
    }
  }
  out->witness = q.selection() != twig::kInvalidQNode
                     ? image[q.selection()]
                     : out->doc.root();
  return true;
}

/// Rebuilds `doc` with required children added (certain edges) and
/// same-label siblings merged where the multiplicity upper bound would be
/// exceeded. Returns false when no valid repair is found.
bool RepairToValidity(const Ms& schema, xml::XmlTree* doc,
                      xml::NodeId* witness) {
  // Work on a simple mutable mirror: label + children vectors + old-id map.
  struct MNode {
    common::SymbolId label;
    std::vector<size_t> children;
  };
  std::vector<MNode> nodes;
  std::vector<size_t> of_old(doc->NumNodes());
  for (xml::NodeId n : doc->PreOrder()) {
    of_old[n] = nodes.size();
    nodes.push_back({doc->label(n), {}});
  }
  for (xml::NodeId n : doc->PreOrder()) {
    if (n != doc->root()) {
      nodes[of_old[doc->parent(n)]].children.push_back(of_old[n]);
    }
  }
  size_t witness_idx = of_old[*witness];

  // Merge pass: for every node, group same-label children; if the
  // multiplicity's upper bound is exceeded, merge surplus copies into the
  // first (children are unioned — embeddings survive merging).
  std::function<bool(size_t)> merge = [&](size_t at) -> bool {
    auto& kids = nodes[at].children;
    std::map<common::SymbolId, std::vector<size_t>> by_label;
    for (size_t c : kids) by_label[nodes[c].label].push_back(c);
    for (auto& [label, group] : by_label) {
      const Multiplicity mult =
          schema.GetMultiplicity(nodes[at].label, label);
      const int hi = MultiplicityHi(mult);
      if (hi == 0) return false;  // label not allowed here at all
      if (hi != kUnbounded && static_cast<int>(group.size()) > hi) {
        // Merge everything beyond the first `hi` copies into the first.
        for (size_t i = static_cast<size_t>(hi); i < group.size(); ++i) {
          const size_t victim = group[i];
          auto& vk = nodes[victim].children;
          nodes[group[0]].children.insert(nodes[group[0]].children.end(),
                                          vk.begin(), vk.end());
          vk.clear();
          kids.erase(std::find(kids.begin(), kids.end(), victim));
          if (witness_idx == victim) witness_idx = group[0];
        }
      }
    }
    for (size_t c : kids) {
      if (!merge(c)) return false;
    }
    return true;
  };
  if (!merge(0)) return false;

  // Required-children closure (certain edges): every a-node needs each b
  // with lower bound >= 1. Productive schemas cannot cycle through required
  // edges, so the recursion terminates.
  std::function<void(size_t)> close = [&](size_t at) {
    std::set<common::SymbolId> present;
    for (size_t c : nodes[at].children) present.insert(nodes[c].label);
    for (const auto& [child, mult] : schema.Children(nodes[at].label)) {
      if (MultiplicityLo(mult) >= 1 && present.find(child) == present.end()) {
        nodes.push_back({child, {}});
        nodes[at].children.push_back(nodes.size() - 1);
      }
    }
    // Iterate over a copy: `close` may append to nodes.
    const std::vector<size_t> kids = nodes[at].children;
    for (size_t c : kids) close(c);
  };
  close(0);

  // Serialize back into a fresh XmlTree.
  xml::XmlTree rebuilt;
  std::vector<xml::NodeId> new_id(nodes.size(), xml::kInvalidNode);
  std::function<void(size_t, xml::NodeId)> emit = [&](size_t at,
                                                      xml::NodeId parent) {
    const xml::NodeId id = parent == xml::kInvalidNode
                               ? rebuilt.AddRoot(nodes[at].label)
                               : rebuilt.AddChild(parent, nodes[at].label);
    new_id[at] = id;
    for (size_t c : nodes[at].children) emit(c, id);
  };
  emit(0, xml::kInvalidNode);

  if (!schema.Validates(rebuilt)) return false;
  *witness = new_id[witness_idx];
  *doc = std::move(rebuilt);
  return true;
}

}  // namespace

SchemaContainmentReport CheckContainmentUnderSchema(
    const twig::TwigQuery& inner, const twig::TwigQuery& outer,
    const Ms& schema, const SchemaContainmentOptions& options) {
  SchemaContainmentReport report;
  AllowedGraph graph(schema);
  if (!graph.IsProductive(schema.root())) {
    // The schema has no valid documents: containment holds vacuously.
    report.verdict = SchemaContainment::kContained;
    return report;
  }
  const int path_bound =
      options.path_bound > 0
          ? options.path_bound
          : static_cast<int>(outer.Size() + schema.Labels().size() + 1);

  TypingEnumerator enumerator(inner, schema, graph, path_bound,
                              options.max_instantiations,
                              options.max_paths_per_edge);
  auto [found, capped] = enumerator.Run([&](const Typing& typing) {
    Builder builder;
    if (!BuildSkeleton(inner, typing, &builder)) return false;
    xml::NodeId witness = builder.witness;
    if (!RepairToValidity(schema, &builder.doc, &witness)) {
      ++report.discarded;
      return false;
    }
    // The repaired document must still witness the inner query (merging
    // only unions structure, closure only adds, so it does — verify).
    if (!twig::Selects(inner, builder.doc, witness)) return false;
    if (twig::Selects(outer, builder.doc, witness)) return false;
    report.counterexample = std::move(builder.doc);
    report.witness = witness;
    return true;
  });
  report.instantiations = enumerator.instantiations();

  if (found) {
    report.verdict = SchemaContainment::kNotContained;
  } else if (capped || report.discarded > 0) {
    report.verdict = SchemaContainment::kUnknown;
  } else {
    report.verdict = SchemaContainment::kContained;
  }
  return report;
}

SchemaContainment CheckEquivalenceUnderSchema(
    const twig::TwigQuery& a, const twig::TwigQuery& b, const Ms& schema,
    const SchemaContainmentOptions& options) {
  const SchemaContainmentReport ab =
      CheckContainmentUnderSchema(a, b, schema, options);
  if (ab.verdict == SchemaContainment::kNotContained) {
    return SchemaContainment::kNotContained;
  }
  const SchemaContainmentReport ba =
      CheckContainmentUnderSchema(b, a, schema, options);
  if (ba.verdict == SchemaContainment::kNotContained) {
    return SchemaContainment::kNotContained;
  }
  if (ab.verdict == SchemaContainment::kUnknown ||
      ba.verdict == SchemaContainment::kUnknown) {
    return SchemaContainment::kUnknown;
  }
  return SchemaContainment::kContained;
}

}  // namespace schema
}  // namespace qlearn
