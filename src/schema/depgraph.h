// Dependency graphs of disjunction-free multiplicity schemas, and the two
// PTIME reductions the paper credits to them (DESIGN.md §2.3):
//  * twig-query satisfiability in the presence of an MS = embedding of the
//    query into the allowed-edge graph;
//  * filter implication = embedding of the filter into the certain-edge
//    graph (certain edge a->b: every valid a-node has a b child).
#ifndef QLEARN_SCHEMA_DEPGRAPH_H_
#define QLEARN_SCHEMA_DEPGRAPH_H_

#include <map>
#include <set>
#include <vector>

#include "common/interner.h"
#include "schema/ms.h"
#include "twig/twig_query.h"

namespace qlearn {
namespace schema {

/// The dependency graph of a disjunction-free multiplicity schema: vertices
/// are productive labels; an edge a->b exists when b may occur below a, and
/// is *certain* when b must occur below every a.
class DependencyGraph {
 public:
  explicit DependencyGraph(const Ms& schema);

  /// Productive labels of the schema (the graph's vertex set).
  const std::set<common::SymbolId>& labels() const { return labels_; }

  bool HasEdge(common::SymbolId a, common::SymbolId b) const;
  bool HasCertainEdge(common::SymbolId a, common::SymbolId b) const;

  /// b reachable from a in >= 1 allowed steps.
  bool Reachable(common::SymbolId a, common::SymbolId b) const;

  /// b reachable from a in >= 1 certain steps.
  bool CertainReachable(common::SymbolId a, common::SymbolId b) const;

  /// True iff `a` has any outgoing allowed (resp. certain) edge.
  bool HasAnyEdge(common::SymbolId a) const;
  bool HasAnyCertainEdge(common::SymbolId a) const;

 private:
  std::set<common::SymbolId> labels_;
  std::map<common::SymbolId, std::set<common::SymbolId>> edges_;
  std::map<common::SymbolId, std::set<common::SymbolId>> certain_edges_;
  std::map<common::SymbolId, std::set<common::SymbolId>> reach_;
  std::map<common::SymbolId, std::set<common::SymbolId>> certain_reach_;
};

/// True iff some document valid under `schema` matches `query` (and, when
/// the query has a selection node, selects at least one node — these
/// coincide). PTIME via embedding into the dependency graph.
bool QuerySatisfiable(const Ms& schema, const twig::TwigQuery& query);

/// True iff in every valid document, every node labeled `context` has an
/// embedding of the filter subtree rooted at `filter_root` (a node of
/// `query`) beneath/at it, i.e. the filter is redundant at that context.
/// PTIME via embedding into the certain-edge graph.
bool FilterImplied(const Ms& schema, common::SymbolId context,
                   const twig::TwigQuery& query, twig::QNodeId filter_root);

}  // namespace schema
}  // namespace qlearn

#endif  // QLEARN_SCHEMA_DEPGRAPH_H_
