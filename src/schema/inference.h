// Schema inference from positive examples. The paper reports that
// disjunctive multiplicity schemas are identifiable in the limit from
// positive examples only; these are the corresponding inference algorithms
// (minimal generalization of the observed child bags).
#ifndef QLEARN_SCHEMA_INFERENCE_H_
#define QLEARN_SCHEMA_INFERENCE_H_

#include <vector>

#include "common/status.h"
#include "schema/dms.h"
#include "schema/ms.h"
#include "xml/xml_tree.h"

namespace qlearn {
namespace schema {

/// Infers the tightest disjunction-free MS consistent with `docs`: for every
/// (parent label, child label) the least multiplicity covering all observed
/// counts. Fails on an empty corpus or differing root labels.
common::Result<Ms> InferMs(const std::vector<const xml::XmlTree*>& docs);

/// Infers a DMS consistent with `docs`: per parent label, symbols that never
/// co-occur form disjunction clauses (connected components of the
/// mutual-exclusion graph); everything else becomes single-atom clauses with
/// minimal multiplicities. Identifies the goal schema in the limit for
/// schemas in this canonical form (exercised by experiment E9).
common::Result<Dms> InferDms(const std::vector<const xml::XmlTree*>& docs);

}  // namespace schema
}  // namespace qlearn

#endif  // QLEARN_SCHEMA_INFERENCE_H_
