#include "schema/inference.h"

#include <algorithm>
#include <map>
#include <set>

namespace qlearn {
namespace schema {

using common::Result;
using common::Status;
using common::SymbolId;

namespace {

/// Observed child bags per parent label, plus the corpus root label.
struct Observations {
  SymbolId root = common::kNoSymbol;
  // label -> list of child bags (one per node instance with that label).
  std::map<SymbolId, std::vector<Bag>> bags;
};

Result<Observations> Collect(const std::vector<const xml::XmlTree*>& docs) {
  if (docs.empty()) {
    return Status::InvalidArgument("schema inference needs at least one doc");
  }
  Observations obs;
  for (const xml::XmlTree* doc : docs) {
    if (doc->empty()) {
      return Status::InvalidArgument("schema inference on empty document");
    }
    if (obs.root == common::kNoSymbol) {
      obs.root = doc->label(doc->root());
    } else if (obs.root != doc->label(doc->root())) {
      return Status::InvalidArgument(
          "documents disagree on the root label; no single schema fits");
    }
    for (xml::NodeId n : doc->PreOrder()) {
      Bag bag;
      for (SymbolId s : doc->ChildLabelBag(n)) ++bag[s];
      obs.bags[doc->label(n)].push_back(std::move(bag));
    }
  }
  return obs;
}

/// Least multiplicity covering every observed count (max >= 2 generalizes to
/// unbounded since the five multiplicities cannot express [_, 2]).
Multiplicity CoverCounts(int min_count, int max_count) {
  return MultiplicityFromRange(min_count > 1 ? 1 : min_count,
                               max_count >= 2 ? kUnbounded : max_count);
}

}  // namespace

Result<Ms> InferMs(const std::vector<const xml::XmlTree*>& docs) {
  auto obs = Collect(docs);
  if (!obs.ok()) return obs.status();
  Ms ms(obs.value().root);
  for (const auto& [label, bags] : obs.value().bags) {
    ms.AddLeafLabel(label);
    // Symbols seen under this label.
    std::set<SymbolId> symbols;
    for (const Bag& bag : bags) {
      for (const auto& [s, c] : bag) {
        if (c > 0) symbols.insert(s);
      }
    }
    for (SymbolId s : symbols) {
      int mn = 1 << 30;
      int mx = 0;
      for (const Bag& bag : bags) {
        auto it = bag.find(s);
        const int c = it == bag.end() ? 0 : it->second;
        mn = std::min(mn, c);
        mx = std::max(mx, c);
      }
      ms.SetMultiplicity(label, s, CoverCounts(mn, mx));
    }
  }
  return ms;
}

Result<Dms> InferDms(const std::vector<const xml::XmlTree*>& docs) {
  auto obs = Collect(docs);
  if (!obs.ok()) return obs.status();
  Dms dms(obs.value().root);

  for (const auto& [label, bags] : obs.value().bags) {
    std::set<SymbolId> symbols;
    for (const Bag& bag : bags) {
      for (const auto& [s, c] : bag) {
        if (c > 0) symbols.insert(s);
      }
    }
    const std::vector<SymbolId> syms(symbols.begin(), symbols.end());

    // Mutual-exclusion graph: s ~ t iff they never co-occur in a bag.
    auto cooccur = [&](SymbolId s, SymbolId t) {
      for (const Bag& bag : bags) {
        auto is = bag.find(s);
        auto it = bag.find(t);
        if (is != bag.end() && is->second > 0 && it != bag.end() &&
            it->second > 0) {
          return true;
        }
      }
      return false;
    };

    // Connected components of the exclusion graph.
    std::map<SymbolId, int> component;
    int next_component = 0;
    for (SymbolId s : syms) {
      if (component.count(s)) continue;
      const int id = next_component++;
      std::vector<SymbolId> stack{s};
      component[s] = id;
      while (!stack.empty()) {
        const SymbolId cur = stack.back();
        stack.pop_back();
        for (SymbolId t : syms) {
          if (component.count(t) || cooccur(cur, t)) continue;
          component[t] = id;
          stack.push_back(t);
        }
      }
    }

    std::vector<Clause> clauses;
    for (int cid = 0; cid < next_component; ++cid) {
      std::vector<SymbolId> members;
      for (SymbolId s : syms) {
        if (component[s] == cid) members.push_back(s);
      }
      // A disjunction clause is sound only if every bag touches at most one
      // member (exclusivity may fail transitively); otherwise fall back to
      // singleton clauses for this component.
      bool exclusive = true;
      bool always_present = true;
      for (const Bag& bag : bags) {
        int support = 0;
        for (SymbolId s : members) {
          auto it = bag.find(s);
          if (it != bag.end() && it->second > 0) ++support;
        }
        if (support > 1) exclusive = false;
        if (support == 0) always_present = false;
      }
      if (members.size() >= 2 && exclusive) {
        Clause clause;
        for (SymbolId s : members) {
          int mx = 0;
          for (const Bag& bag : bags) {
            auto it = bag.find(s);
            if (it != bag.end()) mx = std::max(mx, it->second);
          }
          clause.atoms.push_back(
              Atom{s, mx >= 2 ? Multiplicity::kPlus : Multiplicity::kOne});
        }
        clause.mult =
            always_present ? Multiplicity::kOne : Multiplicity::kOpt;
        clauses.push_back(std::move(clause));
      } else {
        for (SymbolId s : members) {
          int mn = 1 << 30;
          int mx = 0;
          for (const Bag& bag : bags) {
            auto it = bag.find(s);
            const int c = it == bag.end() ? 0 : it->second;
            mn = std::min(mn, c);
            mx = std::max(mx, c);
          }
          Clause clause;
          clause.atoms.push_back(Atom{s, CoverCounts(mn, mx)});
          clause.mult = Multiplicity::kOne;
          clauses.push_back(std::move(clause));
        }
      }
    }
    auto dme = Dme::Create(std::move(clauses));
    if (!dme.ok()) return dme.status();
    dms.SetRule(label, std::move(dme).value());
  }
  return dms;
}

}  // namespace schema
}  // namespace qlearn
