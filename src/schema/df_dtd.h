// Disjunction-free DTDs: ordered content models that are concatenations of
// multiplicity factors a^M (e.g. "title author+ year?"), the DTD fragment
// for which the paper proves its strongest claims (§2): query implication in
// their presence is PTIME, while schema containment is coNP-complete (vs
// EXPTIME-complete for full DTDs and PTIME for DMS).
//
// The PTIME procedures work through an order-and-count projection onto the
// unordered disjunction-free multiplicity schemas: twig queries cannot
// observe sibling order, and embeddings need not be injective, so only two
// facts per (label, child) pair matter — may the child occur (some factor
// with upper bound >= 1) and must it occur (some factor with lower bound
// >= 1). The projection preserves both exactly.
#ifndef QLEARN_SCHEMA_DF_DTD_H_
#define QLEARN_SCHEMA_DF_DTD_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "automata/regex.h"
#include "common/interner.h"
#include "schema/ms.h"
#include "schema/multiplicity.h"
#include "twig/twig_query.h"
#include "xml/xml_tree.h"

namespace qlearn {
namespace schema {

/// One factor a^M of a disjunction-free content model. The same symbol may
/// appear in several factors ("a b a" is a valid model).
struct DfFactor {
  common::SymbolId symbol;
  Multiplicity mult = Multiplicity::kOne;
};

/// An ordered DTD whose every content model is a concatenation of factors.
class DfDtd {
 public:
  DfDtd() = default;
  explicit DfDtd(common::SymbolId root) : root_(root) {}

  common::SymbolId root() const { return root_; }
  void set_root(common::SymbolId root) { root_ = root; }

  /// Sets the content model of `label`. An empty vector (or an absent rule)
  /// means leaf-only content.
  void SetRule(common::SymbolId label, std::vector<DfFactor> factors);

  /// Content model of `label` (empty when leaf / undeclared).
  const std::vector<DfFactor>& Rule(common::SymbolId label) const;

  /// Labels with declared rules, sorted.
  std::vector<common::SymbolId> Labels() const;

  /// True iff the root matches and every node's ordered child-label word
  /// matches its label's factor sequence (decided by a position/factor DP,
  /// since greedy matching is wrong for models like "a* a").
  bool Validates(const xml::XmlTree& doc) const;

  /// True iff `word` is in the content language of `factors`.
  static bool MatchesWord(const std::vector<DfFactor>& factors,
                          const std::vector<common::SymbolId>& word);

  /// The content model as a regex (for the automata-based procedures).
  automata::RegexPtr RuleAsRegex(common::SymbolId label) const;

  /// The order/count projection onto an unordered MS: for every (label,
  /// child), allowed iff some factor allows it, required iff some factor
  /// requires it. Exact for the twig-query procedures (see header comment).
  Ms ToMs() const;

  /// Labels that can appear in some finite valid tree.
  std::set<common::SymbolId> ProductiveLabels() const;

  /// Multi-line rendering "label -> a b* c?".
  std::string ToString(const common::Interner& interner) const;

 private:
  common::SymbolId root_ = common::kNoSymbol;
  std::map<common::SymbolId, std::vector<DfFactor>> rules_;
};

/// PTIME twig-query satisfiability in the presence of a DF-DTD (via the MS
/// projection and the dependency-graph embedding).
bool QuerySatisfiable(const DfDtd& dtd, const twig::TwigQuery& query);

/// PTIME filter implication in the presence of a DF-DTD — the paper's
/// headline tractability claim for this fragment. Semantics match
/// schema::FilterImplied on the projection.
bool FilterImplied(const DfDtd& dtd, common::SymbolId context,
                   const twig::TwigQuery& query, twig::QNodeId filter_root);

/// Outcome of DF-DTD containment.
struct DfDtdContainment {
  bool contained = false;
  /// When not contained: a label and a child word valid under the inner
  /// schema but not the outer one (the coNP certificate).
  common::SymbolId witness_label = common::kNoSymbol;
  std::vector<common::SymbolId> witness_word;
};

/// Schema containment L(inner) ⊆ L(outer) — the problem the paper proves
/// coNP-complete for this fragment. Decided exactly: per productive-and-
/// reachable inner label, DFA inclusion of the inner content language
/// (restricted to inner-productive symbols) in the outer content language.
/// Worst-case exponential in the factor count (subset construction), the
/// expected price of a coNP-complete problem.
DfDtdContainment CheckDfDtdContainment(const DfDtd& inner, const DfDtd& outer);

}  // namespace schema
}  // namespace qlearn

#endif  // QLEARN_SCHEMA_DF_DTD_H_
