// The five multiplicities {0, 1, ?, +, *} of multiplicity schemas
// (DESIGN.md §2.3), with their interval semantics.
#ifndef QLEARN_SCHEMA_MULTIPLICITY_H_
#define QLEARN_SCHEMA_MULTIPLICITY_H_

#include <cstdint>
#include <string>

namespace qlearn {
namespace schema {

/// A multiplicity constrains how many times a symbol (or clause instance)
/// may occur: 0 -> {0}, 1 -> {1}, ? -> {0,1}, + -> {1,2,...}, * -> {0,1,...}.
enum class Multiplicity : uint8_t {
  kZero,
  kOne,
  kOpt,
  kPlus,
  kStar,
};

/// Lower bound of the interval (0 or 1).
int MultiplicityLo(Multiplicity m);

/// Upper bound of the interval; kUnbounded for + and *.
inline constexpr int kUnbounded = -1;
int MultiplicityHi(Multiplicity m);

/// True iff `count` lies in the interval of `m`.
bool MultiplicityContains(Multiplicity m, int count);

/// True iff the interval of `inner` is included in the interval of `outer`.
bool MultiplicityIncluded(Multiplicity outer, Multiplicity inner);

/// The least multiplicity whose interval covers both arguments' intervals
/// (the join in the 5-element lattice).
Multiplicity MultiplicityJoin(Multiplicity a, Multiplicity b);

/// The least multiplicity covering [lo, hi] with hi possibly kUnbounded.
Multiplicity MultiplicityFromRange(int lo, int hi);

/// "0", "1", "?", "+" or "*".
std::string MultiplicityToString(Multiplicity m);

}  // namespace schema
}  // namespace qlearn

#endif  // QLEARN_SCHEMA_MULTIPLICITY_H_
