#include "schema/sampling.h"

#include <algorithm>
#include <map>
#include <set>

namespace qlearn {
namespace schema {

using common::Result;
using common::Status;
using common::SymbolId;

namespace {

constexpr int kInfiniteHeight = 1 << 28;

/// Per-label minimal completion heights over productive labels: the height
/// of the smallest valid subtree rooted at each label.
std::map<SymbolId, int> MinimalHeights(const Dms& dms,
                                       const std::set<SymbolId>& productive) {
  std::map<SymbolId, int> h;
  for (SymbolId a : productive) h[a] = kInfiniteHeight;
  bool changed = true;
  while (changed) {
    changed = false;
    for (SymbolId a : productive) {
      // Height of the minimal bag of `a` under current estimates.
      int worst = 0;
      const Dme* rule = dms.Rule(a);
      for (const Clause& clause : rule->clauses()) {
        if (MultiplicityLo(clause.mult) == 0) continue;
        // One part needed; an atom admitting empty parts costs nothing.
        bool free_part = false;
        int best = kInfiniteHeight;
        for (const Atom& atom : clause.atoms) {
          if (MultiplicityLo(atom.mult) == 0) {
            free_part = true;
            break;
          }
          if (productive.count(atom.symbol)) {
            best = std::min(best, h[atom.symbol]);
          }
        }
        if (free_part) continue;
        worst = std::max(worst, best);
      }
      const int updated =
          worst >= kInfiniteHeight ? kInfiniteHeight : 1 + worst;
      if (updated < h[a]) {
        h[a] = updated;
        changed = true;
      }
    }
  }
  return h;
}

class Sampler {
 public:
  Sampler(const Dms& dms, common::Rng* rng, const SampleOptions& options)
      : dms_(dms),
        rng_(rng),
        options_(options),
        productive_(dms.ProductiveLabels()),
        heights_(MinimalHeights(dms, productive_)) {}

  Result<xml::XmlTree> Sample() {
    if (!productive_.count(dms_.root())) {
      return Status::InvalidArgument("schema is unsatisfiable");
    }
    xml::XmlTree doc;
    const xml::NodeId root = doc.AddRoot(dms_.root());
    Fill(&doc, root, dms_.root(), 0);
    return doc;
  }

 private:
  int Geometric() {
    int extra = 0;
    while (extra < 6 && rng_->Bernoulli(options_.repeat_probability)) ++extra;
    return extra;
  }

  /// Draws a child bag for a node labeled `label` at `depth`.
  Bag DrawBag(SymbolId label, int depth) {
    const bool minimal = depth >= options_.soft_depth;
    Bag bag;
    const Dme* rule = dms_.Rule(label);
    for (const Clause& clause : rule->clauses()) {
      // Usable atoms: productive symbol (realizable subtree).
      std::vector<const Atom*> usable;
      for (const Atom& atom : clause.atoms) {
        if (productive_.count(atom.symbol)) usable.push_back(&atom);
      }
      int m;
      if (minimal) {
        m = MultiplicityLo(clause.mult);
      } else {
        switch (clause.mult) {
          case Multiplicity::kZero:
            m = 0;
            break;
          case Multiplicity::kOne:
            m = 1;
            break;
          case Multiplicity::kOpt:
            m = rng_->Bernoulli(options_.optional_probability) ? 1 : 0;
            break;
          case Multiplicity::kPlus:
            m = 1 + Geometric();
            break;
          case Multiplicity::kStar:
            m = rng_->Bernoulli(options_.optional_probability)
                    ? 1 + Geometric()
                    : 0;
            break;
          default:
            m = 0;
        }
      }
      for (int part = 0; part < m; ++part) {
        const Atom* atom = nullptr;
        if (minimal) {
          // Cheapest option: an atom admitting empty parts, else the atom
          // with the smallest completion height.
          for (const Atom& a : clause.atoms) {
            if (MultiplicityLo(a.mult) == 0) {
              atom = nullptr;  // an empty part satisfies this slot
              break;
            }
            if (productive_.count(a.symbol) &&
                (atom == nullptr ||
                 heights_.at(a.symbol) < heights_.at(atom->symbol))) {
              atom = &a;
            }
          }
          bool has_free = false;
          for (const Atom& a : clause.atoms) {
            if (MultiplicityLo(a.mult) == 0) has_free = true;
          }
          if (has_free) continue;  // emit nothing for this part
        } else if (!usable.empty()) {
          atom = usable[rng_->Index(usable.size())];
        } else {
          continue;  // only phantom parts possible
        }
        if (atom == nullptr) continue;
        int size;
        if (minimal) {
          size = std::max(1, MultiplicityLo(atom->mult));
        } else {
          switch (atom->mult) {
            case Multiplicity::kOne:
              size = 1;
              break;
            case Multiplicity::kOpt:
              size = rng_->Bernoulli(options_.optional_probability) ? 1 : 0;
              break;
            case Multiplicity::kPlus:
              size = 1 + Geometric();
              break;
            case Multiplicity::kStar:
              size = rng_->Bernoulli(options_.optional_probability)
                         ? 1 + Geometric()
                         : 0;
              break;
            default:
              size = 0;
          }
        }
        if (size > 0) bag[atom->symbol] += size;
      }
    }
    return bag;
  }

  void Fill(xml::XmlTree* doc, xml::NodeId node, SymbolId label, int depth) {
    const Bag bag = DrawBag(label, depth);
    for (const auto& [symbol, count] : bag) {
      for (int i = 0; i < count; ++i) {
        const xml::NodeId child = doc->AddChild(node, symbol);
        Fill(doc, child, symbol, depth + 1);
      }
    }
  }

  const Dms& dms_;
  common::Rng* rng_;
  SampleOptions options_;
  std::set<SymbolId> productive_;
  std::map<SymbolId, int> heights_;
};

}  // namespace

Result<xml::XmlTree> SampleDocument(const Dms& dms, common::Rng* rng,
                                    const SampleOptions& options) {
  return Sampler(dms, rng, options).Sample();
}

Dms RandomCanonicalDms(const RandomDmsOptions& options, common::Rng* rng,
                       common::Interner* interner) {
  const int n = std::max(2, options.num_labels);
  std::vector<SymbolId> labels;
  labels.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    std::string name = "t";
    name += std::to_string(i);
    labels.push_back(interner->Intern(name));
  }
  Dms dms(labels[0]);
  for (int i = 0; i < n; ++i) {
    std::vector<Clause> clauses;
    // Children only from strictly later labels: acyclic, hence satisfiable.
    std::vector<SymbolId> pool(labels.begin() + i + 1, labels.end());
    rng->Shuffle(&pool);
    const int take = pool.empty()
                         ? 0
                         : static_cast<int>(rng->Uniform(
                               std::min<uint64_t>(pool.size(),
                                                  options.max_children) +
                               1));
    int used = 0;
    while (used < take) {
      const int remaining = take - used;
      if (remaining >= 2 && rng->Bernoulli(options.disjunction_probability)) {
        const int width = remaining >= 3 && rng->Bernoulli(0.5) ? 3 : 2;
        Clause clause;
        for (int k = 0; k < width; ++k) {
          clause.atoms.push_back(
              Atom{pool[used + k], rng->Bernoulli(0.3)
                                       ? Multiplicity::kPlus
                                       : Multiplicity::kOne});
        }
        clause.mult = rng->Bernoulli(0.5) ? Multiplicity::kOne
                                          : Multiplicity::kOpt;
        clauses.push_back(std::move(clause));
        used += width;
      } else {
        static const Multiplicity kSingletonMults[] = {
            Multiplicity::kOne, Multiplicity::kOpt, Multiplicity::kPlus,
            Multiplicity::kStar};
        Clause clause;
        clause.atoms.push_back(
            Atom{pool[used], kSingletonMults[rng->Index(4)]});
        clause.mult = Multiplicity::kOne;
        clauses.push_back(std::move(clause));
        used += 1;
      }
    }
    auto dme = Dme::Create(std::move(clauses));
    dms.SetRule(labels[i], std::move(dme).value());
  }
  return dms;
}

}  // namespace schema
}  // namespace qlearn
