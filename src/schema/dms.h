// Disjunctive multiplicity schemas (DMS): a root label plus one DME content
// model per label (DESIGN.md §2.3). Provides validation, productivity /
// reachability analysis, and the PTIME containment test the paper highlights
// as a technical contribution.
#ifndef QLEARN_SCHEMA_DMS_H_
#define QLEARN_SCHEMA_DMS_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/interner.h"
#include "common/status.h"
#include "schema/dme.h"
#include "xml/xml_tree.h"

namespace qlearn {
namespace schema {

/// A disjunctive multiplicity schema.
class Dms {
 public:
  Dms() = default;

  /// Creates a schema with the given root label.
  explicit Dms(common::SymbolId root) : root_(root) {}

  common::SymbolId root() const { return root_; }
  void set_root(common::SymbolId root) { root_ = root; }

  /// Sets the content model of `label` (replacing any previous one).
  void SetRule(common::SymbolId label, Dme content);

  /// Returns the content model of `label`, or nullptr if `label` is not in
  /// the schema's alphabet.
  const Dme* Rule(common::SymbolId label) const;

  /// All labels with a rule, sorted.
  std::vector<common::SymbolId> Labels() const;

  /// True iff `doc` is valid: the root label matches and every node's child
  /// bag is accepted by its label's content model.
  bool Validates(const xml::XmlTree& doc) const;

  /// Like Validates but reports the first offending node.
  common::Status Validate(const xml::XmlTree& doc,
                          const common::Interner& interner) const;

  /// Labels that can occur in some finite valid tree (the fixpoint of
  /// "content model satisfiable over productive symbols").
  std::set<common::SymbolId> ProductiveLabels() const;

  /// Productive labels reachable from the root in some valid document.
  std::set<common::SymbolId> ReachableLabels() const;

  /// True iff some finite valid document exists.
  bool Satisfiable() const;

  /// Language containment: every document valid under this schema is valid
  /// under `other`. PTIME for bounded clause arity (DESIGN.md §5, E8).
  bool ContainedIn(const Dms& other) const;

  /// Language equivalence.
  bool EquivalentTo(const Dms& other) const {
    return ContainedIn(other) && other.ContainedIn(*this);
  }

  /// Multi-line rendering "label -> dme".
  std::string ToString(const common::Interner& interner) const;

 private:
  common::SymbolId root_ = common::kNoSymbol;
  std::map<common::SymbolId, Dme> rules_;
};

}  // namespace schema
}  // namespace qlearn

#endif  // QLEARN_SCHEMA_DMS_H_
