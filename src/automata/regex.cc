#include "automata/regex.h"

#include <algorithm>
#include <cctype>
#include <set>

namespace qlearn {
namespace automata {

using common::Interner;
using common::Result;
using common::Status;
using common::SymbolId;

bool Regex::Nullable() const {
  switch (op_) {
    case RegexOp::kEmpty:
      return false;
    case RegexOp::kEpsilon:
      return true;
    case RegexOp::kSymbol:
      return false;
    case RegexOp::kConcat:
      return std::all_of(children_.begin(), children_.end(),
                         [](const RegexPtr& c) { return c->Nullable(); });
    case RegexOp::kUnion:
      return std::any_of(children_.begin(), children_.end(),
                         [](const RegexPtr& c) { return c->Nullable(); });
    case RegexOp::kStar:
    case RegexOp::kOpt:
      return true;
    case RegexOp::kPlus:
      return children_[0]->Nullable();
  }
  return false;
}

namespace {
void CollectAlphabet(const Regex& r, std::set<SymbolId>* out) {
  if (r.op() == RegexOp::kSymbol) {
    out->insert(r.symbol());
    return;
  }
  for (const auto& c : r.children()) CollectAlphabet(*c, out);
}
}  // namespace

std::vector<SymbolId> Regex::Alphabet() const {
  std::set<SymbolId> syms;
  CollectAlphabet(*this, &syms);
  return std::vector<SymbolId>(syms.begin(), syms.end());
}

size_t Regex::Size() const {
  size_t n = 1;
  for (const auto& c : children_) n += c->Size();
  return n;
}

std::string Regex::ToString(const Interner& interner) const {
  switch (op_) {
    case RegexOp::kEmpty:
      return "<empty>";
    case RegexOp::kEpsilon:
      return "()";
    case RegexOp::kSymbol:
      return interner.Name(symbol_);
    case RegexOp::kConcat: {
      std::string out;
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += ".";
        const bool paren = children_[i]->op() == RegexOp::kUnion;
        if (paren) out += "(";
        out += children_[i]->ToString(interner);
        if (paren) out += ")";
      }
      return out;
    }
    case RegexOp::kUnion: {
      std::string out;
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += "|";
        out += children_[i]->ToString(interner);
      }
      return out;
    }
    case RegexOp::kStar:
    case RegexOp::kPlus:
    case RegexOp::kOpt: {
      const char suffix =
          op_ == RegexOp::kStar ? '*' : (op_ == RegexOp::kPlus ? '+' : '?');
      const RegexPtr& c = children_[0];
      const bool paren =
          c->op() == RegexOp::kUnion || c->op() == RegexOp::kConcat;
      std::string out;
      if (paren) out += "(";
      out += c->ToString(interner);
      if (paren) out += ")";
      out += suffix;
      return out;
    }
  }
  return "<?>";
}

RegexPtr Regex::Empty() {
  static const RegexPtr kInstance =
      std::make_shared<Regex>(RegexOp::kEmpty, common::kNoSymbol,
                              std::vector<RegexPtr>{});
  return kInstance;
}

RegexPtr Regex::Epsilon() {
  static const RegexPtr kInstance =
      std::make_shared<Regex>(RegexOp::kEpsilon, common::kNoSymbol,
                              std::vector<RegexPtr>{});
  return kInstance;
}

RegexPtr Regex::Symbol(SymbolId symbol) {
  return std::make_shared<Regex>(RegexOp::kSymbol, symbol,
                                 std::vector<RegexPtr>{});
}

RegexPtr Regex::Concat(std::vector<RegexPtr> parts) {
  std::vector<RegexPtr> flat;
  for (auto& p : parts) {
    if (p->op() == RegexOp::kEmpty) return Empty();
    if (p->op() == RegexOp::kEpsilon) continue;
    if (p->op() == RegexOp::kConcat) {
      flat.insert(flat.end(), p->children().begin(), p->children().end());
    } else {
      flat.push_back(std::move(p));
    }
  }
  if (flat.empty()) return Epsilon();
  if (flat.size() == 1) return flat[0];
  return std::make_shared<Regex>(RegexOp::kConcat, common::kNoSymbol,
                                 std::move(flat));
}

RegexPtr Regex::Union(std::vector<RegexPtr> parts) {
  std::vector<RegexPtr> flat;
  bool saw_epsilon = false;
  for (auto& p : parts) {
    if (p->op() == RegexOp::kEmpty) continue;
    if (p->op() == RegexOp::kEpsilon) {
      saw_epsilon = true;
      continue;
    }
    if (p->op() == RegexOp::kUnion) {
      flat.insert(flat.end(), p->children().begin(), p->children().end());
    } else {
      flat.push_back(std::move(p));
    }
  }
  // Deduplicate structurally-identical symbol alternatives (common case).
  std::sort(flat.begin(), flat.end(),
            [](const RegexPtr& a, const RegexPtr& b) {
              if (a->op() != b->op()) return a->op() < b->op();
              return a->symbol() < b->symbol();
            });
  flat.erase(std::unique(flat.begin(), flat.end(),
                         [](const RegexPtr& a, const RegexPtr& b) {
                           return a->op() == RegexOp::kSymbol &&
                                  b->op() == RegexOp::kSymbol &&
                                  a->symbol() == b->symbol();
                         }),
             flat.end());
  if (flat.empty()) return saw_epsilon ? Epsilon() : Empty();
  RegexPtr body;
  if (flat.size() == 1) {
    body = flat[0];
  } else {
    body = std::make_shared<Regex>(RegexOp::kUnion, common::kNoSymbol,
                                   std::move(flat));
  }
  if (saw_epsilon && !body->Nullable()) return Opt(body);
  return body;
}

RegexPtr Regex::Star(RegexPtr inner) {
  if (inner->op() == RegexOp::kEmpty || inner->op() == RegexOp::kEpsilon) {
    return Epsilon();
  }
  if (inner->op() == RegexOp::kStar) return inner;
  if (inner->op() == RegexOp::kPlus || inner->op() == RegexOp::kOpt) {
    return Star(inner->children()[0]);
  }
  return std::make_shared<Regex>(RegexOp::kStar, common::kNoSymbol,
                                 std::vector<RegexPtr>{std::move(inner)});
}

RegexPtr Regex::Plus(RegexPtr inner) {
  if (inner->op() == RegexOp::kEmpty) return Empty();
  if (inner->op() == RegexOp::kEpsilon) return Epsilon();
  if (inner->op() == RegexOp::kStar || inner->op() == RegexOp::kPlus) {
    return inner;
  }
  if (inner->op() == RegexOp::kOpt) return Star(inner->children()[0]);
  return std::make_shared<Regex>(RegexOp::kPlus, common::kNoSymbol,
                                 std::vector<RegexPtr>{std::move(inner)});
}

RegexPtr Regex::Opt(RegexPtr inner) {
  if (inner->op() == RegexOp::kEmpty || inner->op() == RegexOp::kEpsilon) {
    return Epsilon();
  }
  if (inner->Nullable()) return inner;
  if (inner->op() == RegexOp::kPlus) return Star(inner->children()[0]);
  return std::make_shared<Regex>(RegexOp::kOpt, common::kNoSymbol,
                                 std::vector<RegexPtr>{std::move(inner)});
}

namespace {

/// Recursive-descent parser over the grammar documented in the header.
class Parser {
 public:
  Parser(std::string_view text, Interner* interner)
      : text_(text), interner_(interner) {}

  Result<RegexPtr> Parse() {
    auto expr = ParseExpr();
    if (!expr.ok()) return expr;
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::ParseError("trailing input at offset " +
                                std::to_string(pos_) + " in regex '" +
                                std::string(text_) + "'");
    }
    return expr;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Peek(char c) {
    SkipSpace();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool Consume(char c) {
    if (Peek(c)) {
      ++pos_;
      return true;
    }
    return false;
  }

  static bool IsIdentStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
           c == '@' || c == '#';
  }
  static bool IsIdentChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '@' || c == '#' || c == '-';
  }

  Result<RegexPtr> ParseExpr() {
    std::vector<RegexPtr> terms;
    auto first = ParseTerm();
    if (!first.ok()) return first;
    terms.push_back(std::move(first).value());
    while (Consume('|')) {
      auto next = ParseTerm();
      if (!next.ok()) return next;
      terms.push_back(std::move(next).value());
    }
    return Regex::Union(std::move(terms));
  }

  Result<RegexPtr> ParseTerm() {
    std::vector<RegexPtr> factors;
    for (;;) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] == '|' || text_[pos_] == ')') {
        break;
      }
      if (text_[pos_] == '.' || text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      auto f = ParseFactor();
      if (!f.ok()) return f;
      factors.push_back(std::move(f).value());
    }
    if (factors.empty()) return RegexPtr(Regex::Epsilon());
    return Regex::Concat(std::move(factors));
  }

  Result<RegexPtr> ParseFactor() {
    auto atom = ParseAtom();
    if (!atom.ok()) return atom;
    RegexPtr r = std::move(atom).value();
    for (;;) {
      if (Consume('*')) {
        r = Regex::Star(std::move(r));
      } else if (Consume('+')) {
        r = Regex::Plus(std::move(r));
      } else if (Consume('?')) {
        r = Regex::Opt(std::move(r));
      } else {
        break;
      }
    }
    return r;
  }

  Result<RegexPtr> ParseAtom() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Status::ParseError("unexpected end of regex '" +
                                std::string(text_) + "'");
    }
    if (Consume('(')) {
      if (Consume(')')) return RegexPtr(Regex::Epsilon());
      auto inner = ParseExpr();
      if (!inner.ok()) return inner;
      if (!Consume(')')) {
        return Status::ParseError("missing ')' in regex '" +
                                  std::string(text_) + "'");
      }
      return inner;
    }
    if (!IsIdentStart(text_[pos_])) {
      return Status::ParseError("unexpected character '" +
                                std::string(1, text_[pos_]) + "' at offset " +
                                std::to_string(pos_) + " in regex '" +
                                std::string(text_) + "'");
    }
    const size_t start = pos_;
    while (pos_ < text_.size() && IsIdentChar(text_[pos_])) ++pos_;
    const SymbolId id = interner_->Intern(text_.substr(start, pos_ - start));
    return RegexPtr(Regex::Symbol(id));
  }

  std::string_view text_;
  Interner* interner_;
  size_t pos_ = 0;
};

}  // namespace

Result<RegexPtr> ParseRegex(std::string_view text, Interner* interner) {
  return Parser(text, interner).Parse();
}

}  // namespace automata
}  // namespace qlearn
