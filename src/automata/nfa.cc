#include "automata/nfa.h"

#include <algorithm>
#include <set>

namespace qlearn {
namespace automata {

using common::SymbolId;

namespace {

/// Glushkov position analysis: first/last/follow sets over symbol positions.
/// Positions are numbered 1..n in left-to-right order of symbol occurrences.
struct Positions {
  std::vector<SymbolId> symbol_of;  // 1-based; [0] unused
  std::vector<uint32_t> first;
  std::vector<uint32_t> last;
  std::vector<std::set<uint32_t>> follow;  // 1-based
  bool nullable = false;
};

struct Local {
  std::vector<uint32_t> first;
  std::vector<uint32_t> last;
  bool nullable;
};

Local Analyze(const Regex& r, Positions* ctx) {
  switch (r.op()) {
    case RegexOp::kEmpty:
      return {{}, {}, false};
    case RegexOp::kEpsilon:
      return {{}, {}, true};
    case RegexOp::kSymbol: {
      ctx->symbol_of.push_back(r.symbol());
      ctx->follow.emplace_back();
      const uint32_t pos = static_cast<uint32_t>(ctx->symbol_of.size() - 1);
      return {{pos}, {pos}, false};
    }
    case RegexOp::kConcat: {
      Local acc = Analyze(*r.children()[0], ctx);
      for (size_t i = 1; i < r.children().size(); ++i) {
        Local rhs = Analyze(*r.children()[i], ctx);
        for (uint32_t p : acc.last) {
          ctx->follow[p].insert(rhs.first.begin(), rhs.first.end());
        }
        Local merged;
        merged.first = acc.first;
        if (acc.nullable) {
          merged.first.insert(merged.first.end(), rhs.first.begin(),
                              rhs.first.end());
        }
        merged.last = rhs.last;
        if (rhs.nullable) {
          merged.last.insert(merged.last.end(), acc.last.begin(),
                             acc.last.end());
        }
        merged.nullable = acc.nullable && rhs.nullable;
        acc = std::move(merged);
      }
      return acc;
    }
    case RegexOp::kUnion: {
      Local acc{{}, {}, false};
      for (const auto& c : r.children()) {
        Local part = Analyze(*c, ctx);
        acc.first.insert(acc.first.end(), part.first.begin(),
                         part.first.end());
        acc.last.insert(acc.last.end(), part.last.begin(), part.last.end());
        acc.nullable = acc.nullable || part.nullable;
      }
      return acc;
    }
    case RegexOp::kStar:
    case RegexOp::kPlus:
    case RegexOp::kOpt: {
      Local inner = Analyze(*r.children()[0], ctx);
      if (r.op() == RegexOp::kStar || r.op() == RegexOp::kPlus) {
        for (uint32_t p : inner.last) {
          ctx->follow[p].insert(inner.first.begin(), inner.first.end());
        }
      }
      const bool nullable =
          r.op() == RegexOp::kPlus ? inner.nullable : true;
      return {inner.first, inner.last, nullable};
    }
  }
  return {{}, {}, false};
}

}  // namespace

Nfa Nfa::FromRegex(const Regex& regex) {
  Positions ctx;
  ctx.symbol_of.push_back(common::kNoSymbol);  // position 0 = start
  ctx.follow.emplace_back();
  Local top = Analyze(regex, &ctx);
  ctx.nullable = top.nullable;

  const size_t n = ctx.symbol_of.size();  // states: 0 = start, 1..n-1
  std::vector<std::vector<std::pair<SymbolId, StateId>>> trans(n);
  std::vector<bool> accepting(n, false);
  for (uint32_t p : top.first) {
    trans[0].emplace_back(ctx.symbol_of[p], p);
  }
  for (uint32_t p = 1; p < n; ++p) {
    for (uint32_t q : ctx.follow[p]) {
      trans[p].emplace_back(ctx.symbol_of[q], q);
    }
  }
  for (uint32_t p : top.last) accepting[p] = true;
  accepting[0] = ctx.nullable;
  return Nfa(n, std::move(trans), std::move(accepting));
}

bool Nfa::Accepts(const std::vector<SymbolId>& word) const {
  std::vector<bool> current(NumStates(), false);
  current[start()] = true;
  for (SymbolId sym : word) {
    std::vector<bool> next(NumStates(), false);
    bool any = false;
    for (StateId s = 0; s < NumStates(); ++s) {
      if (!current[s]) continue;
      for (const auto& [label, target] : transitions_[s]) {
        if (label == sym) {
          next[target] = true;
          any = true;
        }
      }
    }
    if (!any) return false;
    current = std::move(next);
  }
  for (StateId s = 0; s < NumStates(); ++s) {
    if (current[s] && accepting_[s]) return true;
  }
  return false;
}

std::vector<SymbolId> Nfa::Alphabet() const {
  std::set<SymbolId> syms;
  for (const auto& out : transitions_) {
    for (const auto& [label, target] : out) {
      (void)target;
      syms.insert(label);
    }
  }
  return std::vector<SymbolId>(syms.begin(), syms.end());
}

}  // namespace automata
}  // namespace qlearn
