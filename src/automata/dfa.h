// Complete deterministic finite automata with the decision procedures the
// library needs: minimization, products, emptiness, equivalence, containment,
// shortest witnesses, and regex extraction by state elimination.
#ifndef QLEARN_AUTOMATA_DFA_H_
#define QLEARN_AUTOMATA_DFA_H_

#include <optional>
#include <vector>

#include "automata/nfa.h"
#include "automata/regex.h"
#include "common/interner.h"

namespace qlearn {
namespace automata {

/// Complete DFA over an explicit sorted alphabet. Transitions are stored as a
/// dense [state][alphabet-index] matrix; a dead sink state (if required by
/// completion) is an ordinary state.
class Dfa {
 public:
  /// Subset construction over the union of `nfa`'s alphabet and
  /// `extra_alphabet`; the result is complete over that alphabet.
  static Dfa Determinize(const Nfa& nfa,
                         const std::vector<common::SymbolId>& extra_alphabet =
                             {});

  /// Convenience: regex -> Glushkov NFA -> complete DFA.
  static Dfa FromRegex(const Regex& regex,
                       const std::vector<common::SymbolId>& extra_alphabet =
                           {});

  size_t NumStates() const { return accepting_.size(); }
  StateId start() const { return start_; }
  bool IsAccepting(StateId s) const { return accepting_[s]; }
  const std::vector<common::SymbolId>& alphabet() const { return alphabet_; }

  /// Transition from `s` on the `a`-th alphabet symbol.
  StateId Step(StateId s, size_t alpha_index) const {
    return transitions_[s][alpha_index];
  }

  /// Membership; symbols outside the alphabet reject.
  bool Accepts(const std::vector<common::SymbolId>& word) const;

  /// True iff the language is empty.
  bool IsEmpty() const;

  /// Canonical minimal DFA (Moore partition refinement + reachability trim).
  Dfa Minimize() const;

  /// Re-targets this DFA onto a (super-)alphabet; new symbols go to a sink.
  Dfa WithAlphabet(const std::vector<common::SymbolId>& alphabet) const;

  /// Language equality.
  static bool Equivalent(const Dfa& a, const Dfa& b);

  /// True iff L(inner) is a subset of L(outer).
  static bool Contains(const Dfa& outer, const Dfa& inner);

  /// A shortest word in L(a) \ L(b), if any.
  static std::optional<std::vector<common::SymbolId>> DifferenceWitness(
      const Dfa& a, const Dfa& b);

  /// A shortest accepted word, if the language is non-empty.
  std::optional<std::vector<common::SymbolId>> ShortestAccepted() const;

  /// Equivalent regex via state elimination (no simplification guarantees
  /// beyond the smart constructors).
  RegexPtr ToRegex() const;

  Dfa(std::vector<common::SymbolId> alphabet, StateId start,
      std::vector<std::vector<StateId>> transitions,
      std::vector<bool> accepting)
      : alphabet_(std::move(alphabet)),
        start_(start),
        transitions_(std::move(transitions)),
        accepting_(std::move(accepting)) {}

 private:
  enum class ProductMode { kIntersection, kDifference };
  static Dfa Product(const Dfa& a, const Dfa& b, ProductMode mode);

  std::vector<common::SymbolId> alphabet_;
  StateId start_;
  std::vector<std::vector<StateId>> transitions_;
  std::vector<bool> accepting_;
};

}  // namespace automata
}  // namespace qlearn

#endif  // QLEARN_AUTOMATA_DFA_H_
