#include "automata/dfa.h"

#include <algorithm>
#include <deque>
#include <map>
#include <numeric>
#include <set>

namespace qlearn {
namespace automata {

using common::SymbolId;

Dfa Dfa::Determinize(const Nfa& nfa,
                     const std::vector<SymbolId>& extra_alphabet) {
  std::set<SymbolId> sigma(extra_alphabet.begin(), extra_alphabet.end());
  for (SymbolId s : nfa.Alphabet()) sigma.insert(s);
  std::vector<SymbolId> alphabet(sigma.begin(), sigma.end());

  // Subset construction; subsets are sorted NFA state vectors.
  std::map<std::vector<StateId>, StateId> ids;
  std::vector<std::vector<StateId>> subsets;
  auto intern = [&](std::vector<StateId> subset) {
    auto it = ids.find(subset);
    if (it != ids.end()) return it->second;
    const StateId id = static_cast<StateId>(subsets.size());
    ids.emplace(subset, id);
    subsets.push_back(std::move(subset));
    return id;
  };

  const StateId start = intern({nfa.start()});
  std::vector<std::vector<StateId>> transitions;
  std::vector<bool> accepting;
  for (StateId cur = 0; cur < subsets.size(); ++cur) {
    const std::vector<StateId> subset = subsets[cur];  // copy: vector grows
    bool acc = false;
    for (StateId s : subset) acc = acc || nfa.IsAccepting(s);
    std::vector<StateId> row(alphabet.size());
    for (size_t a = 0; a < alphabet.size(); ++a) {
      std::set<StateId> next;
      for (StateId s : subset) {
        for (const auto& [label, target] : nfa.Transitions(s)) {
          if (label == alphabet[a]) next.insert(target);
        }
      }
      row[a] = intern(std::vector<StateId>(next.begin(), next.end()));
    }
    if (transitions.size() <= cur) {
      transitions.resize(cur + 1);
      accepting.resize(cur + 1);
    }
    transitions[cur] = std::move(row);
    accepting[cur] = acc;
  }
  // Subsets discovered after the last processed state (none: loop covers all).
  return Dfa(std::move(alphabet), start, std::move(transitions),
             std::move(accepting));
}

Dfa Dfa::FromRegex(const Regex& regex,
                   const std::vector<SymbolId>& extra_alphabet) {
  return Determinize(Nfa::FromRegex(regex), extra_alphabet);
}

bool Dfa::Accepts(const std::vector<SymbolId>& word) const {
  StateId s = start_;
  for (SymbolId sym : word) {
    auto it = std::lower_bound(alphabet_.begin(), alphabet_.end(), sym);
    if (it == alphabet_.end() || *it != sym) return false;
    s = transitions_[s][static_cast<size_t>(it - alphabet_.begin())];
  }
  return accepting_[s];
}

bool Dfa::IsEmpty() const { return !ShortestAccepted().has_value(); }

std::optional<std::vector<SymbolId>> Dfa::ShortestAccepted() const {
  // BFS from the start state, tracking the predecessor edge of each state.
  std::vector<int> pred_state(NumStates(), -1);
  std::vector<size_t> pred_sym(NumStates(), 0);
  std::vector<bool> seen(NumStates(), false);
  std::deque<StateId> queue{start_};
  seen[start_] = true;
  while (!queue.empty()) {
    const StateId s = queue.front();
    queue.pop_front();
    if (accepting_[s]) {
      std::vector<SymbolId> word;
      StateId cur = s;
      while (cur != start_ || pred_state[cur] >= 0) {
        if (pred_state[cur] < 0) break;
        word.push_back(alphabet_[pred_sym[cur]]);
        cur = static_cast<StateId>(pred_state[cur]);
        if (cur == start_ && pred_state[cur] < 0) break;
      }
      std::reverse(word.begin(), word.end());
      return word;
    }
    for (size_t a = 0; a < alphabet_.size(); ++a) {
      const StateId t = transitions_[s][a];
      if (!seen[t]) {
        seen[t] = true;
        pred_state[t] = static_cast<int>(s);
        pred_sym[t] = a;
        queue.push_back(t);
      }
    }
  }
  return std::nullopt;
}

Dfa Dfa::WithAlphabet(const std::vector<SymbolId>& alphabet) const {
  // Map each new alphabet symbol to the old index (or none -> sink).
  std::vector<int> old_index(alphabet.size(), -1);
  for (size_t a = 0; a < alphabet.size(); ++a) {
    auto it = std::lower_bound(alphabet_.begin(), alphabet_.end(), alphabet[a]);
    if (it != alphabet_.end() && *it == alphabet[a]) {
      old_index[a] = static_cast<int>(it - alphabet_.begin());
    }
  }
  const bool needs_sink =
      std::any_of(old_index.begin(), old_index.end(),
                  [](int i) { return i < 0; });
  const size_t n = NumStates() + (needs_sink ? 1 : 0);
  const StateId sink = static_cast<StateId>(NumStates());
  std::vector<std::vector<StateId>> transitions(
      n, std::vector<StateId>(alphabet.size(), sink));
  std::vector<bool> accepting(n, false);
  for (StateId s = 0; s < NumStates(); ++s) {
    accepting[s] = accepting_[s];
    for (size_t a = 0; a < alphabet.size(); ++a) {
      if (old_index[a] >= 0) {
        transitions[s][a] = transitions_[s][static_cast<size_t>(old_index[a])];
      }
    }
  }
  return Dfa(alphabet, start_, std::move(transitions), std::move(accepting));
}

Dfa Dfa::Product(const Dfa& a, const Dfa& b, ProductMode mode) {
  std::set<SymbolId> sigma(a.alphabet_.begin(), a.alphabet_.end());
  sigma.insert(b.alphabet_.begin(), b.alphabet_.end());
  std::vector<SymbolId> alphabet(sigma.begin(), sigma.end());
  const Dfa lhs = a.WithAlphabet(alphabet);
  const Dfa rhs = b.WithAlphabet(alphabet);

  std::map<std::pair<StateId, StateId>, StateId> ids;
  std::vector<std::pair<StateId, StateId>> pairs;
  auto intern = [&](std::pair<StateId, StateId> p) {
    auto it = ids.find(p);
    if (it != ids.end()) return it->second;
    const StateId id = static_cast<StateId>(pairs.size());
    ids.emplace(p, id);
    pairs.push_back(p);
    return id;
  };
  const StateId start = intern({lhs.start(), rhs.start()});
  std::vector<std::vector<StateId>> transitions;
  std::vector<bool> accepting;
  for (StateId cur = 0; cur < pairs.size(); ++cur) {
    const auto [ls, rs] = pairs[cur];
    std::vector<StateId> row(alphabet.size());
    for (size_t al = 0; al < alphabet.size(); ++al) {
      row[al] = intern({lhs.Step(ls, al), rhs.Step(rs, al)});
    }
    if (transitions.size() <= cur) {
      transitions.resize(cur + 1);
      accepting.resize(cur + 1);
    }
    transitions[cur] = std::move(row);
    accepting[cur] = mode == ProductMode::kIntersection
                         ? (lhs.IsAccepting(ls) && rhs.IsAccepting(rs))
                         : (lhs.IsAccepting(ls) && !rhs.IsAccepting(rs));
  }
  return Dfa(std::move(alphabet), start, std::move(transitions),
             std::move(accepting));
}

bool Dfa::Equivalent(const Dfa& a, const Dfa& b) {
  return Contains(a, b) && Contains(b, a);
}

bool Dfa::Contains(const Dfa& outer, const Dfa& inner) {
  return Product(inner, outer, ProductMode::kDifference).IsEmpty();
}

std::optional<std::vector<SymbolId>> Dfa::DifferenceWitness(const Dfa& a,
                                                            const Dfa& b) {
  return Product(a, b, ProductMode::kDifference).ShortestAccepted();
}

Dfa Dfa::Minimize() const {
  // Trim to reachable states first.
  std::vector<int> reach_id(NumStates(), -1);
  std::vector<StateId> order;
  std::deque<StateId> queue{start_};
  reach_id[start_] = 0;
  order.push_back(start_);
  while (!queue.empty()) {
    const StateId s = queue.front();
    queue.pop_front();
    for (size_t a = 0; a < alphabet_.size(); ++a) {
      const StateId t = transitions_[s][a];
      if (reach_id[t] < 0) {
        reach_id[t] = static_cast<int>(order.size());
        order.push_back(t);
        queue.push_back(t);
      }
    }
  }

  // Moore partition refinement on the reachable part.
  const size_t n = order.size();
  std::vector<int> block(n);
  for (size_t i = 0; i < n; ++i) block[i] = accepting_[order[i]] ? 1 : 0;
  size_t num_blocks = 2;
  for (;;) {
    // Signature: (block, block of each successor).
    std::map<std::vector<int>, int> sig_ids;
    std::vector<int> next_block(n);
    for (size_t i = 0; i < n; ++i) {
      std::vector<int> sig;
      sig.reserve(alphabet_.size() + 1);
      sig.push_back(block[i]);
      for (size_t a = 0; a < alphabet_.size(); ++a) {
        sig.push_back(block[reach_id[transitions_[order[i]][a]]]);
      }
      auto [it, inserted] =
          sig_ids.emplace(std::move(sig), static_cast<int>(sig_ids.size()));
      next_block[i] = it->second;
      (void)inserted;
    }
    if (sig_ids.size() == num_blocks) {
      block = std::move(next_block);
      break;
    }
    num_blocks = sig_ids.size();
    block = std::move(next_block);
  }

  std::vector<std::vector<StateId>> transitions(
      num_blocks, std::vector<StateId>(alphabet_.size(), 0));
  std::vector<bool> accepting(num_blocks, false);
  for (size_t i = 0; i < n; ++i) {
    const int bid = block[i];
    accepting[bid] = accepting_[order[i]];
    for (size_t a = 0; a < alphabet_.size(); ++a) {
      transitions[bid][a] =
          static_cast<StateId>(block[reach_id[transitions_[order[i]][a]]]);
    }
  }
  return Dfa(alphabet_, static_cast<StateId>(block[0]), std::move(transitions),
             std::move(accepting));
}

RegexPtr Dfa::ToRegex() const {
  // Generalized-NFA state elimination. Work on the trimmed automaton with a
  // fresh initial and final node: nodes are 0=init, 1..n states, n+1=final.
  const Dfa m = Minimize();
  const size_t n = m.NumStates();
  const size_t kInit = 0;
  const size_t kFinal = n + 1;
  std::vector<std::vector<RegexPtr>> edge(
      n + 2, std::vector<RegexPtr>(n + 2, Regex::Empty()));
  edge[kInit][m.start() + 1] = Regex::Epsilon();
  for (StateId s = 0; s < n; ++s) {
    if (m.IsAccepting(s)) edge[s + 1][kFinal] = Regex::Epsilon();
    for (size_t a = 0; a < m.alphabet().size(); ++a) {
      const StateId t = m.Step(s, a);
      edge[s + 1][t + 1] = Regex::Union(
          {edge[s + 1][t + 1], Regex::Symbol(m.alphabet()[a])});
    }
  }
  // Eliminate states 1..n.
  for (size_t k = 1; k <= n; ++k) {
    const RegexPtr loop = edge[k][k];
    const RegexPtr loop_star = loop->op() == RegexOp::kEmpty
                                   ? Regex::Epsilon()
                                   : Regex::Star(loop);
    for (size_t i = 0; i <= n + 1; ++i) {
      if (i == k || edge[i][k]->op() == RegexOp::kEmpty) continue;
      for (size_t j = 0; j <= n + 1; ++j) {
        if (j == k || edge[k][j]->op() == RegexOp::kEmpty) continue;
        const RegexPtr via =
            Regex::Concat({edge[i][k], loop_star, edge[k][j]});
        edge[i][j] = Regex::Union({edge[i][j], via});
      }
    }
    for (size_t i = 0; i <= n + 1; ++i) {
      edge[i][k] = Regex::Empty();
      edge[k][i] = Regex::Empty();
    }
  }
  return edge[kInit][kFinal];
}

}  // namespace automata
}  // namespace qlearn
