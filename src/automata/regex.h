// Regular expressions over an interned symbol alphabet. Used as DTD content
// models, graph path-query syntax, and output language of the RPNI learner.
#ifndef QLEARN_AUTOMATA_REGEX_H_
#define QLEARN_AUTOMATA_REGEX_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/interner.h"
#include "common/status.h"

namespace qlearn {
namespace automata {

/// Node kinds of the regex AST.
enum class RegexOp {
  kEmpty,    ///< The empty language.
  kEpsilon,  ///< The language containing only the empty word.
  kSymbol,   ///< A single alphabet symbol.
  kConcat,   ///< Concatenation of children (>= 2).
  kUnion,    ///< Union of children (>= 2).
  kStar,     ///< Kleene star of the single child.
  kPlus,     ///< One-or-more of the single child.
  kOpt,      ///< Zero-or-one of the single child.
};

class Regex;
/// Immutable shared regex node; subtrees are shared freely.
using RegexPtr = std::shared_ptr<const Regex>;

/// Immutable regex AST node. Construct through the smart constructors below,
/// which apply basic simplifications (e.g. `r|∅ = r`, `(r*)* = r*`).
class Regex {
 public:
  RegexOp op() const { return op_; }
  common::SymbolId symbol() const { return symbol_; }
  const std::vector<RegexPtr>& children() const { return children_; }

  /// True iff the empty word is in the language.
  bool Nullable() const;

  /// Collects the distinct symbols used, in sorted order.
  std::vector<common::SymbolId> Alphabet() const;

  /// Number of AST nodes.
  size_t Size() const;

  /// Renders with names from `interner`; concatenation is '.', union '|'.
  std::string ToString(const common::Interner& interner) const;

  // -- Smart constructors ----------------------------------------------------
  static RegexPtr Empty();
  static RegexPtr Epsilon();
  static RegexPtr Symbol(common::SymbolId symbol);
  static RegexPtr Concat(std::vector<RegexPtr> parts);
  static RegexPtr Union(std::vector<RegexPtr> parts);
  static RegexPtr Star(RegexPtr inner);
  static RegexPtr Plus(RegexPtr inner);
  static RegexPtr Opt(RegexPtr inner);

  // Internal constructor; use the smart constructors.
  Regex(RegexOp op, common::SymbolId symbol, std::vector<RegexPtr> children)
      : op_(op), symbol_(symbol), children_(std::move(children)) {}

 private:
  RegexOp op_;
  common::SymbolId symbol_;
  std::vector<RegexPtr> children_;
};

/// Parses the textual regex syntax:
///   expr   := term ('|' term)*
///   term   := factor (('.' | ',')? factor)*      (juxtaposition = concat)
///   factor := atom ('*' | '+' | '?')*
///   atom   := identifier | '(' expr ')' | '()'   ('()' denotes epsilon)
/// Identifiers match [A-Za-z_@#][A-Za-z0-9_@#-]* and are interned.
common::Result<RegexPtr> ParseRegex(std::string_view text,
                                    common::Interner* interner);

}  // namespace automata
}  // namespace qlearn

#endif  // QLEARN_AUTOMATA_REGEX_H_
