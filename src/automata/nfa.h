// Glushkov (position) automata built from regexes: epsilon-free NFAs used for
// DTD content-model membership and graph path-query evaluation.
#ifndef QLEARN_AUTOMATA_NFA_H_
#define QLEARN_AUTOMATA_NFA_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "automata/regex.h"
#include "common/interner.h"

namespace qlearn {
namespace automata {

/// NFA state index.
using StateId = uint32_t;

/// Epsilon-free nondeterministic finite automaton with a single start state.
class Nfa {
 public:
  /// Builds the Glushkov automaton of `regex`: state 0 is the start, states
  /// 1..n correspond to symbol positions of the regex.
  static Nfa FromRegex(const Regex& regex);

  /// Number of states.
  size_t NumStates() const { return transitions_.size(); }

  StateId start() const { return 0; }
  bool IsAccepting(StateId s) const { return accepting_[s]; }

  /// Outgoing transitions of `s` as (symbol, target) pairs.
  const std::vector<std::pair<common::SymbolId, StateId>>& Transitions(
      StateId s) const {
    return transitions_[s];
  }

  /// Membership test for a word of symbols (on-the-fly subset simulation).
  bool Accepts(const std::vector<common::SymbolId>& word) const;

  /// Distinct symbols appearing on transitions, sorted.
  std::vector<common::SymbolId> Alphabet() const;

  /// Builds an NFA directly (used by tests and the learners).
  Nfa(size_t num_states,
      std::vector<std::vector<std::pair<common::SymbolId, StateId>>> trans,
      std::vector<bool> accepting)
      : transitions_(std::move(trans)), accepting_(std::move(accepting)) {
    (void)num_states;
  }

 private:
  std::vector<std::vector<std::pair<common::SymbolId, StateId>>> transitions_;
  std::vector<bool> accepting_;
};

}  // namespace automata
}  // namespace qlearn

#endif  // QLEARN_AUTOMATA_NFA_H_
