// The session service surface: many concurrent learning sessions behind
// string handles, questions and answers as wire payloads, budgets enforced
// by the service — what an RPC front end (crowd dispatcher, web UI) builds
// on. Two sessions of different scenarios run interleaved here, the way
// two remote users would drive them, and every exchange is printed as the
// wire-format lines a transcript records.
//
// Build & run:  cmake -B build && cmake --build build -j
//               ./build/examples/example_serve_sessions
#include <cstdio>
#include <string>
#include <vector>

#include "service/session_service.h"
#include "service/wire.h"

using qlearn::service::OpenOptions;
using qlearn::service::SessionService;

namespace {

/// One protocol step of a session: ask a batch, print the wire payloads,
/// answer with the built-in oracle. False once the session converged.
bool Step(SessionService* service, const std::string& id, size_t k) {
  auto batch = service->Ask(id, k);
  if (!batch.ok()) {
    std::fprintf(stderr, "Ask(%s) failed: %s\n", id.c_str(),
                 batch.status().ToString().c_str());
    return false;
  }
  if (batch.value().empty()) return false;
  for (const auto& payload : batch.value()) {
    std::printf("  %s <- %s\n", id.c_str(),
                qlearn::service::wire::Serialize(payload).c_str());
  }
  auto labels = service->OracleLabels(id);
  if (!labels.ok() || !service->Tell(id, labels.value()).ok()) return false;
  return true;
}

}  // namespace

int main() {
  SessionService service;

  // Open two sessions with different budgets; handles are plain strings, so
  // a server can hand them to remote clients.
  OpenOptions join_options;
  join_options.budget.max_pending = 4;
  auto join_id = service.Open("join", join_options);
  OpenOptions chain_options;
  chain_options.budget.max_questions = 100;
  auto chain_id = service.Open("chain", chain_options);
  if (!join_id.ok() || !chain_id.ok()) {
    std::fprintf(stderr, "Open failed\n");
    return 1;
  }
  std::printf("open sessions:");
  for (const std::string& id : service.ListOpen()) {
    std::printf(" %s", id.c_str());
  }
  std::printf("\n\n");

  // Interleave the two sessions the way two concurrent users would.
  bool join_live = true;
  bool chain_live = true;
  while (join_live || chain_live) {
    if (join_live) join_live = Step(&service, join_id.value(), 4);
    if (chain_live) chain_live = Step(&service, chain_id.value(), 1);
  }

  for (const std::string& id : {join_id.value(), chain_id.value()}) {
    auto status = service.Status(id);
    if (!status.ok()) return 1;
    auto closed = service.Close(id);
    if (!closed.ok()) return 1;
    std::printf("\n%s (%s) learned %s\n", id.c_str(),
                status.value().scenario.c_str(),
                qlearn::service::wire::Serialize(closed.value().hypothesis)
                    .c_str());
    std::printf("  final stats %s\n",
                qlearn::service::wire::Serialize(closed.value().stats)
                    .c_str());
  }

  // Budgets are enforced by the service, not by well-behaved callers: a
  // two-question budget clamps the first batch and refuses the next one.
  OpenOptions capped;
  capped.budget.max_questions = 2;
  auto capped_id = service.Open("twig", capped);
  if (!capped_id.ok()) return 1;
  auto clamped = service.Ask(capped_id.value(), 10);
  if (!clamped.ok()) return 1;
  std::printf("\nbudget demo: asked for 10, served %zu (budget 2)\n",
              clamped.value().size());
  auto labels = service.OracleLabels(capped_id.value());
  if (!labels.ok()) return 1;
  (void)service.Tell(capped_id.value(), labels.value());
  auto refused = service.Ask(capped_id.value(), 1);
  std::printf("next Ask: %s\n", refused.ok()
                                    ? "unexpectedly succeeded"
                                    : refused.status().ToString().c_str());
  (void)service.Close(capped_id.value());
  return refused.ok() ? 1 : 0;
}
