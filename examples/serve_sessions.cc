// The session service behind a real socket: a net::Server (single-reactor,
// worker-pool, framed-TCP front end) serves a SessionService on an
// ephemeral loopback port, and everything below goes through net::Client —
// string handles, questions and answers as wire payloads, budgets enforced
// server-side — exactly the path a remote crowd dispatcher or web UI would
// take. Two sessions of different scenarios run interleaved over one
// connection, the way two remote users multiplexed by a gateway would, and
// every exchange is printed as the wire-format lines a transcript records.
//
// Build & run:  cmake -B build && cmake --build build -j
//               ./build/examples/example_serve_sessions
#include <cstdio>
#include <string>
#include <vector>

#include "net/client.h"
#include "net/server.h"
#include "service/session_service.h"
#include "service/wire.h"

using qlearn::net::Client;
using qlearn::net::Server;
using qlearn::net::ServerOptions;
using qlearn::service::OpenOptions;
using qlearn::service::SessionService;

namespace {

/// One protocol step of a session: ask a batch over the socket, print the
/// wire payloads, answer with the server-side oracle. False once the
/// session converged.
bool Step(Client* client, const std::string& id, uint64_t k) {
  auto batch = client->Ask(id, k);
  if (!batch.ok()) {
    std::fprintf(stderr, "Ask(%s) failed: %s\n", id.c_str(),
                 batch.status().ToString().c_str());
    return false;
  }
  if (batch.value().empty()) return false;
  for (const auto& payload : batch.value()) {
    std::printf("  %s <- %s\n", id.c_str(),
                qlearn::service::wire::Serialize(payload).c_str());
  }
  auto labels = client->OracleLabels(id);
  if (!labels.ok() || !client->Tell(id, labels.value()).ok()) return false;
  return true;
}

}  // namespace

int main() {
  // The server owns the service; port 0 picks an ephemeral loopback port.
  SessionService service;
  ServerOptions server_options;
  server_options.workers = 2;
  Server server(&service, server_options);
  if (!server.Start().ok()) {
    std::fprintf(stderr, "server start failed\n");
    return 1;
  }
  std::printf("serving on 127.0.0.1:%u\n\n", server.port());

  auto client_or = Client::Connect("127.0.0.1", server.port());
  if (!client_or.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 client_or.status().ToString().c_str());
    return 1;
  }
  Client client = std::move(client_or).value();

  // Open two sessions with different budgets; handles are plain strings
  // minted by the server, valid from any connection.
  OpenOptions join_options;
  join_options.budget.max_pending = 4;
  auto join_id = client.Open("join", join_options);
  OpenOptions chain_options;
  chain_options.budget.max_questions = 100;
  auto chain_id = client.Open("chain", chain_options);
  if (!join_id.ok() || !chain_id.ok()) {
    std::fprintf(stderr, "Open failed\n");
    return 1;
  }
  std::printf("open sessions: %s %s\n\n", join_id.value().c_str(),
              chain_id.value().c_str());

  // Interleave the two sessions the way two concurrent users would.
  bool join_live = true;
  bool chain_live = true;
  while (join_live || chain_live) {
    if (join_live) join_live = Step(&client, join_id.value(), 4);
    if (chain_live) chain_live = Step(&client, chain_id.value(), 1);
  }

  for (const std::string& id : {join_id.value(), chain_id.value()}) {
    auto status = client.Status(id);
    if (!status.ok()) return 1;
    auto closed = client.Close(id);
    if (!closed.ok()) return 1;
    std::printf("\n%s (%s) learned %s\n", id.c_str(),
                status.value().scenario.c_str(),
                qlearn::service::wire::Serialize(closed.value().hypothesis)
                    .c_str());
    std::printf("  final stats %s\n",
                qlearn::service::wire::Serialize(closed.value().stats)
                    .c_str());
  }

  // Budgets are enforced by the service, not by well-behaved callers: a
  // two-question budget clamps the first batch and refuses the next one —
  // and the refusal arrives as a structured error frame, not a hangup.
  OpenOptions capped;
  capped.budget.max_questions = 2;
  auto capped_id = client.Open("twig", capped);
  if (!capped_id.ok()) return 1;
  auto clamped = client.Ask(capped_id.value(), 10);
  if (!clamped.ok()) return 1;
  std::printf("\nbudget demo: asked for 10, served %zu (budget 2)\n",
              clamped.value().size());
  auto labels = client.OracleLabels(capped_id.value());
  if (!labels.ok()) return 1;
  (void)client.Tell(capped_id.value(), labels.value());
  auto refused = client.Ask(capped_id.value(), 1);
  std::printf("next Ask: %s\n", refused.ok()
                                    ? "unexpectedly succeeded"
                                    : refused.status().ToString().c_str());
  (void)client.Close(capped_id.value());

  // The connection survived every error above; the service-wide counters
  // arrive over the same socket.
  auto counters = client.Counters();
  if (!counters.ok()) return 1;
  std::printf("\nserved: %llu opens, %llu asks, %llu tells, %llu errors\n",
              static_cast<unsigned long long>(counters.value().first.opens),
              static_cast<unsigned long long>(counters.value().first.asks),
              static_cast<unsigned long long>(counters.value().first.tells),
              static_cast<unsigned long long>(counters.value().first.errors));

  server.Stop();
  return refused.ok() ? 1 : 0;
}
