// Unions of twig queries and join chains: the paper's two "richer language"
// extensions in one scenario. A librarian marks the titles of books AND
// magazines (but not newsletters) — no single twig covers both, a union
// does. The same catalog's relational side is then traversed with a learned
// three-relation join chain.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/example_disjunctive_queries
#include <cstdio>

#include "common/interner.h"
#include "learn/union_learner.h"
#include "relational/relation.h"
#include "rlearn/chain_learner.h"
#include "rlearn/interactive_chain.h"
#include "xml/xml_parser.h"

using qlearn::relational::Relation;
using qlearn::relational::RelationSchema;
using qlearn::relational::Value;
using qlearn::relational::ValueType;

int main() {
  qlearn::common::Interner interner;

  // ---- Part 1: a disjunctive concept over the XML catalog ----
  auto doc_or = qlearn::xml::ParseXml(
      "<catalog>"
      "  <book><title/><isbn/></book>"
      "  <book><title/></book>"
      "  <magazine><title/><issue/></magazine>"
      "  <newsletter><title/></newsletter>"
      "</catalog>",
      &interner);
  if (!doc_or.ok()) return 1;
  const qlearn::xml::XmlTree& doc = doc_or.value();

  std::vector<qlearn::learn::TreeExample> positives;
  std::vector<qlearn::learn::TreeExample> negatives;
  for (qlearn::xml::NodeId n : doc.PreOrder()) {
    if (interner.Name(doc.label(n)) != "title") continue;
    const std::string parent = interner.Name(doc.label(doc.parent(n)));
    if (parent == "book" || parent == "magazine") {
      positives.push_back({&doc, n});
    } else {
      negatives.push_back({&doc, n});
    }
  }

  const auto consistency =
      qlearn::learn::CheckUnionConsistency(positives, negatives);
  std::printf("union-consistency of %zu+/%zu- examples: %s (PTIME check)\n",
              positives.size(), negatives.size(),
              consistency.consistent ? "consistent" : "inconsistent");

  auto learned = qlearn::learn::LearnTwigUnion(positives, negatives);
  if (!learned.ok()) {
    std::fprintf(stderr, "union learning failed: %s\n",
                 learned.status().ToString().c_str());
    return 1;
  }
  std::printf("learned union:  %s\n",
              learned.value().query.ToString(interner).c_str());
  std::printf("selects %zu nodes (the %zu positives, no negative)\n\n",
              learned.value().query.Evaluate(doc).size(), positives.size());

  // ---- Part 2: a chain of joins over the catalog's relational side ----
  Relation readers(RelationSchema(
      "readers", {{"rid", ValueType::kInt}, {"age", ValueType::kInt}}));
  Relation loans(RelationSchema(
      "loans", {{"rid", ValueType::kInt}, {"isbn", ValueType::kInt}}));
  Relation books(RelationSchema(
      "books", {{"isbn", ValueType::kInt}, {"shelf", ValueType::kInt}}));
  for (int64_t i = 0; i < 6; ++i) {
    readers.InsertUnchecked({Value(i), Value(20 + i)});
    loans.InsertUnchecked({Value(i % 4), Value(100 + i)});
    books.InsertUnchecked({Value(100 + i), Value(i % 2)});
  }

  auto chain_or = qlearn::rlearn::JoinChain::Create({&readers, &loans, &books});
  if (!chain_or.ok()) return 1;
  const qlearn::rlearn::JoinChain& chain = chain_or.value();

  // Hidden goal: readers.rid = loans.rid, loans.isbn = books.isbn.
  qlearn::rlearn::ChainMask goal;
  for (size_t e = 0; e < chain.num_edges(); ++e) {
    qlearn::rlearn::PairMask m = 0;
    const auto& u = chain.universe(e);
    for (size_t i = 0; i < u.size(); ++i) {
      const auto& p = u.pairs()[i];
      const std::string l =
          chain.relation(e).schema().attributes()[p.left].name;
      const std::string r =
          chain.relation(e + 1).schema().attributes()[p.right].name;
      if ((e == 0 && l == "rid" && r == "rid") ||
          (e == 1 && l == "isbn" && r == "isbn")) {
        m |= (1ULL << i);
      }
    }
    goal.push_back(m);
  }
  qlearn::rlearn::GoalChainOracle oracle(goal);

  auto session = qlearn::rlearn::RunInteractiveChainSession(chain, &oracle,
                                                            {});
  if (!session.ok()) return 1;
  std::printf("chain readers–loans–books: learned from %zu questions "
              "(%zu + %zu of %zu paths inferred free)\n",
              session.value().questions, session.value().forced_positive,
              session.value().forced_negative,
              session.value().candidate_paths);
  const auto paths =
      qlearn::rlearn::EvaluateChain(chain, session.value().learned);
  std::printf("materialized chain join: %zu reader-loan-book paths\n",
              paths.size());
  return 0;
}
