// XML shredding (Figure 1, scenarios 2 and 3): learn a twig query on an
// XMark-style auction document from annotated nodes, then shred the selected
// data into (a) a relation and (b) an RDF-style graph.
#include <cstdio>

#include "exchange/mapping.h"
#include "twig/twig_eval.h"
#include "twig/twig_parser.h"
#include "xml/xmark.h"

using qlearn::common::Interner;
using qlearn::xml::NodeId;
using qlearn::xml::XmlTree;

int main() {
  Interner interner;
  qlearn::xml::XMarkOptions options;
  options.seed = 2024;
  options.num_people = 30;
  const XmlTree doc = qlearn::xml::GenerateXMark(options, &interner);
  std::printf("XMark-style document: %zu nodes\n", doc.NumNodes());

  // The data analyst annotates a couple of person names where the person
  // has an address — the goal /site/people/person[address]/name without
  // ever writing it down.
  auto goal = qlearn::twig::ParseTwig("/site/people/person[address]/name",
                                      &interner);
  if (!goal.ok()) return 1;
  std::vector<NodeId> annotated;
  for (NodeId n : qlearn::twig::Evaluate(goal.value(), doc)) {
    annotated.push_back(n);
    if (annotated.size() == 3) break;
  }
  if (annotated.size() < 2) {
    std::fprintf(stderr, "document too small for the demo\n");
    return 1;
  }

  // Scenario 2: XML -> relational.
  qlearn::exchange::ShredOptions shred;
  shred.relation_name = "person_names";
  shred.attribute_names = {"name"};
  auto scenario2 = qlearn::exchange::RunScenario2Shredding(doc, annotated,
                                                           shred, interner);
  if (!scenario2.ok()) {
    std::fprintf(stderr, "scenario 2 failed: %s\n",
                 scenario2.status().ToString().c_str());
    return 1;
  }
  std::printf("learned twig:   %s\n",
              scenario2.value().learned.ToString(interner).c_str());
  std::printf("shredded rows:  %zu\n", scenario2.value().shredded.size());

  // Scenario 3: XML -> graph (RDF-style triples of the selected subtrees).
  auto scenario3 =
      qlearn::exchange::RunScenario3Shredding(doc, annotated, interner);
  if (!scenario3.ok()) {
    std::fprintf(stderr, "scenario 3 failed: %s\n",
                 scenario3.status().ToString().c_str());
    return 1;
  }
  std::printf("graph vertices: %zu, edges: %zu (from %zu selected roots)\n",
              scenario3.value().shredded.graph.NumVertices(),
              scenario3.value().shredded.graph.NumEdges(),
              scenario3.value().shredded.selected_roots.size());
  return 0;
}
