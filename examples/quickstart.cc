// Quickstart: learn a twig query interactively through the unified
// session API.
//
// A user who cannot write XPath marks one node as "this is what I want";
// the session then proposes nodes one at a time (skipping every node whose
// label it can infer), the user answers yes/no, and the library converges
// on the query (the paper's Section-2 setting). Here the user is simulated
// by a hidden goal query: "the <name> of every <person> with an <age>".
//
// Build & run:  cmake -B build && cmake --build build -j
//               ./build/examples/example_quickstart
#include <cstdio>

#include "common/interner.h"
#include "learn/interactive.h"
#include "session/session.h"
#include "twig/twig_eval.h"
#include "twig/twig_parser.h"
#include "xml/xml_parser.h"

int main() {
  qlearn::common::Interner interner;

  // A document from a (fictional) people directory.
  auto doc = qlearn::xml::ParseXml(
      "<site><people>"
      "  <person><name/><age/><phone/></person>"
      "  <person><name/></person>"
      "  <person><name/><age/></person>"
      "  <person><name/><homepage/></person>"
      "</people></site>",
      &interner);
  if (!doc.ok()) {
    std::fprintf(stderr, "parse error\n");
    return 1;
  }

  // The hidden intent the simulated user answers from. A real application
  // would replace `wants` below with an actual prompt to the user.
  auto goal = qlearn::twig::ParseTwig("/site/people/person[age]/name",
                                      &interner);
  if (!goal.ok()) {
    std::fprintf(stderr, "goal parse error\n");
    return 1;
  }
  auto wants = [&](qlearn::xml::NodeId node) {
    return qlearn::twig::Selects(goal.value(), doc.value(), node);
  };

  // The user annotates one example: the first <name> of a person with an
  // <age>. That seed starts the session.
  qlearn::xml::NodeId seed = qlearn::xml::kInvalidNode;
  for (qlearn::xml::NodeId n : doc.value().PreOrder()) {
    if (wants(n)) {
      seed = n;
      break;
    }
  }
  if (seed == qlearn::xml::kInvalidNode) {
    std::fprintf(stderr, "no positive seed node\n");
    return 1;
  }

  // The ask/answer loop. The session owns question selection and label
  // propagation; the caller only supplies answers — one at a time here,
  // NextQuestions(k)/AnswerAll for batches.
  qlearn::session::LearningSession<qlearn::learn::TwigEngine> session(
      qlearn::learn::TwigEngine(&doc.value(), seed));
  while (auto question = session.NextQuestion()) {
    const bool answer = wants(*question);
    std::printf("q%zu: do you want node %u <%s>?  %s\n",
                session.stats().questions, *question,
                interner.Name(doc.value().label(*question)).c_str(),
                answer ? "yes" : "no");
    session.Answer(answer);
  }
  const qlearn::twig::TwigQuery learned = session.Finish();

  std::printf("\nlearned query: %s\n", learned.ToString(interner).c_str());
  std::printf("questions asked: %zu of %zu nodes (%zu labels inferred)\n",
              session.stats().questions, doc.value().NumNodes(),
              session.stats().forced_positive +
                  session.stats().forced_negative);
  std::printf("selected nodes: %zu\n",
              qlearn::twig::Evaluate(learned, doc.value()).size());
  return 0;
}
