// Quickstart: learn a twig query from two annotated XML documents.
//
// A user who cannot write XPath marks one node per document as "this is what
// I want"; the library infers the query (the paper's Section-2 setting).
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/example_quickstart
#include <cstdio>

#include "common/interner.h"
#include "learn/twig_learner.h"
#include "twig/twig_eval.h"
#include "xml/xml_parser.h"

int main() {
  qlearn::common::Interner interner;

  // Two documents from a (fictional) people directory.
  auto doc1 = qlearn::xml::ParseXml(
      "<site><people>"
      "  <person><name/><age/><phone/></person>"
      "  <person><name/></person>"
      "</people></site>",
      &interner);
  auto doc2 = qlearn::xml::ParseXml(
      "<site><people>"
      "  <person><name/><age/></person>"
      "  <person><name/><homepage/></person>"
      "</people></site>",
      &interner);
  if (!doc1.ok() || !doc2.ok()) {
    std::fprintf(stderr, "parse error\n");
    return 1;
  }

  // The user annotates the <name> of each person that has an <age>.
  // Node ids: use the first name under the first person in both documents.
  auto find_name_with_age = [&](const qlearn::xml::XmlTree& doc) {
    for (qlearn::xml::NodeId n : doc.PreOrder()) {
      if (interner.Name(doc.label(n)) != "name") continue;
      const qlearn::xml::NodeId person = doc.parent(n);
      for (qlearn::xml::NodeId sibling : doc.children(person)) {
        if (interner.Name(doc.label(sibling)) == "age") return n;
      }
    }
    return qlearn::xml::kInvalidNode;
  };
  const qlearn::learn::TreeExample examples[] = {
      {&doc1.value(), find_name_with_age(doc1.value())},
      {&doc2.value(), find_name_with_age(doc2.value())},
  };

  auto learned = qlearn::learn::LearnTwig(
      {examples[0], examples[1]});
  if (!learned.ok()) {
    std::fprintf(stderr, "learning failed: %s\n",
                 learned.status().ToString().c_str());
    return 1;
  }

  std::printf("learned query: %s\n",
              learned.value().ToString(interner).c_str());
  std::printf("selected nodes in document 1: %zu\n",
              qlearn::twig::Evaluate(learned.value(), doc1.value()).size());
  std::printf("selected nodes in document 2: %zu\n",
              qlearn::twig::Evaluate(learned.value(), doc2.value()).size());
  return 0;
}
