// Schema toolbox: infer a disjunctive multiplicity schema from example
// documents (identifiable in the limit from positive examples), validate,
// test containment, and use the schema to shrink a learned query — the
// paper's schema-aware optimization.
#include <cstdio>

#include "learn/schema_aware.h"
#include "schema/inference.h"
#include "schema/ms.h"
#include "twig/twig_parser.h"
#include "xml/xml_parser.h"

using qlearn::common::Interner;
using qlearn::xml::XmlTree;

int main() {
  Interner interner;

  // A corpus of person records.
  const char* corpus[] = {
      "<person><name/><phone/><homepage/></person>",
      "<person><name/><creditcard/></person>",
      "<person><name/><phone/></person>",
      "<person><name/></person>",
  };
  std::vector<XmlTree> docs;
  for (const char* text : corpus) {
    auto doc = qlearn::xml::ParseXml(text, &interner);
    if (!doc.ok()) return 1;
    docs.push_back(std::move(doc).value());
  }
  std::vector<const XmlTree*> ptrs;
  for (const auto& d : docs) ptrs.push_back(&d);

  // Infer the DMS: homepage and creditcard never co-occur, so the inference
  // produces the disjunction (homepage | creditcard)?.
  auto dms = qlearn::schema::InferDms(ptrs);
  if (!dms.ok()) return 1;
  std::printf("inferred schema:\n%s\n",
              dms.value().ToString(interner).c_str());

  for (const char* probe :
       {"<person><name/><homepage/><creditcard/></person>",
        "<person><phone/></person>"}) {
    auto doc = qlearn::xml::ParseXml(probe, &interner);
    if (!doc.ok()) return 1;
    std::printf("validates %-55s -> %s\n", probe,
                dms.value().Validates(doc.value()) ? "yes" : "no");
  }

  // Schema-aware query pruning: with "every person has a name" in an MS,
  // the learned filter [name] is redundant.
  qlearn::schema::Ms ms(interner.Intern("people"));
  ms.SetMultiplicity(interner.Intern("people"), interner.Intern("person"),
                     qlearn::schema::Multiplicity::kStar);
  ms.SetMultiplicity(interner.Intern("person"), interner.Intern("name"),
                     qlearn::schema::Multiplicity::kOne);
  ms.SetMultiplicity(interner.Intern("person"), interner.Intern("phone"),
                     qlearn::schema::Multiplicity::kOpt);

  auto overspecialized =
      qlearn::twig::ParseTwig("/people/person[name][phone]", &interner);
  if (!overspecialized.ok()) return 1;
  const qlearn::twig::TwigQuery pruned =
      qlearn::learn::PruneImpliedFilters(overspecialized.value(), ms);
  std::printf("\nschema-aware pruning:\n  before: %s (size %zu)\n"
              "  after:  %s (size %zu)\n",
              overspecialized.value().ToString(interner).c_str(),
              overspecialized.value().Size(),
              pruned.ToString(interner).c_str(), pruned.Size());
  return 0;
}
