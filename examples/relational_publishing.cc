// Relational publishing (Figure 1, scenario 1): a non-expert "labels" a few
// employee/department pairs as belonging together; the library learns the
// join predicate interactively — asking as few questions as possible — runs
// the join, and publishes the result as XML.
#include <cstdio>

#include "exchange/mapping.h"
#include "relational/generator.h"

using qlearn::relational::Relation;

int main() {
  qlearn::common::Interner interner;
  qlearn::relational::Database db = qlearn::relational::TinyCompanyDatabase();
  const Relation& employees = *db.Find("employees");
  const Relation& departments = *db.Find("departments");
  std::printf("%s%s", employees.ToString().c_str(),
              departments.ToString().c_str());

  auto universe = qlearn::rlearn::PairUniverse::AllCompatible(
      employees.schema(), departments.schema());
  if (!universe.ok()) return 1;

  // The hidden intent: employees.dept_id = departments.dept_id. In a real
  // deployment the oracle is the user; here it is simulated.
  qlearn::rlearn::PairMask goal = 0;
  for (size_t i = 0; i < universe.value().size(); ++i) {
    const auto& p = universe.value().pairs()[i];
    if (employees.schema().attributes()[p.left].name == "dept_id" &&
        departments.schema().attributes()[p.right].name == "dept_id") {
      goal |= (1ULL << i);
    }
  }
  qlearn::rlearn::GoalJoinOracle oracle(&universe.value(), goal);

  qlearn::exchange::PublishOptions publish;
  publish.root_label = "staff_directory";
  publish.record_label = "member";
  // Join outputs prefix right-side attributes with the relation name.
  publish.group_by = "departments.city";

  auto result = qlearn::exchange::RunScenario1Publishing(
      universe.value(), employees, departments, &oracle, {}, publish,
      &interner);
  if (!result.ok()) {
    std::fprintf(stderr, "scenario 1 failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  const auto& session = result.value().session;
  std::printf("candidate pairs: %zu\n", session.candidate_pairs);
  std::printf("questions asked: %zu (forced positive %zu, forced negative "
              "%zu)\n",
              session.questions, session.forced_positive,
              session.forced_negative);
  std::printf("learned predicate: %s\n",
              universe.value()
                  .MaskToString(session.learned, employees.schema(),
                                departments.schema())
                  .c_str());
  std::printf("published XML:\n%s",
              result.value().published.ToXml(interner).c_str());
  return 0;
}
