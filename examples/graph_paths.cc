// Graph path learning (Figure 1, scenario 4, and the paper's geographical
// use case): on a generated road network, a user interested in highway-only
// itineraries labels candidate paths; the learner asks few questions —
// exploiting a workload prior ("previous users wanted highways too") — and
// the matching paths are published as XML.
#include <cstdio>

#include "automata/regex.h"
#include "exchange/mapping.h"
#include "graph/geo_generator.h"

int main() {
  qlearn::common::Interner interner;
  qlearn::graph::GeoOptions geo;
  geo.grid_width = 5;
  geo.grid_height = 4;
  const qlearn::graph::Graph g =
      qlearn::graph::GenerateGeoGraph(geo, &interner);
  std::printf("road network: %zu cities, %zu road segments\n",
              g.NumVertices(), g.NumEdges());

  // Hidden intent: paths made of highways only (one or more segments).
  auto goal_regex = qlearn::automata::ParseRegex("highway+", &interner);
  if (!goal_regex.ok()) return 1;
  const qlearn::graph::PathQuery goal{goal_regex.value(), std::nullopt};
  qlearn::glearn::GoalPathOracle oracle(goal, g);

  // Seed: the first highway segment.
  qlearn::graph::Path seed;
  for (qlearn::graph::EdgeId e = 0; e < g.NumEdges(); ++e) {
    if (interner.Name(g.edge(e).label) == "highway") {
      seed.start = g.edge(e).src;
      seed.edges = {e};
      break;
    }
  }
  if (seed.edges.empty()) {
    std::fprintf(stderr, "no highway in this network seed\n");
    return 1;
  }

  qlearn::glearn::InteractivePathOptions session;
  session.strategy = qlearn::glearn::PathStrategy::kWorkload;
  session.max_path_edges = 3;
  auto workload_regex =
      qlearn::automata::ParseRegex("highway.highway*", &interner);
  if (workload_regex.ok()) session.workload.push_back(workload_regex.value());

  qlearn::exchange::GraphPublishOptions publish;
  publish.max_pairs = 12;

  auto result = qlearn::exchange::RunScenario4Publishing(
      g, seed, &oracle, session, publish, &interner);
  if (!result.ok()) {
    std::fprintf(stderr, "scenario 4 failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("candidate paths: %zu\n", result.value().session.candidate_paths);
  std::printf("questions asked: %zu (forced positive %zu, forced negative "
              "%zu)\n",
              result.value().session.questions,
              result.value().session.forced_positive,
              result.value().session.forced_negative);
  std::printf("learned query:   %s\n",
              result.value().session.hypothesis.ToString(interner).c_str());
  std::printf("published %zu itineraries as XML (%zu nodes)\n",
              result.value().published.children(0).size(),
              result.value().published.NumNodes());
  return 0;
}
