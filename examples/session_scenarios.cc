// The scenario registry: every interactive scenario — XML twigs,
// relational joins, graph path queries — behind one string-keyed front
// door. This is how a server, a benchmark harness, or a demo CLI
// instantiates "a learning session" without compiling against any
// model-specific engine.
//
// Each built-in scenario ships a synthetic dataset and a hidden goal, so
// the sessions below self-answer via OracleLabels(); swap that call for a
// real user prompt to make any of them interactive.
//
// Build & run:  cmake -B build && cmake --build build -j
//               ./build/examples/example_session_scenarios
#include <cstdio>

#include "session/registry.h"

int main() {
  qlearn::session::RegisterBuiltinScenarios();
  qlearn::session::ScenarioRegistry* registry =
      qlearn::session::ScenarioRegistry::Global();

  for (const qlearn::session::ScenarioInfo& info : registry->List()) {
    std::printf("=== scenario \"%s\": %s\n", info.name.c_str(),
                info.description.c_str());
    auto created = registry->Create(info.name);
    if (!created.ok()) {
      std::fprintf(stderr, "  create failed: %s\n",
                   created.status().ToString().c_str());
      return 1;
    }
    qlearn::session::ScenarioSession& session = *created.value();

    // Show the first three questions verbatim, then drain the rest in
    // batches of 8 (the batched API a crowd front end would use).
    size_t shown = 0;
    while (auto question = session.NextQuestion()) {
      const bool answer = session.OracleLabels()[0];
      std::printf("  %s  -> %s\n", question->c_str(),
                  answer ? "yes" : "no");
      session.Answer(answer);
      if (++shown == 3) break;
    }
    while (!session.NextQuestions(8).empty()) {
      session.AnswerAll(session.OracleLabels());
    }
    session.Finish();

    std::printf("  ... learned \"%s\" after %zu questions "
                "(%zu labels inferred, %zu conflicts)\n\n",
                session.Hypothesis().c_str(), session.stats().questions,
                session.stats().forced_positive +
                    session.stats().forced_negative,
                session.stats().conflicts);
  }
  return 0;
}
