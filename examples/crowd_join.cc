// Crowdsourced join discovery: two photo collections must be joined by the
// person they show, but only human workers can tell. Every question costs
// money (a HIT), workers err, and the session must stay cheap and accurate —
// the paper's Section-3 crowdsourcing application after Marcus et al.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/example_crowd_join
#include <cstdio>

#include "crowd/crowd_join.h"
#include "relational/relation.h"

using qlearn::crowd::CrowdJoinOptions;
using qlearn::relational::Relation;
using qlearn::relational::RelationSchema;
using qlearn::relational::Value;
using qlearn::relational::ValueType;

int main() {
  // Two photo archives; columns are worker-extractable codes: the person
  // shown (ground truth of the join) and the location.
  Relation archive_a(RelationSchema(
      "archive_a", {{"person", ValueType::kInt}, {"place", ValueType::kInt}}));
  Relation archive_b(RelationSchema(
      "archive_b", {{"person", ValueType::kInt}, {"place", ValueType::kInt}}));
  for (int64_t i = 0; i < 12; ++i) {
    archive_a.InsertUnchecked({Value(i), Value(i % 3)});
    archive_b.InsertUnchecked({Value((i * 5) % 12), Value(i % 4)});
  }

  auto universe = qlearn::rlearn::PairUniverse::AllCompatible(
      archive_a.schema(), archive_b.schema());
  if (!universe.ok()) {
    std::fprintf(stderr, "%s\n", universe.status().ToString().c_str());
    return 1;
  }
  // Ground truth: same person.
  qlearn::rlearn::PairMask goal = 0;
  for (size_t i = 0; i < universe.value().size(); ++i) {
    const auto& p = universe.value().pairs()[i];
    if (archive_a.schema().attributes()[p.left].name == "person" &&
        archive_b.schema().attributes()[p.right].name == "person") {
      goal |= (1ULL << i);
    }
  }
  qlearn::rlearn::GoalJoinOracle truth(&universe.value(), goal);

  std::printf("crowd join over %zu x %zu photos (%zu candidate pairs)\n\n",
              archive_a.size(), archive_b.size(),
              archive_a.size() * archive_b.size());

  // Mode 1: brute force — ask the crowd about every pair.
  CrowdJoinOptions options;
  options.worker_error_rate = 0.1;
  options.replication = 5;
  auto brute = qlearn::crowd::RunCrowdBruteJoinSession(
      universe.value(), archive_a, archive_b, &truth, options);
  if (brute.ok()) {
    std::printf("brute force:     %5zu pair HITs   $%.2f   errors %zu\n",
                brute.value().ledger.pair_hits, brute.value().total_cost,
                brute.value().accuracy_errors);
  }

  // Mode 2: pilot-calibrated feature filtering before the brute pass.
  // Matches are sparse (12 of 144 pairs), so give the pilot enough probes
  // to find a positive to calibrate on.
  options.feature_filtering = true;
  options.pilot_budget = 36;
  auto filtered = qlearn::crowd::RunCrowdBruteJoinSession(
      universe.value(), archive_a, archive_b, &truth, options);
  if (filtered.ok()) {
    std::printf("feature+brute:   %5zu pair HITs   $%.2f   errors %zu   "
                "(filtered out %zu pairs)\n",
                filtered.value().ledger.pair_hits,
                filtered.value().total_cost,
                filtered.value().accuracy_errors,
                filtered.value().filtered_out);
  }

  // Mode 3: the paper's interactive version-space learner.
  options.feature_filtering = false;
  auto learned = qlearn::crowd::RunCrowdJoinSession(
      universe.value(), archive_a, archive_b, &truth, options);
  if (learned.ok()) {
    std::printf("learning (ours): %5zu pair HITs   $%.2f   errors %zu   "
                "(%zu questions, %zu + %zu labels inferred free)\n",
                learned.value().ledger.pair_hits, learned.value().total_cost,
                learned.value().accuracy_errors, learned.value().questions,
                learned.value().forced_positive,
                learned.value().forced_negative);
    std::printf("\nlearned predicate: %s\n",
                universe.value()
                    .MaskToString(learned.value().learned,
                                  archive_a.schema(), archive_b.schema())
                    .c_str());
  }
  return 0;
}
