// Transcript-driven load generator for the framed-TCP session server.
//
// Replays the checked-in golden transcripts (tests/golden/*.jsonl) through
// net::Client at high concurrency: every recorded open/ask/tell/close is
// re-issued over a real socket, and every response is validated
// byte-for-byte against the golden (the wire format is canonical JSON, so
// byte equality is semantic equality — a served question that differs by
// one byte is a correctness bug, not a formatting nit).
//
// Arrival model is open-loop: session i becomes due at start + i/rate,
// independent of completions (rate 0 = everything due immediately), so a
// saturated server accumulates concurrent sessions instead of silently
// slowing the offered load. Each of C connection threads owns ONE
// connection and multiplexes its share of the sessions over it, one
// request in flight at a time (the server answers per-connection FIFO),
// sweeping its active sessions round-robin so they progress interleaved.
//
// By default the server runs in-process on an ephemeral loopback port;
// --port targets an external server instead. Results (p50/p99 ask/tell
// latency, sessions/sec, error and validation counters) are printed as one
// JSON result object and optionally appended under "results" of a
// BENCH_serving.json-style file via --out.
//
// Usage:
//   loadgen [--sessions=1280] [--connections=8] [--rate=0]
//           [--server_workers=0] [--reactors=1] [--warmup=0]
//           [--host=127.0.0.1] [--port=0]
//           [--golden_dir=DIR] [--label=relwithdebinfo] [--out=FILE]
//           [--no-validate] [--park-after=SECONDS]
//           [--router] [--backends=N] [--rebalance-after=SECONDS]
//
// --server_workers is per reactor shard; 0 (the default) dispatches
// requests inline on the shard thread, the server's lowest-cost mode.
// --reactors picks the shard count of the in-process server. --warmup=N
// replays N sessions before the recorded steps, so pools, arenas, and the
// page cache are warm and the first row is not measuring cold start; the
// warmup row prints (labelled "<label>-warmup") but is not written to
// --out.
//
// Alongside the client-side round-trip latencies, each row carries the
// server's own per-op log2 latency histograms ("server_latency_us"),
// fetched over the counters op before and after the step and differenced,
// so a row shows both wire latency and in-service handling time.
//
// --park-after=S turns on session hibernation in the in-process service
// (sessions idle >= S seconds are serialized to the snapshot store and
// evicted from memory; the next request transparently rehydrates them) and
// runs a background sweeper so sessions actually park mid-replay. Because
// every response is still byte-validated against the golden, a clean run
// proves the park/rehydrate round trip is invisible on the wire; the
// result rows gain a "park" object (parks, rehydrates, resident-session
// low-water mark, RSS) so the BENCH file records the memory effect.
//
// --sessions also accepts a comma-separated sweep (e.g.
// --sessions=320,640,1280,2560): each step replays that many sessions
// against the same server instance and records its own result row, so one
// run produces the latency-versus-load curve of a long-lived server under
// increasing pressure.
//
// --router puts the consistent-hash routing front tier (net::Router) in
// front of --backends=N in-process backend servers, and the load goes
// through the router instead of a single server. Validation is unchanged —
// the router forwards responses as opaque bytes, so a byte mismatch at any
// backend count is a routing bug. Result rows gain a "router" object
// (frames forwarded, local answers, minted ids, backend connections
// established and reused, handoffs). --rebalance-after=S additionally
// starts one more backend S seconds into each measured step and live-
// rebalances onto it mid-load (snapshot handoff), so the row records a
// migration under byte-validated traffic.
//
// Exit status is non-zero on any request error or byte mismatch, so CI can
// smoke-run it as a gate.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#ifdef __linux__
#include <unistd.h>
#endif

#include "net/client.h"
#include "net/router.h"
#include "net/server.h"
#include "net/shard_map.h"
#include "service/session_service.h"
#include "service/wire.h"

namespace qlearn {
namespace {

using service::wire::TranscriptEvent;
using Clock = std::chrono::steady_clock;

#ifndef QLEARN_GOLDEN_DIR
#define QLEARN_GOLDEN_DIR "tests/golden"
#endif

struct Options {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0: start an in-process server on an ephemeral port
  /// Session counts, one load step per entry (a single entry is the
  /// classic fixed-load run).
  std::vector<size_t> session_steps = {1280};
  size_t connections = 8;
  double rate = 0;  // session arrivals per second; 0 = all due immediately
  size_t server_workers = 0;  // per shard; 0 = inline dispatch
  size_t reactors = 1;
  size_t warmup = 0;  // sessions replayed (and discarded) before step one
  std::string golden_dir = QLEARN_GOLDEN_DIR;
  std::string label = "local";
  std::string out;  // append the result object to this BENCH-style file
  bool validate = true;
  /// > 0: hibernate sessions idle at least this long (in-process server
  /// only) and sweep for them in the background while the load runs.
  double park_after = 0;
  /// Route through an in-process net::Router over `backends` in-process
  /// backend servers instead of one server.
  bool router = false;
  size_t backends = 2;
  /// > 0 (router mode): start one more backend this many seconds into each
  /// measured step and live-rebalance onto it mid-load.
  double rebalance_after = 0;
};

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

bool ParseOptions(int argc, char** argv, Options* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (ParseFlag(arg, "host", &value)) {
      options->host = value;
    } else if (ParseFlag(arg, "port", &value)) {
      options->port = static_cast<uint16_t>(std::stoul(value));
    } else if (ParseFlag(arg, "sessions", &value)) {
      options->session_steps.clear();
      std::stringstream steps(value);
      std::string step;
      while (std::getline(steps, step, ',')) {
        if (step.empty()) continue;
        options->session_steps.push_back(std::stoul(step));
      }
    } else if (ParseFlag(arg, "connections", &value)) {
      options->connections = std::stoul(value);
    } else if (ParseFlag(arg, "rate", &value)) {
      options->rate = std::stod(value);
    } else if (ParseFlag(arg, "server_workers", &value)) {
      options->server_workers = std::stoul(value);
    } else if (ParseFlag(arg, "reactors", &value)) {
      options->reactors = std::stoul(value);
    } else if (ParseFlag(arg, "warmup", &value)) {
      options->warmup = std::stoul(value);
    } else if (ParseFlag(arg, "golden_dir", &value)) {
      options->golden_dir = value;
    } else if (ParseFlag(arg, "label", &value)) {
      options->label = value;
    } else if (ParseFlag(arg, "out", &value)) {
      options->out = value;
    } else if (ParseFlag(arg, "park-after", &value)) {
      options->park_after = std::stod(value);
    } else if (ParseFlag(arg, "backends", &value)) {
      options->backends = std::stoul(value);
    } else if (ParseFlag(arg, "rebalance-after", &value)) {
      options->rebalance_after = std::stod(value);
    } else if (arg == "--router") {
      options->router = true;
    } else if (arg == "--no-validate") {
      options->validate = false;
    } else {
      std::fprintf(stderr, "loadgen: unknown argument %s\n", arg.c_str());
      return false;
    }
  }
  if (options->session_steps.empty() || options->connections == 0) {
    std::fprintf(stderr, "loadgen: --sessions and --connections must be > 0\n");
    return false;
  }
  if (options->reactors == 0) {
    std::fprintf(stderr, "loadgen: --reactors must be > 0\n");
    return false;
  }
  for (size_t step : options->session_steps) {
    if (step == 0) {
      std::fprintf(stderr, "loadgen: every --sessions step must be > 0\n");
      return false;
    }
  }
  if (options->park_after > 0 && options->port != 0) {
    std::fprintf(stderr,
                 "loadgen: --park-after drives the in-process service "
                 "directly and cannot target an external --port\n");
    return false;
  }
  if (options->router) {
    if (options->port != 0) {
      std::fprintf(stderr,
                   "loadgen: --router starts its own in-process fleet and "
                   "cannot target an external --port\n");
      return false;
    }
    if (options->park_after > 0) {
      std::fprintf(stderr,
                   "loadgen: --park-after and --router are mutually "
                   "exclusive (park mode drives one in-process service)\n");
      return false;
    }
    if (options->backends == 0) {
      std::fprintf(stderr, "loadgen: --backends must be > 0\n");
      return false;
    }
  } else if (options->rebalance_after > 0) {
    std::fprintf(stderr, "loadgen: --rebalance-after requires --router\n");
    return false;
  }
  return true;
}

/// Resident set size in MiB from /proc/self/statm (0 where unavailable).
double RssMib() {
#ifdef __linux__
  std::ifstream statm("/proc/self/statm");
  uint64_t total_pages = 0, resident_pages = 0;
  if (statm >> total_pages >> resident_pages) {
    const double page_bytes =
        static_cast<double>(sysconf(_SC_PAGESIZE));
    return static_cast<double>(resident_pages) * page_bytes /
           (1024.0 * 1024.0);
  }
#endif
  return 0;
}

/// Park-mode observer state: a background sweeper thread drives
/// SessionService::ParkIdleSessions and samples the resident/parked session
/// counts while the load runs; RunStep resets it per step and folds the
/// high/low-water marks into the result row.
struct ParkMonitor {
  std::atomic<uint64_t> max_parked{0};
  std::atomic<uint64_t> min_resident{UINT64_MAX};  // while sessions are open

  void Reset() {
    max_parked.store(0, std::memory_order_relaxed);
    min_resident.store(UINT64_MAX, std::memory_order_relaxed);
  }
  void Sample(uint64_t open, uint64_t resident, uint64_t parked) {
    uint64_t seen = max_parked.load(std::memory_order_relaxed);
    while (parked > seen &&
           !max_parked.compare_exchange_weak(seen, parked)) {
    }
    if (open == 0) return;
    seen = min_resident.load(std::memory_order_relaxed);
    while (resident < seen &&
           !min_resident.compare_exchange_weak(seen, resident)) {
    }
  }
};

struct Golden {
  std::string name;
  std::vector<TranscriptEvent> events;
};

// The conformance suite's golden stems: the five paper-experiment scenarios
// plus every non-default selection strategy.
const char* kGoldenNames[] = {
    "e1_twig",       "e4_twig_ambiguity", "e6_join",       "e7_path",
    "e12_chain",     "s_twig_random",     "s_join_random", "s_join_lattice",
    "s_chain_random", "s_path_random",    "s_path_workload",
};

bool LoadGoldens(const std::string& dir, std::vector<Golden>* goldens) {
  for (const char* name : kGoldenNames) {
    const std::string path = dir + "/" + name + ".jsonl";
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "loadgen: cannot read %s\n", path.c_str());
      return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    auto events = service::wire::ParseTranscript(buffer.str());
    if (!events.ok()) {
      std::fprintf(stderr, "loadgen: %s: %s\n", path.c_str(),
                   events.status().ToString().c_str());
      return false;
    }
    goldens->push_back(Golden{name, std::move(events).value()});
  }
  return true;
}

// Shared, mostly-atomic tallies across connection threads.
struct Tallies {
  std::atomic<uint64_t> opens{0};
  std::atomic<uint64_t> asks{0};
  std::atomic<uint64_t> tells{0};
  std::atomic<uint64_t> closes{0};
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> mismatches{0};
  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> current_open{0};
  std::atomic<uint64_t> max_concurrent{0};
  std::mutex detail_mutex;
  std::vector<std::string> details;  // first few errors/mismatches

  void Note(const std::string& message) {
    std::lock_guard<std::mutex> lock(detail_mutex);
    if (details.size() < 8) details.push_back(message);
  }
  void RaiseMax(uint64_t open_now) {
    uint64_t seen = max_concurrent.load(std::memory_order_relaxed);
    while (open_now > seen &&
           !max_concurrent.compare_exchange_weak(seen, open_now)) {
    }
  }
};

// One in-flight session replay: which golden, how far along, its handle.
struct Slot {
  const Golden* golden = nullptr;
  size_t session_index = 0;  // global index, for error messages
  size_t pos = 0;            // next event to replay
  std::string id;
  bool done = false;
};

// Per-thread latency samples, merged after the run.
struct Samples {
  std::vector<uint64_t> ask_us;
  std::vector<uint64_t> tell_us;
};

uint64_t ElapsedMicros(Clock::time_point from) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            from)
          .count());
}

// Replays one event of `slot` over `client`. Returns false when the slot
// finished (converged, closed, or errored out).
bool StepSlot(net::Client* client, Slot* slot, const Options& options,
              Tallies* tallies, Samples* samples) {
  const TranscriptEvent& event = slot->golden->events[slot->pos];
  auto fail = [&](const std::string& what, const common::Status& status) {
    tallies->errors.fetch_add(1, std::memory_order_relaxed);
    tallies->Note("session " + std::to_string(slot->session_index) + " (" +
                  slot->golden->name + ") " + what + ": " +
                  status.ToString());
    slot->done = true;
  };
  switch (event.kind) {
    case TranscriptEvent::Kind::kOpen: {
      service::OpenOptions open_options;
      open_options.seed = event.seed;
      open_options.budget.max_questions = event.max_questions;
      auto opened = client->Open(event.scenario, open_options);
      tallies->opens.fetch_add(1, std::memory_order_relaxed);
      if (!opened.ok()) {
        fail("open", opened.status());
        return false;
      }
      slot->id = std::move(opened).value();
      const uint64_t open_now =
          tallies->current_open.fetch_add(1, std::memory_order_relaxed) + 1;
      tallies->RaiseMax(open_now);
      break;
    }
    case TranscriptEvent::Kind::kAsk: {
      const Clock::time_point begin = Clock::now();
      auto batch = client->Ask(slot->id, event.requested);
      samples->ask_us.push_back(ElapsedMicros(begin));
      tallies->asks.fetch_add(1, std::memory_order_relaxed);
      if (!batch.ok()) {
        fail("ask", batch.status());
        return false;
      }
      if (options.validate) {
        const auto& served = batch.value();
        if (served.size() != event.questions.size()) {
          tallies->mismatches.fetch_add(1, std::memory_order_relaxed);
          tallies->Note("session " + std::to_string(slot->session_index) +
                        " (" + slot->golden->name + ") ask served " +
                        std::to_string(served.size()) + ", golden has " +
                        std::to_string(event.questions.size()));
        } else {
          for (size_t j = 0; j < served.size(); ++j) {
            if (service::wire::Serialize(served[j]) !=
                service::wire::Serialize(event.questions[j])) {
              tallies->mismatches.fetch_add(1, std::memory_order_relaxed);
              tallies->Note("session " +
                            std::to_string(slot->session_index) + " (" +
                            slot->golden->name + ") question " +
                            std::to_string(j) + " differs from golden");
            }
          }
        }
      }
      break;
    }
    case TranscriptEvent::Kind::kTell: {
      const Clock::time_point begin = Clock::now();
      const common::Status told = client->Tell(slot->id, event.labels);
      samples->tell_us.push_back(ElapsedMicros(begin));
      tallies->tells.fetch_add(1, std::memory_order_relaxed);
      if (!told.ok()) {
        fail("tell", told);
        return false;
      }
      break;
    }
    case TranscriptEvent::Kind::kClose: {
      auto closed = client->Close(slot->id);
      tallies->closes.fetch_add(1, std::memory_order_relaxed);
      tallies->current_open.fetch_sub(1, std::memory_order_relaxed);
      if (!closed.ok()) {
        fail("close", closed.status());
        return false;
      }
      if (options.validate) {
        if (service::wire::Serialize(closed.value().hypothesis) !=
                service::wire::Serialize(event.hypothesis) ||
            service::wire::Serialize(closed.value().stats) !=
                service::wire::Serialize(event.stats)) {
          tallies->mismatches.fetch_add(1, std::memory_order_relaxed);
          tallies->Note("session " + std::to_string(slot->session_index) +
                        " (" + slot->golden->name +
                        ") final hypothesis/stats differ from golden");
        }
      }
      break;
    }
  }
  ++slot->pos;
  if (slot->pos >= slot->golden->events.size()) slot->done = true;
  return !slot->done;
}

// One connection thread: owns one socket, replays the sessions with global
// indices t, t+C, t+2C, ... Sessions arrive open-loop (due at start +
// index/rate); due sessions are opened even while earlier ones are still in
// flight, and active sessions progress round-robin, one request per sweep.
void RunConnection(const Options& options, size_t sessions, uint16_t port,
                   size_t thread_index, const std::vector<Golden>& goldens,
                   Clock::time_point start, Tallies* tallies,
                   Samples* samples) {
  auto client_or = net::Client::Connect(options.host, port);
  if (!client_or.ok()) {
    tallies->errors.fetch_add(1, std::memory_order_relaxed);
    tallies->Note("connect: " + client_or.status().ToString());
    return;
  }
  net::Client client = std::move(client_or).value();

  size_t next_index = thread_index;  // next global session index to open
  std::vector<std::unique_ptr<Slot>> active;
  size_t sweep = 0;

  while (next_index < sessions || !active.empty()) {
    // Admit every session that is due by now (open-loop arrivals).
    while (next_index < sessions) {
      if (options.rate > 0) {
        const double due_seconds =
            static_cast<double>(next_index) / options.rate;
        const double elapsed =
            std::chrono::duration<double>(Clock::now() - start).count();
        if (elapsed < due_seconds) break;
      }
      auto slot = std::make_unique<Slot>();
      slot->golden = &goldens[next_index % goldens.size()];
      slot->session_index = next_index;
      active.push_back(std::move(slot));
      next_index += options.connections;
      // Issue the open immediately so arrival time is the open time.
      Slot* opened = active.back().get();
      if (!StepSlot(&client, opened, options, tallies, samples) &&
          opened->done && opened->pos == 0) {
        // Open itself failed; drop the slot.
        active.pop_back();
        tallies->completed.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (active.empty()) {
      if (next_index >= sessions) break;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      continue;
    }
    // One request for one active session per iteration, round-robin.
    Slot* slot = active[sweep % active.size()].get();
    if (!StepSlot(&client, slot, options, tallies, samples)) {
      if (slot->done && slot->pos > 0 &&
          slot->pos < slot->golden->events.size() && !slot->id.empty()) {
        // Errored mid-session: close the handle so the server does not
        // accumulate abandoned sessions.
        if (client.Close(slot->id).ok()) {
          tallies->current_open.fetch_sub(1, std::memory_order_relaxed);
        }
      }
      active.erase(active.begin() +
                   static_cast<ptrdiff_t>(sweep % active.size()));
      tallies->completed.fetch_add(1, std::memory_order_relaxed);
    } else {
      ++sweep;
    }
    if (!client.connected()) {
      tallies->Note("connection lost; abandoning remaining sessions");
      break;
    }
  }
}

struct LatencySummary {
  double p50 = 0, p99 = 0, mean = 0, max = 0;
  size_t count = 0;
};

LatencySummary Summarize(std::vector<uint64_t>* samples) {
  LatencySummary summary;
  summary.count = samples->size();
  if (samples->empty()) return summary;
  std::sort(samples->begin(), samples->end());
  auto percentile = [&](double p) {
    const size_t index = static_cast<size_t>(
        p * static_cast<double>(samples->size() - 1) + 0.5);
    return static_cast<double>((*samples)[index]);
  };
  summary.p50 = percentile(0.50);
  summary.p99 = percentile(0.99);
  uint64_t total = 0;
  for (uint64_t s : *samples) total += s;
  summary.mean =
      static_cast<double>(total) / static_cast<double>(samples->size());
  summary.max = static_cast<double>(samples->back());
  return summary;
}

void AppendLatency(const char* key, const LatencySummary& s,
                   std::string* out) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "\"%s\":{\"count\":%zu,\"p50\":%.1f,\"p99\":%.1f,"
                "\"mean\":%.1f,\"max\":%.1f}",
                key, s.count, s.p50, s.p99, s.mean, s.max);
  *out += buffer;
}

/// New activity in a server-side histogram since the step began.
service::LatencySnapshot DiffSnapshot(const service::LatencySnapshot& after,
                                      const service::LatencySnapshot& before) {
  service::LatencySnapshot diff;
  for (size_t i = 0; i < service::LatencySnapshot::kBuckets; ++i) {
    diff.buckets[i] = after.buckets[i] - before.buckets[i];
  }
  return diff;
}

/// Quantiles from the server's log2 histogram; the values are bucket upper
/// bounds (hence the _le suffix), not exact order statistics.
void AppendServerLatency(const char* key, const service::LatencySnapshot& s,
                         std::string* out) {
  char buffer[160];
  std::snprintf(
      buffer, sizeof(buffer),
      "\"%s\":{\"count\":%llu,\"p50_le\":%llu,\"p99_le\":%llu}", key,
      static_cast<unsigned long long>(s.Count()),
      static_cast<unsigned long long>(s.QuantileUpperBoundMicros(0.50)),
      static_cast<unsigned long long>(s.QuantileUpperBoundMicros(0.99)));
  *out += buffer;
}

/// Snapshot of the server's per-op histograms over a dedicated probe
/// connection (works against in-process and external servers alike).
bool FetchServerCounters(const Options& options, uint16_t port,
                         service::ServiceCounters* counters) {
  auto probe = net::Client::Connect(options.host, port);
  if (!probe.ok()) return false;
  auto fetched = probe.value().Counters();
  if (!fetched.ok()) return false;
  *counters = std::move(fetched).value().first;
  return true;
}

/// One in-process backend of the router-mode fleet.
struct BackendProc {
  service::SessionService service;
  std::unique_ptr<net::Server> server;
};

/// Router-mode state shared between Run and the per-step rebalance driver.
struct Fleet {
  std::vector<std::unique_ptr<BackendProc>> backends;
  std::unique_ptr<net::Router> router;

  bool AddBackend(size_t server_workers) {
    auto backend = std::make_unique<BackendProc>();
    net::ServerOptions server_options;
    server_options.workers = server_workers;
    backend->server =
        std::make_unique<net::Server>(&backend->service, server_options);
    if (!backend->server->Start().ok()) return false;
    backends.push_back(std::move(backend));
    return true;
  }

  std::vector<net::BackendAddress> Addresses() const {
    std::vector<net::BackendAddress> addresses;
    for (const auto& backend : backends) {
      addresses.push_back({"127.0.0.1", backend->server->port()});
    }
    return addresses;
  }
};

uint64_t Delta(uint64_t after, uint64_t before) { return after - before; }

std::string TodayUtc() {
  const std::time_t now = std::time(nullptr);
  std::tm parts;
  gmtime_r(&now, &parts);
  char buffer[16];
  std::strftime(buffer, sizeof(buffer), "%Y-%m-%d", &parts);
  return buffer;
}

/// One load step: replays `sessions` transcript sessions against the server
/// at `port`, appends the result row to `*result`, and returns true when
/// the step was error- and mismatch-free. `service`/`monitor` are non-null
/// in --park-after mode and add a "park" object to the row. A warmup step
/// runs and validates identically but is labelled as warmup (the caller
/// drops its row from the BENCH file).
bool RunStep(const Options& options, size_t sessions, uint16_t port,
             bool in_process_server, bool warmup,
             const std::vector<Golden>& goldens,
             service::SessionService* service, ParkMonitor* monitor,
             Fleet* fleet, std::string* result) {
  Tallies tallies;
  net::RouterStats router_before;
  if (fleet != nullptr) router_before = fleet->router->stats();
  // Live-rebalance driver: S seconds into the step, start one more backend
  // and migrate onto it while the byte-validated load is running.
  std::thread rebalancer;
  std::atomic<bool> rebalance_ok{true};
  if (fleet != nullptr && options.rebalance_after > 0 && !warmup) {
    rebalancer = std::thread([&] {
      std::this_thread::sleep_for(std::chrono::duration_cast<
                                  std::chrono::nanoseconds>(
          std::chrono::duration<double>(options.rebalance_after)));
      if (!fleet->AddBackend(options.server_workers)) {
        rebalance_ok.store(false);
        return;
      }
      const common::Status rebalanced =
          fleet->router->Rebalance(fleet->Addresses());
      if (!rebalanced.ok()) {
        std::fprintf(stderr, "loadgen: rebalance: %s\n",
                     rebalanced.ToString().c_str());
        rebalance_ok.store(false);
      }
    });
  }
  service::ServiceCounters before;
  double rss_before_mib = 0;
  if (service != nullptr) {
    monitor->Reset();
    before = service->Counters();
    rss_before_mib = RssMib();
  }
  service::ServiceCounters server_before;
  const bool have_server_counters =
      FetchServerCounters(options, port, &server_before);
  std::vector<Samples> samples(options.connections);
  const Clock::time_point start = Clock::now();
  std::vector<std::thread> threads;
  for (size_t t = 0; t < options.connections; ++t) {
    threads.emplace_back(RunConnection, std::cref(options), sessions, port, t,
                         std::cref(goldens), start, &tallies, &samples[t]);
  }
  for (auto& thread : threads) thread.join();
  if (rebalancer.joinable()) rebalancer.join();
  const double wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();

  std::vector<uint64_t> ask_us, tell_us;
  for (auto& s : samples) {
    ask_us.insert(ask_us.end(), s.ask_us.begin(), s.ask_us.end());
    tell_us.insert(tell_us.end(), s.tell_us.begin(), s.tell_us.end());
  }
  const LatencySummary ask = Summarize(&ask_us);
  const LatencySummary tell = Summarize(&tell_us);

  const uint64_t requests = tallies.opens.load() + tallies.asks.load() +
                            tallies.tells.load() + tallies.closes.load();
  const double sessions_per_sec =
      static_cast<double>(tallies.completed.load()) / wall_seconds;
  const double requests_per_sec =
      static_cast<double>(requests) / wall_seconds;

  *result = "    {\n      ";
  char buffer[512];
  const std::string label =
      warmup ? options.label + "-warmup" : options.label;
  std::snprintf(buffer, sizeof(buffer),
                "\"label\":\"%s\",\n      \"config\":{\"sessions\":%zu,"
                "\"connections\":%zu,\"rate_per_sec\":%.0f,"
                "\"server_workers\":%zu,\"reactors\":%zu,"
                "\"in_process_server\":%s,\"router\":%s,\"goldens\":%zu},"
                "\n      ",
                label.c_str(), sessions, options.connections, options.rate,
                options.server_workers, options.reactors,
                in_process_server ? "true" : "false",
                fleet != nullptr ? "true" : "false", goldens.size());
  *result += buffer;
  std::snprintf(buffer, sizeof(buffer),
                "\"requests\":{\"total\":%llu,\"opens\":%llu,\"asks\":%llu,"
                "\"tells\":%llu,\"closes\":%llu,\"errors\":%llu},\n      ",
                static_cast<unsigned long long>(requests),
                static_cast<unsigned long long>(tallies.opens.load()),
                static_cast<unsigned long long>(tallies.asks.load()),
                static_cast<unsigned long long>(tallies.tells.load()),
                static_cast<unsigned long long>(tallies.closes.load()),
                static_cast<unsigned long long>(tallies.errors.load()));
  *result += buffer;
  AppendLatency("ask_latency_us", ask, result);
  *result += ",\n      ";
  AppendLatency("tell_latency_us", tell, result);
  *result += ",\n      ";
  std::snprintf(buffer, sizeof(buffer),
                "\"sessions_per_sec\":%.1f,\"requests_per_sec\":%.1f,"
                "\"wall_seconds\":%.3f,\"max_concurrent_sessions\":%llu,"
                "\n      \"validation\":{\"enabled\":%s,"
                "\"byte_mismatches\":%llu}",
                sessions_per_sec, requests_per_sec, wall_seconds,
                static_cast<unsigned long long>(tallies.max_concurrent.load()),
                options.validate ? "true" : "false",
                static_cast<unsigned long long>(tallies.mismatches.load()));
  *result += buffer;
  service::ServiceCounters server_after;
  if (have_server_counters &&
      FetchServerCounters(options, port, &server_after)) {
    *result += ",\n      \"server_latency_us\":{";
    AppendServerLatency("open", DiffSnapshot(server_after.open_latency_us,
                                             server_before.open_latency_us),
                        result);
    *result += ",";
    AppendServerLatency("ask", DiffSnapshot(server_after.ask_latency_us,
                                            server_before.ask_latency_us),
                        result);
    *result += ",";
    AppendServerLatency("tell", DiffSnapshot(server_after.tell_latency_us,
                                             server_before.tell_latency_us),
                        result);
    *result += ",";
    AppendServerLatency("close", DiffSnapshot(server_after.close_latency_us,
                                              server_before.close_latency_us),
                        result);
    *result += "}";
  }
  if (fleet != nullptr) {
    const net::RouterStats ra = fleet->router->stats();
    const uint64_t forwarded =
        Delta(ra.frames_forwarded, router_before.frames_forwarded);
    const uint64_t connects =
        Delta(ra.backend_reconnects, router_before.backend_reconnects);
    std::snprintf(
        buffer, sizeof(buffer),
        ",\n      \"router\":{\"backends\":%zu,\"map_generation\":%llu,"
        "\"frames_forwarded\":%llu,\"local_answers\":%llu,"
        "\"ids_minted\":%llu,\"fanouts\":%llu,"
        "\"backend_connects\":%llu,\"backend_connection_reuse\":%llu,"
        "\"backend_errors\":%llu,\"handoffs\":%llu,"
        "\"handoff_skipped\":%llu,\"rebalances\":%llu}",
        fleet->backends.size(),
        static_cast<unsigned long long>(fleet->router->shard_map().generation),
        static_cast<unsigned long long>(forwarded),
        static_cast<unsigned long long>(
            Delta(ra.local_answers, router_before.local_answers)),
        static_cast<unsigned long long>(
            Delta(ra.ids_minted, router_before.ids_minted)),
        static_cast<unsigned long long>(
            Delta(ra.fanouts, router_before.fanouts)),
        static_cast<unsigned long long>(connects),
        static_cast<unsigned long long>(forwarded - connects),
        static_cast<unsigned long long>(
            Delta(ra.backend_errors, router_before.backend_errors)),
        static_cast<unsigned long long>(
            Delta(ra.handoffs, router_before.handoffs)),
        static_cast<unsigned long long>(
            Delta(ra.handoff_skipped, router_before.handoff_skipped)),
        static_cast<unsigned long long>(
            Delta(ra.rebalances, router_before.rebalances)));
    *result += buffer;
  }
  uint64_t hibernate_errors = 0;
  if (service != nullptr) {
    const service::ServiceCounters after = service->Counters();
    hibernate_errors = after.hibernate_errors - before.hibernate_errors;
    uint64_t min_resident = monitor->min_resident.load();
    if (min_resident == UINT64_MAX) min_resident = 0;
    std::snprintf(
        buffer, sizeof(buffer),
        ",\n      \"park\":{\"park_after_seconds\":%.3f,"
        "\"parks\":%llu,\"rehydrates\":%llu,\"hibernate_errors\":%llu,"
        "\"max_parked_sessions\":%llu,"
        "\"min_resident_sessions_while_loaded\":%llu,"
        "\"rss_before_mib\":%.1f,\"rss_after_mib\":%.1f}",
        options.park_after,
        static_cast<unsigned long long>(after.hibernates - before.hibernates),
        static_cast<unsigned long long>(after.rehydrates - before.rehydrates),
        static_cast<unsigned long long>(hibernate_errors),
        static_cast<unsigned long long>(monitor->max_parked.load()),
        static_cast<unsigned long long>(min_resident), rss_before_mib,
        RssMib());
    *result += buffer;
  }
  *result += "\n    }";

  std::printf("%s\n", result->c_str());
  for (const std::string& detail : tallies.details) {
    std::fprintf(stderr, "loadgen: %s\n", detail.c_str());
  }
  return tallies.errors.load() == 0 && tallies.mismatches.load() == 0 &&
         hibernate_errors == 0 && rebalance_ok.load();
}

int Run(const Options& options) {
  std::vector<Golden> goldens;
  if (!LoadGoldens(options.golden_dir, &goldens)) return 2;

  // Router mode: an in-process fleet of --backends servers behind a
  // net::Router; the load targets the router's port.
  Fleet fleet;
  if (options.router) {
    for (size_t i = 0; i < options.backends; ++i) {
      if (!fleet.AddBackend(options.server_workers)) {
        std::fprintf(stderr, "loadgen: backend %zu failed to start\n", i);
        return 2;
      }
    }
    net::ShardMap map;
    map.backends = fleet.Addresses();
    net::RouterOptions router_options;
    router_options.reactors = options.reactors;
    fleet.router =
        std::make_unique<net::Router>(std::move(map), router_options);
    const common::Status started = fleet.router->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "loadgen: router: %s\n",
                   started.ToString().c_str());
      return 2;
    }
  }

  // In-process server unless a port was given. The server instance spans
  // the whole sweep, so later steps measure a warmed long-lived server.
  service::ServiceOptions service_options;
  service_options.hibernate_after_seconds = options.park_after;
  service::SessionService service(service_options);
  std::unique_ptr<net::Server> server;
  uint16_t port = options.port;
  if (options.router) {
    port = fleet.router->port();
  } else if (port == 0) {
    net::ServerOptions server_options;
    server_options.workers = options.server_workers;
    server_options.reactors = options.reactors;
    server = std::make_unique<net::Server>(&service, server_options);
    const common::Status started = server->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "loadgen: server: %s\n",
                   started.ToString().c_str());
      return 2;
    }
    port = server->port();
  }

  // Park mode: a sweeper thread hibernates idle sessions while the load
  // runs and samples the resident/parked counts for the result rows.
  ParkMonitor monitor;
  std::atomic<bool> stop_sweeper{false};
  std::thread sweeper;
  if (options.park_after > 0) {
    sweeper = std::thread([&] {
      const auto tick = std::chrono::duration<double>(
          std::min(std::max(options.park_after / 4, 0.001), 0.1));
      while (!stop_sweeper.load(std::memory_order_relaxed)) {
        service.ParkIdleSessions();
        monitor.Sample(service.OpenCount(), service.ResidentCount(),
                       service.ParkedCount());
        std::this_thread::sleep_for(
            std::chrono::duration_cast<std::chrono::nanoseconds>(tick));
      }
    });
  }

  bool failed = false;
  if (options.warmup > 0) {
    // Same replay and validation as a recorded step; only the row is
    // discarded, so a warmup mismatch still fails the run.
    std::string ignored;
    if (!RunStep(options, options.warmup, port,
                 server != nullptr || options.router,
                 /*warmup=*/true, goldens,
                 options.park_after > 0 ? &service : nullptr, &monitor,
                 options.router ? &fleet : nullptr, &ignored)) {
      failed = true;
    }
  }
  std::string rows;
  for (size_t i = 0; i < options.session_steps.size(); ++i) {
    std::string result;
    if (!RunStep(options, options.session_steps[i], port,
                 server != nullptr || options.router,
                 /*warmup=*/false, goldens,
                 options.park_after > 0 ? &service : nullptr, &monitor,
                 options.router ? &fleet : nullptr, &result)) {
      failed = true;
    }
    if (i > 0) rows += ",\n";
    rows += result;
  }

  if (sweeper.joinable()) {
    stop_sweeper.store(true, std::memory_order_relaxed);
    sweeper.join();
  }

  if (!options.out.empty() && options.router) {
    // Self-describing BENCH file for router-mode runs.
    std::string file =
        "{\n"
        "  \"description\": \"Horizontal sharding through the consistent-"
        "hash routing front tier: net::Router peeks each request's session "
        "id with the arena view-mode parser, picks the owning backend by "
        "jump consistent hash over the shard map, and forwards the frame "
        "bytes verbatim to one of N in-process net::Server backends "
        "(responses return as opaque bytes, never re-serialized). Driven "
        "by tools/loadgen --router --backends=N: every session replays one "
        "of the 11 golden transcripts through the router and every "
        "response is byte-validated against the golden, so the numbers "
        "only count traffic that sharding left bit-identical. Rows with "
        "rebalances > 0 had one more backend started mid-step and the "
        "moved sessions migrated live by snapshot handoff (export, "
        "checksummed QLSV image, import), under load.\",\n"
        "  \"methodology\": \"tools/loadgen --router --backends=N "
        "--sessions=M --connections=C --rate=0 (open-loop; C connection "
        "threads each multiplex their share of the sessions over one "
        "socket to the router, one request in flight per connection). "
        "Latencies are client-side microseconds around each blocking "
        "ask/tell round trip, so router rows include the extra hop; "
        "compare against the direct rows (router=false, same build, same "
        "machine) for the router-added latency. server_latency_us is the "
        "fleet-merged per-op histogram from the counters fan-out, "
        "differenced over the step. The router object counts forwarded "
        "frames, locally answered frames (errors and minted-id opens "
        "never reach a backend), backend connections established versus "
        "reused, and handoffs (sessions migrated by a live rebalance). "
        "--rebalance-after=S runs the migration S seconds into each "
        "measured step.\",\n"
        "  \"recorded\": \"" +
        TodayUtc() +
        "\",\n"
        "  \"acceptance\": \"Zero errors and zero byte mismatches with "
        "validation enabled at every backend count, in both RelWithDebInfo "
        "and Debug; golden replays through the router are byte-identical "
        "to direct replays. Rows with rebalances > 0 must additionally "
        "show handoffs > 0 and still zero errors/mismatches: every "
        "session, migrated mid-transcript or not, finishes on the golden "
        "path.\",\n"
        "  \"results\": [\n" +
        rows +
        "\n  ]\n"
        "}\n";
    std::ofstream out(options.out, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "loadgen: cannot write %s\n", options.out.c_str());
      return 2;
    }
    out << file;
  } else if (!options.out.empty()) {
    // Self-describing BENCH file; a fresh run rewrites it whole.
    std::string file =
        "{\n"
        "  \"description\": \"Serving throughput and latency of the framed-"
        "TCP session server: net::Server (sharded poll reactors with arena "
        "JSON parsing, pooled frame buffers, and scatter-gather flushing; "
        "server_workers=0 dispatches requests inline on the shard thread) "
        "in front of SessionService, driven by the transcript load "
        "generator (tools/loadgen). Every session replays one of the 11 "
        "golden transcripts over a real loopback socket and every response "
        "is byte-validated against the golden, so the numbers only count "
        "correct traffic.\",\n"
        "  \"methodology\": \"tools/loadgen --warmup=W --sessions=N1,N2,... "
        "--connections=C --rate=0 (open-loop, all sessions due immediately; "
        "C connection threads each multiplex their share of the sessions "
        "over one socket, one request in flight per connection; W warmup "
        "sessions are replayed and discarded first). Each sessions step is "
        "one result row against the same long-lived server, so the rows "
        "form a latency-versus-load curve. Latencies are measured client-"
        "side around each blocking ask/tell round trip, in microseconds; "
        "server_latency_us is the server's own per-op log2 histogram over "
        "the step (counters op, differenced), whose quantiles are bucket "
        "upper bounds. sessions_per_sec counts fully replayed-and-closed "
        "sessions over that step's wall time. With --park-after a "
        "background sweeper hibernates sessions idle past the threshold "
        "mid-replay (serialized, checksummed, evicted from memory) and "
        "they rehydrate transparently on their next request; the park "
        "object records how many round trips the step exercised.\",\n"
        "  \"recorded\": \"" +
        TodayUtc() +
        "\",\n"
        "  \"acceptance\": \"max_concurrent_sessions >= 1024 in the local "
        "run, zero errors, zero byte mismatches with validation enabled, "
        "in both RelWithDebInfo and Debug. Rows with a park object "
        "(--park-after) must additionally show parks > 0 and a resident-"
        "session low-water mark below the open count, still mismatch-free "
        "(hibernated sessions rehydrate byte-identically).\",\n"
        "  \"results\": [\n" +
        rows +
        "\n  ]\n"
        "}\n";
    std::ofstream out(options.out, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "loadgen: cannot write %s\n", options.out.c_str());
      return 2;
    }
    out << file;
  }

  if (fleet.router) fleet.router->Stop();  // before its backends go away
  for (auto& backend : fleet.backends) backend->server->Stop();
  if (server) server->Stop();
  return failed ? 1 : 0;
}

}  // namespace
}  // namespace qlearn

int main(int argc, char** argv) {
  qlearn::Options options;
  if (!qlearn::ParseOptions(argc, argv, &options)) return 2;
  return qlearn::Run(options);
}
