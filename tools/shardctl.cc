// shardctl: stand up and drive a sharded serving fleet from one terminal.
//
// Starts N in-process backend servers (each its own SessionService) and a
// net::Router in front of them, prints the router and backend ports, then
// reads commands from stdin until EOF:
//
//   add            start one more backend and live-rebalance onto it
//                  (snapshot handoff: only sessions whose jump-hash owner
//                  changed migrate)
//   remove         rebalance back onto one fewer backend, then retire the
//                  drained backend
//   map            print the shard map (generation + backend addresses)
//   stats          print router stats and fleet-merged counters as JSON
//   quit           shut down (EOF does the same)
//
// Clients point at the router port with the ordinary framed-TCP protocol
// (e.g. tools/loadgen --port=<router port>); sharding is invisible to them.
//
// Usage:
//   shardctl [--backends=2] [--port=0] [--reactors=1] [--server_workers=0]
//
// --port is the router's port (0 = ephemeral, printed on startup); backend
// ports are always ephemeral and printed too.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/client.h"
#include "net/router.h"
#include "net/server.h"
#include "net/shard_map.h"
#include "service/session_service.h"

namespace qlearn {
namespace {

struct Options {
  size_t backends = 2;
  uint16_t port = 0;
  size_t reactors = 1;
  size_t server_workers = 0;
};

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

bool ParseOptions(int argc, char** argv, Options* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (ParseFlag(arg, "backends", &value)) {
      options->backends = std::stoul(value);
    } else if (ParseFlag(arg, "port", &value)) {
      options->port = static_cast<uint16_t>(std::stoul(value));
    } else if (ParseFlag(arg, "reactors", &value)) {
      options->reactors = std::stoul(value);
    } else if (ParseFlag(arg, "server_workers", &value)) {
      options->server_workers = std::stoul(value);
    } else {
      std::fprintf(stderr, "shardctl: unknown argument %s\n", arg.c_str());
      return false;
    }
  }
  if (options->backends == 0 || options->reactors == 0) {
    std::fprintf(stderr,
                 "shardctl: --backends and --reactors must be > 0\n");
    return false;
  }
  return true;
}

struct BackendProc {
  service::SessionService service;
  std::unique_ptr<net::Server> server;
};

struct Fleet {
  Options options;
  std::vector<std::unique_ptr<BackendProc>> backends;
  std::unique_ptr<net::Router> router;

  bool AddBackend() {
    auto backend = std::make_unique<BackendProc>();
    net::ServerOptions server_options;
    server_options.workers = options.server_workers;
    backend->server =
        std::make_unique<net::Server>(&backend->service, server_options);
    const common::Status started = backend->server->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "shardctl: backend: %s\n",
                   started.ToString().c_str());
      return false;
    }
    std::printf("backend %zu on 127.0.0.1:%u\n", backends.size(),
                static_cast<unsigned>(backend->server->port()));
    backends.push_back(std::move(backend));
    return true;
  }

  std::vector<net::BackendAddress> Addresses(size_t count) const {
    std::vector<net::BackendAddress> addresses;
    for (size_t i = 0; i < count && i < backends.size(); ++i) {
      addresses.push_back({"127.0.0.1", backends[i]->server->port()});
    }
    return addresses;
  }
};

void PrintMap(const net::ShardMap& map) {
  std::printf("generation %llu, %zu backend%s:\n",
              static_cast<unsigned long long>(map.generation), map.size(),
              map.size() == 1 ? "" : "s");
  for (size_t i = 0; i < map.backends.size(); ++i) {
    std::printf("  [%zu] %s\n", i, ToString(map.backends[i]).c_str());
  }
}

void PrintStats(const Fleet& fleet) {
  const net::RouterStats s = fleet.router->stats();
  std::printf(
      "{\"connections_open\":%llu,\"frames_received\":%llu,"
      "\"frames_forwarded\":%llu,\"local_answers\":%llu,"
      "\"ids_minted\":%llu,\"fanouts\":%llu,\"backend_connects\":%llu,"
      "\"backend_errors\":%llu,\"handoffs\":%llu,"
      "\"handoff_skipped\":%llu,\"rebalances\":%llu}\n",
      static_cast<unsigned long long>(s.connections_open),
      static_cast<unsigned long long>(s.frames_received),
      static_cast<unsigned long long>(s.frames_forwarded),
      static_cast<unsigned long long>(s.local_answers),
      static_cast<unsigned long long>(s.ids_minted),
      static_cast<unsigned long long>(s.fanouts),
      static_cast<unsigned long long>(s.backend_reconnects),
      static_cast<unsigned long long>(s.backend_errors),
      static_cast<unsigned long long>(s.handoffs),
      static_cast<unsigned long long>(s.handoff_skipped),
      static_cast<unsigned long long>(s.rebalances));
  auto probe =
      net::Client::Connect("127.0.0.1", fleet.router->port(),
                           net::kDefaultMaxFrameBytes, /*deadline=*/5000);
  if (!probe.ok()) return;
  auto counters = probe.value().Counters();
  if (!counters.ok()) {
    std::printf("counters: %s\n", counters.status().ToString().c_str());
    return;
  }
  const service::ServiceCounters& c = counters.value().first;
  std::printf(
      "{\"open_sessions\":%llu,\"opens\":%llu,\"asks\":%llu,"
      "\"tells\":%llu,\"closes\":%llu,\"exports\":%llu,\"imports\":%llu}\n",
      static_cast<unsigned long long>(counters.value().second),
      static_cast<unsigned long long>(c.opens),
      static_cast<unsigned long long>(c.asks),
      static_cast<unsigned long long>(c.tells),
      static_cast<unsigned long long>(c.closes),
      static_cast<unsigned long long>(c.exports),
      static_cast<unsigned long long>(c.imports));
}

int Run(const Options& options) {
  Fleet fleet;
  fleet.options = options;
  for (size_t i = 0; i < options.backends; ++i) {
    if (!fleet.AddBackend()) return 2;
  }
  net::ShardMap map;
  map.backends = fleet.Addresses(fleet.backends.size());
  net::RouterOptions router_options;
  router_options.port = options.port;
  router_options.reactors = options.reactors;
  fleet.router =
      std::make_unique<net::Router>(std::move(map), router_options);
  const common::Status started = fleet.router->Start();
  if (!started.ok()) {
    std::fprintf(stderr, "shardctl: router: %s\n",
                 started.ToString().c_str());
    return 2;
  }
  std::printf("router on 127.0.0.1:%u\n",
              static_cast<unsigned>(fleet.router->port()));
  PrintMap(fleet.router->shard_map());
  std::fflush(stdout);

  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream words(line);
    std::string command;
    words >> command;
    if (command.empty()) continue;
    if (command == "quit" || command == "exit") break;
    if (command == "map") {
      PrintMap(fleet.router->shard_map());
    } else if (command == "stats") {
      PrintStats(fleet);
    } else if (command == "add") {
      if (!fleet.AddBackend()) continue;
      const common::Status rebalanced =
          fleet.router->Rebalance(fleet.Addresses(fleet.backends.size()));
      if (!rebalanced.ok()) {
        std::printf("rebalance failed: %s\n",
                    rebalanced.ToString().c_str());
        // The new backend stays up but off-map; a later `add` retries.
      } else {
        PrintMap(fleet.router->shard_map());
      }
    } else if (command == "remove") {
      if (fleet.backends.size() <= 1) {
        std::printf("cannot remove the last backend\n");
      } else {
        const common::Status rebalanced = fleet.router->Rebalance(
            fleet.Addresses(fleet.backends.size() - 1));
        if (!rebalanced.ok()) {
          std::printf("rebalance failed: %s\n",
                      rebalanced.ToString().c_str());
        } else {
          fleet.backends.back()->server->Stop();
          fleet.backends.pop_back();
          PrintMap(fleet.router->shard_map());
        }
      }
    } else {
      std::printf("commands: add | remove | map | stats | quit\n");
    }
    std::fflush(stdout);
  }

  fleet.router->Stop();
  for (auto& backend : fleet.backends) backend->server->Stop();
  return 0;
}

}  // namespace
}  // namespace qlearn

int main(int argc, char** argv) {
  qlearn::Options options;
  if (!qlearn::ParseOptions(argc, argv, &options)) return 2;
  return qlearn::Run(options);
}
